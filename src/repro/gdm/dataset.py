"""Datasets: named collections of samples sharing one region schema.

"Data samples can be included into a named dataset when their genomic regions
have the same schema" (paper, section 2).  :class:`Dataset` enforces that
constraint, coercing region values to the schema types on construction, and
is the operand/result type of every GMQL operator -- the algebra is *closed*
over datasets.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import DatasetError, SchemaError
from repro.gdm.metadata import Metadata
from repro.gdm.region import GenomicRegion
from repro.gdm.sample import Sample
from repro.gdm.schema import RegionSchema


class Dataset:
    """A named GDM dataset: a region schema plus samples keyed by id.

    Parameters
    ----------
    name:
        Dataset name (used by catalogs, provenance and the GMQL binder).
    schema:
        The shared :class:`RegionSchema` of all member samples.
    samples:
        Iterable of :class:`Sample`; ids must be unique.  Region value
        tuples are coerced to the schema types (and padded with missing
        values) as samples are added, so a dataset is always internally
        consistent.
    validate:
        Set to ``False`` to skip value coercion when the caller guarantees
        samples already conform (operators use this on data they built).
    """

    __slots__ = ("name", "schema", "_samples", "provenance", "_stores")

    def __init__(
        self,
        name: str,
        schema: RegionSchema,
        samples: Iterable[Sample] = (),
        validate: bool = True,
    ) -> None:
        if not name:
            raise DatasetError("dataset name must be non-empty")
        self.name = name
        self.schema = schema
        self._samples: dict = {}
        #: Memoised :class:`~repro.store.columnar.DatasetStore` objects,
        #: keyed by bin size; invalidated whenever a sample is added.
        self._stores: dict = {}
        #: Provenance records attached by GMQL operators (see
        #: :mod:`repro.gmql.provenance`); empty for source datasets.
        self.provenance: list = []
        for sample in samples:
            self.add_sample(sample, validate=validate)

    # -- construction ---------------------------------------------------------

    def add_sample(self, sample: Sample, validate: bool = True) -> None:
        """Add one sample, enforcing id uniqueness and schema conformance."""
        if sample.id in self._samples:
            raise DatasetError(
                f"duplicate sample id {sample.id} in dataset {self.name!r}"
            )
        if validate:
            sample = self._conform(sample)
        self._samples[sample.id] = sample
        self._stores = {}

    def _conform(self, sample: Sample) -> Sample:
        width = len(self.schema)
        regions = []
        dirty = False
        for region in sample.regions:
            if len(region.values) == width:
                try:
                    coerced = self.schema.coerce_values(region.values)
                except SchemaError as exc:
                    raise SchemaError(
                        f"sample {sample.id} of {self.name!r}: {exc}"
                    ) from exc
                if coerced != region.values:
                    region = region.with_values(coerced)
                    dirty = True
            else:
                coerced = self.schema.coerce_values(region.values)
                region = region.with_values(coerced)
                dirty = True
            regions.append(region)
        return sample.with_regions(regions) if dirty else sample

    @classmethod
    def build(
        cls,
        name: str,
        schema: RegionSchema,
        samples: Mapping[int, tuple] | None = None,
    ) -> "Dataset":
        """Convenience constructor from ``{id: (regions, metadata_dict)}``.

        >>> ds = Dataset.build("D", RegionSchema.empty(),
        ...                    {1: ([GenomicRegion("chr1", 0, 10)], {"cell": "HeLa"})})
        >>> len(ds)
        1
        """
        dataset = cls(name, schema)
        for sample_id, (regions, meta) in (samples or {}).items():
            dataset.add_sample(Sample(sample_id, regions, Metadata(meta)))
        return dataset

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        """Number of samples."""
        return len(self._samples)

    def __iter__(self) -> Iterator[Sample]:
        """Iterate samples in ascending id order (deterministic)."""
        for sample_id in sorted(self._samples):
            yield self._samples[sample_id]

    def __contains__(self, sample_id: int) -> bool:
        return sample_id in self._samples

    def __getitem__(self, sample_id: int) -> Sample:
        try:
            return self._samples[sample_id]
        except KeyError:
            raise DatasetError(
                f"no sample {sample_id} in dataset {self.name!r}"
            ) from None

    @property
    def sample_ids(self) -> tuple:
        """Sorted tuple of member sample ids."""
        return tuple(sorted(self._samples))

    def region_count(self) -> int:
        """Total number of regions across all samples."""
        return sum(len(sample) for sample in self._samples.values())

    def metadata_count(self) -> int:
        """Total number of metadata (attribute, value) pairs across samples."""
        return sum(len(sample.meta) for sample in self._samples.values())

    def chromosomes(self) -> tuple:
        """Sorted tuple of chromosomes appearing anywhere in the dataset."""
        found: set = set()
        for sample in self._samples.values():
            found.update(region.chrom for region in sample.regions)
        return tuple(sorted(found))

    def metadata_attributes(self) -> tuple:
        """Sorted tuple of metadata attribute names used by any sample."""
        found: set = set()
        for sample in self._samples.values():
            found.update(sample.meta.attributes())
        return tuple(sorted(found))

    def store(
        self,
        bin_size: int | None = None,
        root: str | None = None,
        sync: bool | None = None,
    ):
        """The columnar store of this dataset (built lazily, memoised).

        Returns a :class:`~repro.store.columnar.DatasetStore`: per-sample
        struct-of-arrays blocks, zone maps and the content digest.  One
        store is kept per requested (bin size, store root); adding a
        sample invalidates all of them, so stores always describe
        current content.

        *root* overrides the process-default store root (see
        :func:`repro.store.persist.store_root`); with a root the store
        serves blocks from persisted memory-mapped segments when they
        exist and persists them after an in-memory build otherwise.
        *sync* fixes the persist mode for a newly created store
        (ignored on memo hits, which keep their original mode).
        """
        from repro.store.columnar import DatasetStore
        from repro.store.persist import store_root

        resolved_root = root if root is not None else store_root()
        key = (bin_size or 0, resolved_root)
        store = self._stores.get(key)
        if store is None:
            store = DatasetStore(self, bin_size, root=resolved_root,
                                 sync=sync)
            self._stores[key] = store
        return store

    def store_stats(self) -> dict:
        """Aggregate observability counters across all memoised stores."""
        totals = {
            "blocks_built": 0,
            "blocks_mapped": 0,
            "blocks_evicted": 0,
            "resident_bytes": 0,
        }
        for store in self._stores.values():
            for name in totals:
                totals[name] += store.stats()[name]
        return totals

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop memoised stores: memmaps and block arrays never travel.

        A revived dataset (worker process, persisted result cache)
        rebuilds or re-opens its store lazily, which is both smaller on
        the wire and correct across machines.
        """
        return {
            "name": self.name,
            "schema": self.schema,
            "_samples": self._samples,
            "provenance": self.provenance,
        }

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.schema = state["schema"]
        self._samples = state["_samples"]
        self.provenance = state["provenance"]
        self._stores = {}

    def estimated_size_bytes(self) -> int:
        """Rough serialised size, used by the federation cost estimator.

        Counts a fixed 32 bytes per region for the coordinates plus 12
        bytes per variable value, and 24 bytes per metadata pair --
        calibrated against the tab-separated on-disk format.
        """
        region_bytes = 0
        for sample in self._samples.values():
            region_bytes += len(sample) * (32 + 12 * len(self.schema))
        return region_bytes + 24 * self.metadata_count()

    # -- triples view (the GDM instance layout of Figure 2) -------------------

    def region_rows(self) -> Iterator[tuple]:
        """Iterate region rows as ``(id, chrom, left, right, strand, v...)``."""
        for sample in self:
            for region in sample.regions:
                yield (sample.id, *region)

    def metadata_triples(self) -> Iterator[tuple]:
        """Iterate the GDM metadata triples ``(id, attribute, value)``."""
        for sample in self:
            yield from sample.meta.triples(sample.id)

    # -- derivation -----------------------------------------------------------

    def with_name(self, name: str) -> "Dataset":
        """Shallow copy under a new name (samples shared)."""
        clone = Dataset(name, self.schema, validate=False)
        clone._samples = dict(self._samples)
        clone.provenance = list(self.provenance)
        return clone

    def with_samples(
        self, samples: Iterable[Sample], name: str | None = None,
        schema: RegionSchema | None = None, validate: bool = False,
    ) -> "Dataset":
        """New dataset like this one but with a different sample list."""
        result = Dataset(name or self.name, schema or self.schema,
                         samples, validate=validate)
        return result

    def shard_summary(self) -> dict:
        """Per-chromosome shard statistics for federated placement.

        ``{"clustered": bool, "chroms": {chrom: [shard_count, regions,
        bytes]}}``: one (sample, chromosome) shard per entry of the
        count, bytes under the :meth:`estimated_size_bytes` region cost
        model.  ``clustered`` reports whether every sample's regions
        form one contiguous run per chromosome in genome order -- the
        precondition for order-preserving shard slicing and merging.
        """
        from repro.gdm.region import chromosome_sort_key

        per_region = 32 + 12 * len(self.schema)
        chroms: dict = {}
        clustered = True
        for sample in self._samples.values():
            counts: dict = {}
            previous = None
            for region in sample.regions:
                if region.chrom != previous:
                    if region.chrom in counts or (
                        previous is not None
                        and chromosome_sort_key(region.chrom)
                        < chromosome_sort_key(previous)
                    ):
                        clustered = False
                    previous = region.chrom
                counts[region.chrom] = counts.get(region.chrom, 0) + 1
            for chrom, count in counts.items():
                entry = chroms.setdefault(chrom, [0, 0, 0])
                entry[0] += 1
                entry[1] += count
                entry[2] += count * per_region
        ordered = {
            chrom: chroms[chrom]
            for chrom in sorted(chroms, key=chromosome_sort_key)
        }
        return {"clustered": clustered, "chroms": ordered}

    def summary(self) -> dict:
        """Summary statistics dictionary used by repr, logs and protocols."""
        return {
            "name": self.name,
            "samples": len(self),
            "regions": self.region_count(),
            "metadata_pairs": self.metadata_count(),
            "schema": list(self.schema.names),
            # Typed schema (attribute -> GDM type name): lets remote
            # peers rebuild a RegionSchema and run exact semantic
            # analysis without touching the data.
            "schema_types": {d.name: d.type.name for d in self.schema},
            "size_bytes": self.estimated_size_bytes(),
            # (sample, chromosome) shard manifest: what federated
            # shard-aware placement plans over (see
            # :mod:`repro.federation.shards`).
            "shards": self.shard_summary(),
        }

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, samples={len(self)},"
            f" regions={self.region_count()}, schema={list(self.schema.names)})"
        )


def region(
    chrom: str,
    left: int,
    right: int,
    strand: str = "*",
    *values: Any,
) -> GenomicRegion:
    """Shorthand region constructor used throughout tests and examples."""
    return GenomicRegion(chrom, left, right, strand, tuple(values))
