"""Samples: the unit linking regions and metadata through a shared id.

"The sample ID provides a many-to-many connection between regions and
metadata of the same sample" (paper, section 2).  A :class:`Sample` owns an
id, an ordered list of regions, and one :class:`~repro.gdm.metadata.Metadata`
instance.  Samples are value objects from the algebra's point of view:
operators derive new samples instead of mutating existing ones.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import DatasetError
from repro.gdm.metadata import Metadata
from repro.gdm.region import GenomicRegion


class Sample:
    """One experimental sample: id + regions + metadata.

    Parameters
    ----------
    sample_id:
        Integer identifier, unique within the owning dataset.
    regions:
        Iterable of :class:`GenomicRegion`; stored as a list in the
        given order (operators that need genome order sort explicitly).
    meta:
        The sample's metadata; defaults to empty metadata.
    """

    __slots__ = ("id", "regions", "meta")

    def __init__(
        self,
        sample_id: int,
        regions: Iterable[GenomicRegion] = (),
        meta: Metadata | None = None,
    ) -> None:
        if sample_id < 0:
            raise DatasetError(f"negative sample id: {sample_id}")
        self.id = int(sample_id)
        self.regions = list(regions)
        self.meta = meta if meta is not None else Metadata()

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        """Number of regions in the sample."""
        return len(self.regions)

    def __iter__(self) -> Iterator[GenomicRegion]:
        return iter(self.regions)

    def chromosomes(self) -> tuple:
        """Sorted tuple of chromosome names present in the sample."""
        return tuple(sorted({region.chrom for region in self.regions}))

    def regions_on(self, chrom: str) -> list:
        """Regions lying on the given chromosome, in stored order."""
        return [region for region in self.regions if region.chrom == chrom]

    def sorted_regions(self) -> list:
        """Regions in genome order (chromosome, left, right)."""
        return sorted(self.regions, key=GenomicRegion.sort_key)

    def is_sorted(self) -> bool:
        """True when regions are already in genome order."""
        keys = [region.sort_key() for region in self.regions]
        return all(a <= b for a, b in zip(keys, keys[1:]))

    def covered_positions(self) -> int:
        """Total number of distinct genomic positions covered.

        Overlapping regions are counted once; this walks regions in genome
        order and merges overlaps.
        """
        covered = 0
        last_chrom = None
        last_right = 0
        for region in self.sorted_regions():
            if region.chrom != last_chrom:
                last_chrom = region.chrom
                last_right = 0
            left = max(region.left, last_right)
            if region.right > left:
                covered += region.right - left
                last_right = region.right
            last_right = max(last_right, region.right)
        return covered

    # -- derivation -----------------------------------------------------------

    def with_id(self, sample_id: int) -> "Sample":
        """Copy under a new id (shares region objects: they are immutable)."""
        return Sample(sample_id, self.regions, self.meta)

    def with_regions(self, regions: Iterable[GenomicRegion]) -> "Sample":
        """Copy with the region list replaced."""
        return Sample(self.id, regions, self.meta)

    def with_meta(self, meta: Metadata) -> "Sample":
        """Copy with the metadata replaced."""
        return Sample(self.id, self.regions, meta)

    def filter_regions(
        self, predicate: Callable[[GenomicRegion], bool]
    ) -> "Sample":
        """Copy keeping only the regions satisfying *predicate*."""
        return self.with_regions(
            [region for region in self.regions if predicate(region)]
        )

    def map_regions(
        self, transform: Callable[[GenomicRegion], GenomicRegion]
    ) -> "Sample":
        """Copy with every region passed through *transform*."""
        return self.with_regions([transform(region) for region in self.regions])

    def values_of(self, index: int) -> list:
        """The *index*-th variable value of every region (aggregate input)."""
        return [region.values[index] for region in self.regions]

    def __repr__(self) -> str:
        return (
            f"Sample(id={self.id}, regions={len(self.regions)},"
            f" meta_pairs={len(self.meta)})"
        )


def renumber(samples: Sequence[Sample], start: int = 1) -> list:
    """Return copies of *samples* with consecutive ids from *start*.

    GMQL operators produce result datasets whose samples get fresh ids;
    provenance records keep the link to the originating ids.
    """
    return [sample.with_id(start + i) for i, sample in enumerate(samples)]
