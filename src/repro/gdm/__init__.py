"""Genomic Data Model (GDM): regions + metadata, the paper's section 2.

The model has just two entities.  *Regions* have five fixed attributes
(sample id, chromosome, left end, right end, strand) plus dataset-specific
typed variable attributes; *metadata* are (id, attribute, value) triples.
Samples with the same region schema form named datasets, and *schema
merging* makes heterogeneous processed data interoperable.
"""

from repro.gdm.dataset import Dataset, region
from repro.gdm.digest import dataset_digest, results_digest
from repro.gdm.metadata import Metadata
from repro.gdm.region import GenomicRegion, STRANDS, chromosome_sort_key
from repro.gdm.render import render_tables, render_tracks
from repro.gdm.sample import Sample, renumber
from repro.gdm.schema import (
    AttributeDef,
    AttributeType,
    BOOL,
    FIXED_ATTRIBUTES,
    FLOAT,
    INT,
    MergedSchema,
    RegionSchema,
    STR,
    infer_type,
    type_named,
)

__all__ = [
    "AttributeDef",
    "AttributeType",
    "BOOL",
    "Dataset",
    "FIXED_ATTRIBUTES",
    "FLOAT",
    "GenomicRegion",
    "INT",
    "MergedSchema",
    "Metadata",
    "RegionSchema",
    "STR",
    "STRANDS",
    "Sample",
    "chromosome_sort_key",
    "dataset_digest",
    "infer_type",
    "region",
    "renumber",
    "results_digest",
    "render_tables",
    "render_tracks",
    "type_named",
]
