"""Region schemas: typed variable attributes of a dataset.

The paper (section 2) fixes the first five region attributes (sample id,
chromosome, left, right, strand) and lets each dataset declare further
*variable* attributes that "reflect the calling process that produced them".
:class:`RegionSchema` names and types those variable attributes, coerces and
validates values, and implements the paper's *schema merging* operation
(fixed attributes stay in common, variable attributes are concatenated).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import SchemaError

#: Names of the fixed GDM attributes, reserved and present in every schema.
FIXED_ATTRIBUTES = ("id", "chrom", "left", "right", "strand")


class AttributeType:
    """One of the four GDM value types, with parsing and coercion rules."""

    __slots__ = ("name", "_pytype")

    def __init__(self, name: str, pytype: type) -> None:
        self.name = name
        self._pytype = pytype

    def coerce(self, value: Any) -> Any:
        """Convert *value* to this type, raising :class:`SchemaError` on failure.

        ``None`` passes through unchanged: GDM allows missing variable values
        (schema merging introduces them for samples that lack an attribute).
        """
        if value is None:
            return None
        try:
            if self._pytype is bool and isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1", "yes"):
                    return True
                if lowered in ("false", "f", "0", "no"):
                    return False
                raise ValueError(value)
            coerced = self._pytype(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"cannot coerce {value!r} to {self.name}"
            ) from exc
        if self._pytype is float and isinstance(coerced, float) and math.isnan(coerced):
            return None
        return coerced

    def parse(self, text: str) -> Any:
        """Parse a textual field (as found in BED-like files)."""
        if text in ("", ".", "NULL", "null", "NA"):
            return None
        return self.coerce(text)

    def format(self, value: Any) -> str:
        """Serialise a value back to text (``"."`` for missing)."""
        if value is None:
            return "."
        if self._pytype is float:
            return repr(float(value))
        return str(value)

    def __repr__(self) -> str:
        return f"AttributeType({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AttributeType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)


INT = AttributeType("INT", int)
FLOAT = AttributeType("FLOAT", float)
STR = AttributeType("STR", str)
BOOL = AttributeType("BOOL", bool)

_TYPES_BY_NAME = {t.name: t for t in (INT, FLOAT, STR, BOOL)}


def type_named(name: str) -> AttributeType:
    """Look up an :class:`AttributeType` by its name (case-insensitive)."""
    try:
        return _TYPES_BY_NAME[name.upper()]
    except KeyError:
        raise SchemaError(
            f"unknown attribute type {name!r}; expected one of "
            f"{sorted(_TYPES_BY_NAME)}"
        ) from None


def infer_type(value: Any) -> AttributeType:
    """Infer the narrowest GDM type for a Python value."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    return STR


@dataclass(frozen=True)
class AttributeDef:
    """Name and type of one variable region attribute."""

    name: str
    type: AttributeType

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"bad attribute name {self.name!r}")
        if self.name.lower() in FIXED_ATTRIBUTES:
            raise SchemaError(
                f"attribute name {self.name!r} collides with a fixed GDM attribute"
            )


class RegionSchema:
    """Ordered collection of variable attribute definitions.

    The fixed attributes are implicit and shared by every schema; equality
    and merging therefore only consider the variable part.

    >>> schema = RegionSchema.of(("p_value", FLOAT))
    >>> schema.names
    ('p_value',)
    """

    __slots__ = ("_defs", "_index")

    def __init__(self, defs: Iterable[AttributeDef] = ()) -> None:
        self._defs = tuple(defs)
        self._index = {d.name: i for i, d in enumerate(self._defs)}
        if len(self._index) != len(self._defs):
            seen: set = set()
            for d in self._defs:
                if d.name in seen:
                    raise SchemaError(f"duplicate attribute {d.name!r} in schema")
                seen.add(d.name)

    @classmethod
    def of(cls, *pairs: tuple) -> "RegionSchema":
        """Build a schema from ``(name, type)`` pairs.

        Types may be :class:`AttributeType` instances or type names.
        """
        defs = []
        for name, typ in pairs:
            if isinstance(typ, str):
                typ = type_named(typ)
            defs.append(AttributeDef(name, typ))
        return cls(defs)

    @classmethod
    def empty(cls) -> "RegionSchema":
        """Schema with no variable attributes (pure coordinate data)."""
        return cls(())

    # -- introspection ------------------------------------------------------

    @property
    def names(self) -> tuple:
        """Variable attribute names, in order."""
        return tuple(d.name for d in self._defs)

    @property
    def types(self) -> tuple:
        """Variable attribute types, in order."""
        return tuple(d.type for d in self._defs)

    def __len__(self) -> int:
        return len(self._defs)

    def __iter__(self) -> Iterator[AttributeDef]:
        return iter(self._defs)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> AttributeDef:
        try:
            return self._defs[self._index[name]]
        except KeyError:
            raise SchemaError(f"no attribute {name!r} in schema {self.names}") from None

    def index_of(self, name: str) -> int:
        """Position of *name* among the variable attributes."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no attribute {name!r} in schema {self.names}") from None

    # -- value handling -----------------------------------------------------

    def coerce_values(self, values: Sequence[Any]) -> tuple:
        """Coerce a value tuple to the schema's types.

        Short tuples are padded with ``None`` (missing values); long tuples
        are an error.
        """
        if len(values) > len(self._defs):
            raise SchemaError(
                f"{len(values)} values for {len(self._defs)}-attribute schema"
            )
        coerced = [d.type.coerce(v) for d, v in zip(self._defs, values)]
        coerced.extend([None] * (len(self._defs) - len(values)))
        return tuple(coerced)

    def value_of(self, values: Sequence[Any], name: str) -> Any:
        """Extract the value of attribute *name* from a value tuple."""
        return values[self.index_of(name)]

    # -- schema algebra -------------------------------------------------------

    def project(self, names: Sequence[str]) -> "RegionSchema":
        """Schema restricted to *names*, in the order given."""
        return RegionSchema(tuple(self[name] for name in names))

    def extend(self, *defs: AttributeDef) -> "RegionSchema":
        """Schema with extra attributes appended."""
        return RegionSchema(self._defs + tuple(defs))

    def merge(self, other: "RegionSchema") -> "MergedSchema":
        """GDM schema merging (paper, section 2).

        Fixed attributes are in common; variable attributes are
        concatenated.  A name carried by both schemas with the same type is
        unified into a single attribute; a clash with different types gets
        the right-hand attribute suffixed with ``_right``.  The returned
        :class:`MergedSchema` also knows how to remap each operand's value
        tuples into the merged layout, which is what makes heterogeneous
        processed data interoperable.
        """
        defs = list(self._defs)
        positions_left = list(range(len(self._defs)))
        positions_right: list = [None] * len(other._defs)
        for j, d in enumerate(other._defs):
            if d.name in self._index and self[d.name].type == d.type:
                positions_right[j] = self._index[d.name]
                continue
            name = d.name
            if d.name in self._index:
                name = f"{d.name}_right"
            while any(existing.name == name for existing in defs):
                name += "_"
            defs.append(AttributeDef(name, d.type))
            positions_right[j] = len(defs) - 1
        merged = RegionSchema(defs)
        return MergedSchema(merged, tuple(positions_left), tuple(positions_right))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegionSchema):
            return NotImplemented
        return self._defs == other._defs

    def __hash__(self) -> int:
        return hash(self._defs)

    def __repr__(self) -> str:
        body = ", ".join(f"{d.name}: {d.type.name}" for d in self._defs)
        return f"RegionSchema({body})"


class MergedSchema:
    """Result of :meth:`RegionSchema.merge`: the merged schema plus remappers."""

    __slots__ = ("schema", "_left_positions", "_right_positions")

    def __init__(
        self,
        schema: RegionSchema,
        left_positions: tuple,
        right_positions: tuple,
    ) -> None:
        self.schema = schema
        self._left_positions = left_positions
        self._right_positions = right_positions

    def remap_left(self, values: Sequence[Any]) -> tuple:
        """Lay out a left-operand value tuple in the merged schema."""
        out: list = [None] * len(self.schema)
        for source, target in enumerate(self._left_positions):
            out[target] = values[source]
        return tuple(out)

    def remap_right(self, values: Sequence[Any]) -> tuple:
        """Lay out a right-operand value tuple in the merged schema."""
        out: list = [None] * len(self.schema)
        for source, target in enumerate(self._right_positions):
            out[target] = values[source]
        return tuple(out)

    def combine(
        self, left_values: Sequence[Any], right_values: Sequence[Any]
    ) -> tuple:
        """Lay out one value tuple from each operand side by side.

        On attributes unified by the merge, a non-missing right value
        overwrites the left one (join semantics: the probed region's
        value is the fresher observation).
        """
        out = list(self.remap_left(left_values))
        for source, target in enumerate(self._right_positions):
            if right_values[source] is not None:
                out[target] = right_values[source]
        return tuple(out)
