"""Genomic regions: the first of the two GDM entities.

A region carries the paper's five *fixed* attributes -- sample id, chromosome,
left end, right end and strand -- plus a tuple of *variable* attribute values
whose names and types are given by the owning dataset's
:class:`~repro.gdm.schema.RegionSchema`.  The sample id is not stored on the
region object itself: regions live inside a :class:`~repro.gdm.sample.Sample`,
which carries the id once for all of its regions (the id is restored when
regions are serialised).

Coordinates follow the BED convention: 0-based, half-open ``[left, right)``.
The genome is modelled as "a sequence of positions" (paper, section 2), which
is what makes genometric distance predicates well defined.
"""

from __future__ import annotations

import re
from typing import Any, Iterator

from repro.errors import CoordinateError

#: The three legal strand symbols: forward, reverse, and unstranded.
STRANDS = ("+", "-", "*")

_CHROM_SPLIT = re.compile(r"(\d+)")


def chromosome_sort_key(chrom: str) -> tuple:
    """Return a sort key that orders chromosomes naturally.

    ``chr2`` sorts before ``chr10``, and numeric chromosomes come before
    the sex chromosomes, matching genome-browser ordering.

    >>> sorted(["chr10", "chr2", "chrX"], key=chromosome_sort_key)
    ['chr2', 'chr10', 'chrX']
    """
    parts = _CHROM_SPLIT.split(chrom)
    return tuple(int(p) if p.isdigit() else p for p in parts)


class GenomicRegion:
    """One genomic region with typed variable attribute values.

    Instances are immutable and hashable; GMQL operators never mutate
    regions, they build new ones.

    Parameters
    ----------
    chrom:
        Chromosome name, e.g. ``"chr1"``.
    left, right:
        0-based half-open interval ends, ``0 <= left < right``.
        Zero-length regions (``left == right``) are permitted because
        point features (e.g. break points) are modelled that way.
    strand:
        One of ``"+"``, ``"-"`` or ``"*"`` (unstranded).
    values:
        Values of the variable attributes, in schema order.
    """

    __slots__ = ("chrom", "left", "right", "strand", "values")

    def __init__(
        self,
        chrom: str,
        left: int,
        right: int,
        strand: str = "*",
        values: tuple = (),
    ) -> None:
        if left < 0:
            raise CoordinateError(f"negative left end: {left}")
        if right < left:
            raise CoordinateError(f"inverted region: [{left}, {right})")
        if strand not in STRANDS:
            raise CoordinateError(f"bad strand {strand!r}; expected one of {STRANDS}")
        if not chrom:
            raise CoordinateError("empty chromosome name")
        self.chrom = chrom
        self.left = int(left)
        self.right = int(right)
        self.strand = strand
        self.values = tuple(values)

    # -- basic geometry -----------------------------------------------------

    @property
    def length(self) -> int:
        """Number of genomic positions covered by the region."""
        return self.right - self.left

    @property
    def midpoint(self) -> float:
        """The centre position of the region (may fall between positions)."""
        return (self.left + self.right) / 2.0

    @property
    def five_prime(self) -> int:
        """The 5' end: ``left`` on ``+``/``*`` strands, ``right`` on ``-``."""
        return self.right if self.strand == "-" else self.left

    @property
    def three_prime(self) -> int:
        """The 3' end: ``right`` on ``+``/``*`` strands, ``left`` on ``-``."""
        return self.left if self.strand == "-" else self.right

    def overlaps(self, other: "GenomicRegion") -> bool:
        """True if the two regions share at least one genomic position.

        Uses the plain half-open formula ``a.left < b.right and
        b.left < a.right``; a zero-length point feature therefore overlaps
        intervals strictly containing its position, but nothing that only
        touches it at a boundary.  Regions on different chromosomes never
        overlap.  Strand is ignored -- GMQL overlap tests ignore strand
        unless an operator says otherwise; use :meth:`strands_compatible`
        to add the check.
        """
        return (
            self.chrom == other.chrom
            and self.left < other.right
            and other.left < self.right
        )

    def strands_compatible(self, other: "GenomicRegion") -> bool:
        """True when the strands do not contradict each other."""
        return "*" in (self.strand, other.strand) or self.strand == other.strand

    def contains(self, other: "GenomicRegion") -> bool:
        """True if *other* lies entirely within this region."""
        return (
            self.chrom == other.chrom
            and self.left <= other.left
            and other.right <= self.right
        )

    def distance(self, other: "GenomicRegion") -> int | None:
        """Genometric distance between two regions.

        Returns ``None`` when the regions are on different chromosomes,
        a negative number equal to minus the overlap width when they
        overlap, ``0`` when adjacent, and the size of the gap otherwise.
        This is the distance used by GMQL's genometric join predicates
        (``DLE``/``DGE``).
        """
        if self.chrom != other.chrom:
            return None
        gap = max(self.left, other.left) - min(self.right, other.right)
        return gap

    def intersection_width(self, other: "GenomicRegion") -> int:
        """Width of the overlap between the two regions (0 if disjoint)."""
        if self.chrom != other.chrom:
            return 0
        return max(0, min(self.right, other.right) - max(self.left, other.left))

    # -- derived regions ----------------------------------------------------

    def with_values(self, values: tuple) -> "GenomicRegion":
        """Copy of this region with a different variable-value tuple."""
        return GenomicRegion(self.chrom, self.left, self.right, self.strand, values)

    def with_coordinates(
        self, left: int, right: int, strand: str | None = None
    ) -> "GenomicRegion":
        """Copy of this region moved to new coordinates."""
        return GenomicRegion(
            self.chrom, left, right, strand or self.strand, self.values
        )

    def promoter(self, upstream: int, downstream: int) -> "GenomicRegion":
        """Strand-aware promoter window around the 5' end (TSS).

        For a ``+``/``*`` region the window is
        ``[left - upstream, left + downstream)``; for ``-`` it is mirrored
        around ``right``.  The left end is clipped at zero.
        """
        tss = self.five_prime
        if self.strand == "-":
            left, right = tss - downstream, tss + upstream
        else:
            left, right = tss - upstream, tss + downstream
        return GenomicRegion(self.chrom, max(0, left), max(0, right), self.strand,
                             self.values)

    # -- ordering / identity --------------------------------------------------

    def sort_key(self) -> tuple:
        """Genome-order key: (chromosome natural order, left, right, strand)."""
        return (chromosome_sort_key(self.chrom), self.left, self.right, self.strand)

    def coordinates(self) -> tuple:
        """The (chrom, left, right, strand) tuple identifying the locus."""
        return (self.chrom, self.left, self.right, self.strand)

    def __iter__(self) -> Iterator[Any]:
        """Iterate fixed coordinates then variable values (for serialisers)."""
        yield self.chrom
        yield self.left
        yield self.right
        yield self.strand
        yield from self.values

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GenomicRegion):
            return NotImplemented
        return (
            self.chrom == other.chrom
            and self.left == other.left
            and self.right == other.right
            and self.strand == other.strand
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash((self.chrom, self.left, self.right, self.strand, self.values))

    def __repr__(self) -> str:
        vals = f", values={self.values!r}" if self.values else ""
        return (
            f"GenomicRegion({self.chrom!r}, {self.left}, {self.right},"
            f" {self.strand!r}{vals})"
        )
