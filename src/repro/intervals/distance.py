"""Genometric distances: the machinery behind GMQL's distal join predicates.

The genome is "a sequence of positions" (paper, section 2); distances between
regions are measured in positions between their closest ends, with negative
values denoting overlap width.  This module provides nearest-neighbour
queries (``MD(k)``), bounded-distance candidate enumeration (``DLE``/``DGE``)
and strand-aware upstream/downstream classification.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Sequence

from repro.gdm.region import GenomicRegion


def distance(a: GenomicRegion, b: GenomicRegion) -> int | None:
    """Genometric distance (see :meth:`GenomicRegion.distance`)."""
    return a.distance(b)


def is_upstream(anchor: GenomicRegion, other: GenomicRegion) -> bool:
    """True when *other* lies upstream of *anchor*, relative to its strand.

    Upstream of a ``+`` (or unstranded) anchor means strictly before its
    left end; upstream of a ``-`` anchor means strictly after its right
    end.  Overlapping regions are neither upstream nor downstream.
    """
    if anchor.chrom != other.chrom:
        return False
    if anchor.strand == "-":
        return other.left >= anchor.right
    return other.right <= anchor.left


def is_downstream(anchor: GenomicRegion, other: GenomicRegion) -> bool:
    """True when *other* lies downstream of *anchor* (strand-aware)."""
    if anchor.chrom != other.chrom:
        return False
    if anchor.strand == "-":
        return other.right <= anchor.left
    return other.left >= anchor.right


def stream_pair_mask(
    anchor_strands,
    anchor_starts,
    anchor_stops,
    other_starts,
    other_stops,
    *,
    upstream: bool,
):
    """Vectorised :func:`is_upstream` / :func:`is_downstream` over pairs.

    All five arrays are aligned element-wise and describe same-chromosome
    (anchor, other) pairs; *anchor_strands* uses the store's integer
    strand encoding where ``'-'`` is negative (see
    :data:`repro.store.columnar.STRAND_CODES`).  Returns a boolean mask.
    Overlapping pairs are neither upstream nor downstream, exactly like
    the scalar predicates.
    """
    import numpy as np

    before = other_stops <= anchor_starts
    after = other_starts >= anchor_stops
    reverse = anchor_strands < 0
    if upstream:
        return np.where(reverse, after, before)
    return np.where(reverse, before, after)


class NearestIndex:
    """Per-chromosome sorted index answering nearest-k and within-d queries.

    Build once over the *experiment* side of a genometric join, then probe
    with each *anchor* region.  Uses binary search over regions sorted by
    left end, expanding outward -- O(log n + k) per probe in sparse data.
    """

    __slots__ = ("_by_chrom", "_lefts", "_max_width")

    def __init__(self, regions: Sequence[GenomicRegion]) -> None:
        self._by_chrom: dict = {}
        for region in regions:
            self._by_chrom.setdefault(region.chrom, []).append(region)
        self._lefts: dict = {}
        self._max_width: dict = {}
        for chrom, chrom_regions in self._by_chrom.items():
            chrom_regions.sort(key=lambda r: (r.left, r.right))
            self._lefts[chrom] = [r.left for r in chrom_regions]
            self._max_width[chrom] = max(r.length for r in chrom_regions)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_chrom.values())

    def within(
        self, anchor: GenomicRegion, max_distance: int
    ) -> Iterator[tuple]:
        """Yield ``(region, distance)`` for regions within *max_distance*.

        Overlapping regions (negative distance) are always included when
        ``max_distance >= 0``.  Results are unordered.
        """
        chrom_regions = self._by_chrom.get(anchor.chrom)
        if not chrom_regions:
            return
        lefts = self._lefts[anchor.chrom]
        # A region with left end beyond anchor.right + max_distance starts
        # too far right; one whose left end is more than
        # max_distance + max_width before the anchor must also end too far
        # left.  Both bounds are binary-searchable on the sorted lefts.
        hi = bisect.bisect_right(lefts, anchor.right + max_distance)
        lo = bisect.bisect_left(
            lefts,
            anchor.left - max_distance - self._max_width[anchor.chrom],
        )
        for region in chrom_regions[lo:hi]:
            gap = max(anchor.left, region.left) - min(anchor.right, region.right)
            if gap <= max_distance:
                yield (region, gap)

    def nearest(
        self, anchor: GenomicRegion, k: int = 1
    ) -> list:
        """The *k* regions with minimum distance to *anchor*.

        Returns ``(region, distance)`` pairs ordered by distance then
        genome position.  This is the ``MD(k)`` join predicate.
        """
        chrom_regions = self._by_chrom.get(anchor.chrom)
        if not chrom_regions:
            return []
        scored = [
            (max(anchor.left, region.left) - min(anchor.right, region.right),
             region.left, region.right, region)
            for region in chrom_regions
        ]
        scored.sort(key=lambda item: item[:3])
        return [(item[3], item[0]) for item in scored[:k]]

    def nearest_upstream(
        self, anchor: GenomicRegion, k: int = 1
    ) -> list:
        """The *k* nearest regions upstream of *anchor* (strand-aware)."""
        return [
            (region, gap)
            for region, gap in self.nearest(anchor, k=len(self))
            if is_upstream(anchor, region)
        ][:k]

    def nearest_downstream(
        self, anchor: GenomicRegion, k: int = 1
    ) -> list:
        """The *k* nearest regions downstream of *anchor* (strand-aware)."""
        return [
            (region, gap)
            for region, gap in self.nearest(anchor, k=len(self))
            if is_downstream(anchor, region)
        ][:k]
