"""Sort-merge (plane sweep) interval joins.

The sweep join is the streaming alternative to the interval tree: both
inputs are sorted in genome order and walked once, keeping an active window
of right-side regions that can still overlap upcoming left-side regions.
It is the strategy of choice when both operands are large and dense -- the
ablation benchmark E14 quantifies the crossover against the tree.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.gdm.region import GenomicRegion, chromosome_sort_key


def _grouped_by_chrom(regions: Sequence[GenomicRegion]) -> dict:
    grouped: dict = {}
    for region in regions:
        grouped.setdefault(region.chrom, []).append(region)
    for chrom_regions in grouped.values():
        chrom_regions.sort(key=lambda r: (r.left, r.right))
    return grouped


def sweep_overlap_join(
    left: Sequence[GenomicRegion],
    right: Sequence[GenomicRegion],
) -> Iterator[tuple]:
    """Yield all overlapping pairs ``(l, r)`` with ``l`` from *left*.

    Neither input needs to be pre-sorted; regions are grouped per
    chromosome and sorted internally.  Pairs are emitted in genome order
    of the left region.  Complexity is O(n log n + m log m + k) for k
    result pairs.

    >>> a = [GenomicRegion("chr1", 0, 10)]
    >>> b = [GenomicRegion("chr1", 5, 7), GenomicRegion("chr1", 12, 14)]
    >>> [(l.left, r.left) for l, r in sweep_overlap_join(a, b)]
    [(0, 5)]
    """
    left_groups = _grouped_by_chrom(left)
    right_groups = _grouped_by_chrom(right)
    for chrom in sorted(
        set(left_groups) & set(right_groups), key=chromosome_sort_key
    ):
        yield from _sweep_chromosome(left_groups[chrom], right_groups[chrom])


def _sweep_chromosome(
    lefts: list, rights: list
) -> Iterator[tuple]:
    active: list = []  # right regions whose intervals may still overlap
    j = 0
    for l_region in lefts:
        # Admit right regions starting before the left region ends.
        while j < len(rights) and rights[j].left < l_region.right:
            active.append(rights[j])
            j += 1
        # Evict right regions ending at or before the left region start;
        # they can never overlap this or any later left region.
        if active:
            active = [r for r in active if r.right > l_region.left]
        for r_region in active:
            if r_region.left < l_region.right and l_region.left < r_region.right:
                yield (l_region, r_region)


def sweep_count_overlaps(
    references: Sequence[GenomicRegion],
    probes: Sequence[GenomicRegion],
) -> list:
    """Count, for each reference region, the probes overlapping it.

    Returns a list of counts aligned with the *input order* of
    *references*.  This is the kernel of GMQL MAP with a COUNT aggregate
    and is what the Section-2 headline query spends its time in.
    """
    counts = [0] * len(references)
    ref_by_chrom: dict = {}
    for position, region in enumerate(references):
        ref_by_chrom.setdefault(region.chrom, []).append((region, position))
    probe_groups = _grouped_by_chrom(probes)
    for chrom, indexed_refs in ref_by_chrom.items():
        chrom_probes = probe_groups.get(chrom)
        if not chrom_probes:
            continue
        indexed_refs.sort(key=lambda pair: (pair[0].left, pair[0].right))
        active: list = []
        next_probe = 0
        for region, position in indexed_refs:
            while (
                next_probe < len(chrom_probes)
                and chrom_probes[next_probe].left < region.right
            ):
                active.append(chrom_probes[next_probe])
                next_probe += 1
            active = [p for p in active if p.right > region.left]
            counts[position] += sum(
                1
                for p in active
                if p.left < region.right and region.left < p.right
            )
    return counts


def merge_touching(
    regions: Sequence[GenomicRegion], gap: int = 0
) -> list:
    """Merge regions closer than *gap* positions into maximal runs.

    Output regions carry no variable values (schema is reset by merging,
    as in GMQL COVER/FLAT results before aggregates are attached).
    Strand is preserved when all merged regions agree, ``"*"`` otherwise.
    """
    merged: list = []
    grouped = _grouped_by_chrom(regions)
    for chrom in sorted(grouped, key=chromosome_sort_key):
        run_left = run_right = None
        run_strand = None
        for region in grouped[chrom]:
            if run_left is None:
                run_left, run_right = region.left, region.right
                run_strand = region.strand
                continue
            if region.left <= run_right + gap:
                run_right = max(run_right, region.right)
                if run_strand != region.strand:
                    run_strand = "*"
            else:
                merged.append(GenomicRegion(chrom, run_left, run_right, run_strand))
                run_left, run_right = region.left, region.right
                run_strand = region.strand
        if run_left is not None:
            merged.append(GenomicRegion(chrom, run_left, run_right, run_strand))
    return merged
