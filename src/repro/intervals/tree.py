"""Static interval trees over genomic regions.

GMQL's MAP, JOIN and DIFFERENCE operators all reduce to interval overlap
queries.  :class:`IntervalTree` is a classic centered interval tree built
once over an immutable region list; :class:`GenomeIndex` shards one tree per
chromosome.  A sort-merge alternative lives in :mod:`repro.intervals.sweep`;
the ablation benchmark E14 compares them.

Overlap semantics match :meth:`repro.gdm.region.GenomicRegion.overlaps`:
half-open intervals with the plain formula, so zero-length point features
are returned only by queries strictly containing their position.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.gdm.region import GenomicRegion


class _Node:
    __slots__ = ("center", "by_left", "by_right", "less", "greater")

    def __init__(self, center: int, overlapping: list) -> None:
        self.center = center
        self.by_left = sorted(overlapping, key=lambda r: r.left)
        self.by_right = sorted(overlapping, key=lambda r: r.right, reverse=True)
        self.less: _Node | None = None
        self.greater: _Node | None = None


def _build(regions: list) -> _Node | None:
    if not regions:
        return None
    # Node center is the median interval midpoint.  Zero-length regions are
    # widened to one position for placement only; queries still apply exact
    # half-open overlap checks, so they are never spuriously returned.
    midpoints = sorted(
        (r.left + max(r.right, r.left + 1)) // 2 for r in regions
    )
    center = midpoints[len(midpoints) // 2]
    here, less, greater = [], [], []
    for region in regions:
        placed_right = max(region.right, region.left + 1)
        if placed_right <= center:
            less.append(region)
        elif region.left > center:
            greater.append(region)
        else:
            here.append(region)
    if not here:
        # Cannot happen for the median-of-midpoints center (the interval
        # producing the median always straddles it), but guarantee progress
        # against future changes to the center choice.
        source = less if less else greater
        here.append(source.pop())
    node = _Node(center, here)
    node.less = _build(less)
    node.greater = _build(greater)
    return node


class IntervalTree:
    """Centered interval tree over regions of a single chromosome.

    Build cost is O(n log n); an overlap query costs O(log n + k) for k
    hits.  The tree is static: this matches the GMQL execution model,
    where one operand (the reference) is indexed once and probed many
    times.

    >>> tree = IntervalTree([GenomicRegion("chr1", 0, 10),
    ...                      GenomicRegion("chr1", 20, 30)])
    >>> sorted(r.left for r in tree.query(5, 25))
    [0, 20]
    """

    __slots__ = ("_root", "_size")

    def __init__(self, regions: Sequence[GenomicRegion] = ()) -> None:
        self._size = len(regions)
        self._root = _build(list(regions))

    def __len__(self) -> int:
        return self._size

    def query(self, left: int, right: int) -> Iterator[GenomicRegion]:
        """Yield stored regions overlapping ``[left, right)`` (any order)."""
        if right < left:
            return
        if right == left:
            # Zero-length query [p, p): per GenomicRegion.overlaps a point
            # feature matches regions strictly containing its position, so
            # take the [p, p+1) candidates minus ones merely starting at p.
            for region in self.query(left, left + 1):
                if region.left < left:
                    yield region
            return
        stack = []
        if self._root is not None:
            stack.append(self._root)
        while stack:
            node = stack.pop()
            if right <= node.center:
                # Query lies left of (or touches) the center: only regions
                # starting before the query end can overlap.
                for region in node.by_left:
                    if region.left >= right:
                        break
                    if region.right > left:
                        yield region
                if node.less is not None:
                    stack.append(node.less)
            elif left > node.center:
                # Query lies right of the center: only regions ending after
                # the query start can overlap.
                for region in node.by_right:
                    if region.right <= left:
                        break
                    if region.left < right:
                        yield region
                if node.greater is not None:
                    stack.append(node.greater)
            else:
                # Query spans the center: check the whole node list (it is
                # small in practice) and descend both ways.
                for region in node.by_left:
                    if region.left >= right:
                        break
                    if region.right > left:
                        yield region
                if node.less is not None:
                    stack.append(node.less)
                if node.greater is not None:
                    stack.append(node.greater)

    def query_region(self, region: GenomicRegion) -> Iterator[GenomicRegion]:
        """Yield stored regions overlapping *region* (chromosome unchecked)."""
        return self.query(region.left, region.right)

    def stab(self, position: int) -> Iterator[GenomicRegion]:
        """Yield stored regions covering the single genomic *position*."""
        return self.query(position, position + 1)


class GenomeIndex:
    """One :class:`IntervalTree` per chromosome.

    This is the index used by the naive engine for MAP, JOIN and
    DIFFERENCE: the reference operand is indexed per chromosome and
    probes route by chromosome name.
    """

    __slots__ = ("_trees",)

    def __init__(self, regions: Sequence[GenomicRegion] = ()) -> None:
        by_chrom: dict = {}
        for region in regions:
            by_chrom.setdefault(region.chrom, []).append(region)
        self._trees = {
            chrom: IntervalTree(chrom_regions)
            for chrom, chrom_regions in by_chrom.items()
        }

    def __len__(self) -> int:
        return sum(len(tree) for tree in self._trees.values())

    def chromosomes(self) -> tuple:
        """Sorted tuple of indexed chromosome names."""
        return tuple(sorted(self._trees))

    def query(self, chrom: str, left: int, right: int) -> Iterator[GenomicRegion]:
        """Yield stored regions on *chrom* overlapping ``[left, right)``."""
        tree = self._trees.get(chrom)
        if tree is None:
            return iter(())
        return tree.query(left, right)

    def overlapping(self, region: GenomicRegion) -> Iterator[GenomicRegion]:
        """Yield stored regions overlapping *region* (chromosome-aware)."""
        return self.query(region.chrom, region.left, region.right)
