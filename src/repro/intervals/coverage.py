"""Coverage accumulation: the kernel of GMQL COVER.

COVER computes, from the regions of *all* samples of a dataset, the maximal
intervals where the number of overlapping regions (the *accumulation index*)
stays within ``[min_acc, max_acc]``.  The computation is a classic event-point
sweep: +1 events at region left ends, -1 events at right ends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.gdm.region import GenomicRegion, chromosome_sort_key


@dataclass(frozen=True)
class CoverageSegment:
    """A maximal run of constant accumulation depth on one chromosome."""

    chrom: str
    left: int
    right: int
    depth: int


def coverage_profile(
    regions: Sequence[GenomicRegion],
) -> Iterator[CoverageSegment]:
    """Yield constant-depth segments in genome order (depth > 0 only).

    >>> segs = list(coverage_profile([GenomicRegion("chr1", 0, 10),
    ...                               GenomicRegion("chr1", 5, 15)]))
    >>> [(s.left, s.right, s.depth) for s in segs]
    [(0, 5, 1), (5, 10, 2), (10, 15, 1)]
    """
    events: dict = {}
    for region in regions:
        if region.right <= region.left:
            continue
        chrom_events = events.setdefault(region.chrom, {})
        chrom_events[region.left] = chrom_events.get(region.left, 0) + 1
        chrom_events[region.right] = chrom_events.get(region.right, 0) - 1
    for chrom in sorted(events, key=chromosome_sort_key):
        depth = 0
        previous = None
        for position in sorted(events[chrom]):
            if previous is not None and depth > 0 and position > previous:
                yield CoverageSegment(chrom, previous, position, depth)
            depth += events[chrom][position]
            previous = position


class AccumulationBound:
    """A COVER accumulation bound: an integer, ``ANY``, or ``ALL``-relative.

    ``ANY`` means "no bound"; ``ALL`` resolves to the number of samples in
    the operand dataset, and arithmetic forms like ``(ALL + 1) / 2`` are
    supported through the *scale* and *offset* fields:
    bound = ceil((ALL + offset) * scale).
    """

    __slots__ = ("kind", "value", "offset", "scale")

    def __init__(self, kind: str, value: int = 0,
                 offset: int = 0, scale: float = 1.0) -> None:
        if kind not in ("INT", "ANY", "ALL"):
            raise ValueError(f"bad accumulation bound kind {kind!r}")
        self.kind = kind
        self.value = value
        self.offset = offset
        self.scale = scale

    @classmethod
    def exact(cls, value: int) -> "AccumulationBound":
        """A plain integer bound."""
        return cls("INT", value=value)

    @classmethod
    def any(cls) -> "AccumulationBound":
        """The unbounded ``ANY`` bound."""
        return cls("ANY")

    @classmethod
    def all(cls, offset: int = 0, scale: float = 1.0) -> "AccumulationBound":
        """An ``ALL``-relative bound: ceil((ALL + offset) * scale)."""
        return cls("ALL", offset=offset, scale=scale)

    def resolve(self, n_samples: int, is_lower: bool) -> int:
        """Concrete integer bound given the operand's sample count."""
        if self.kind == "INT":
            return self.value
        if self.kind == "ANY":
            return 1 if is_lower else (1 << 62)
        return max(1, math.ceil((n_samples + self.offset) * self.scale))

    def __repr__(self) -> str:
        if self.kind == "INT":
            return f"AccumulationBound({self.value})"
        if self.kind == "ANY":
            return "AccumulationBound(ANY)"
        return f"AccumulationBound(ALL, offset={self.offset}, scale={self.scale})"


def cover_intervals_from_segments(
    segments: Iterator[CoverageSegment] | Sequence[CoverageSegment],
    min_acc: int,
    max_acc: int,
) -> Iterator[tuple]:
    """Run-merging core of COVER, over an externally computed depth profile.

    *segments* must be positive-depth constant-depth segments in genome
    order (what :func:`coverage_profile` yields; the columnar engine
    computes the same profile with numpy).
    """
    if min_acc < 1:
        min_acc = 1
    run: list = []
    for segment in segments:
        in_range = min_acc <= segment.depth <= max_acc
        if run and (
            segment.chrom != run[0].chrom
            or segment.left != run[-1].right
            or not in_range
        ):
            yield _flush_run(run)
            run = []
        if in_range:
            run.append(segment)
    if run:
        yield _flush_run(run)


def cover_intervals(
    regions: Sequence[GenomicRegion],
    min_acc: int,
    max_acc: int,
) -> Iterator[tuple]:
    """Yield maximal ``(chrom, left, right, max_depth, base_count)`` runs.

    A result interval is a maximal union of contiguous constant-depth
    segments whose depth lies within ``[min_acc, max_acc]``.  ``max_depth``
    is the maximum accumulation inside the run (COVER's ``MaxAcc``
    aggregate); ``base_count`` is the number of segments merged (used by
    the HISTOGRAM variant's bookkeeping).
    """
    yield from cover_intervals_from_segments(
        coverage_profile(regions), min_acc, max_acc
    )


def _flush_run(run: list) -> tuple:
    return (
        run[0].chrom,
        run[0].left,
        run[-1].right,
        max(segment.depth for segment in run),
        len(run),
    )


def summit_intervals_from_segments(
    segments,
    min_acc: int,
    max_acc: int,
) -> Iterator[tuple]:
    """SUMMIT run logic over an externally computed depth profile."""
    if min_acc < 1:
        min_acc = 1
    run: list = []
    for segment in segments:
        in_range = min_acc <= segment.depth <= max_acc
        if run and (
            segment.chrom != run[0].chrom
            or segment.left != run[-1].right
            or not in_range
        ):
            yield from _summits(run)
            run = []
        if in_range:
            run.append(segment)
    if run:
        yield from _summits(run)


def summit_intervals(
    regions: Sequence[GenomicRegion],
    min_acc: int,
    max_acc: int,
) -> Iterator[tuple]:
    """Yield local accumulation maxima (the COVER ``SUMMIT`` variant).

    Within each qualifying run, yields the constant-depth segments that
    are local maxima of the depth profile, as
    ``(chrom, left, right, depth)`` tuples.
    """
    yield from summit_intervals_from_segments(
        coverage_profile(regions), min_acc, max_acc
    )


def _summits(run: list) -> Iterator[tuple]:
    for i, segment in enumerate(run):
        left_ok = i == 0 or run[i - 1].depth < segment.depth
        right_ok = i == len(run) - 1 or run[i + 1].depth <= segment.depth
        if left_ok and right_ok:
            yield (segment.chrom, segment.left, segment.right, segment.depth)


def histogram_intervals(
    regions: Sequence[GenomicRegion],
    min_acc: int,
    max_acc: int,
) -> Iterator[tuple]:
    """Yield each constant-depth segment in range (COVER ``HISTOGRAM``).

    Tuples are ``(chrom, left, right, depth)``.
    """
    if min_acc < 1:
        min_acc = 1
    for segment in coverage_profile(regions):
        if min_acc <= segment.depth <= max_acc:
            yield (segment.chrom, segment.left, segment.right, segment.depth)


def flat_intervals(
    regions: Sequence[GenomicRegion],
    min_acc: int,
    max_acc: int,
) -> Iterator[tuple]:
    """Yield the full extent of each contributing region run (COVER ``FLAT``).

    FLAT returns, for each qualifying COVER interval, the union of all
    *original* regions that intersect it, i.e. the first leftmost to the
    last rightmost contributing position.  Tuples are
    ``(chrom, left, right, max_depth, base_count)``.
    """
    covers = list(cover_intervals(regions, min_acc, max_acc))
    if not covers:
        return
    by_chrom: dict = {}
    for region in regions:
        by_chrom.setdefault(region.chrom, []).append(region)
    for chrom, left, right, max_depth, base_count in covers:
        flat_left, flat_right = left, right
        for region in by_chrom.get(chrom, ()):
            if region.left < right and left < region.right:
                flat_left = min(flat_left, region.left)
                flat_right = max(flat_right, region.right)
        yield (chrom, flat_left, flat_right, max_depth, base_count)
