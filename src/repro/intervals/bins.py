"""Genomic binning: the partitioning scheme of the parallel engine.

Spark/Flink GMQL implementations shard the genome into fixed-width bins so
region operations parallelise by (chromosome, bin) key.  We reproduce the
same scheme: :func:`bin_span` maps an interval to the bins it touches, and
:class:`Binning` assigns regions to partitions, replicating boundary-crossing
regions into every bin they touch (with the convention that a pair is
*reported* only in the bin containing the leftmost overlap position, so
joins never double count).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.gdm.region import GenomicRegion

#: Default bin width, matching the magnitude used by GMQL implementations.
DEFAULT_BIN_SIZE = 100_000


def bin_span(left: int, right: int, bin_size: int) -> range:
    """The range of bin indices an interval ``[left, right)`` touches.

    Zero-length intervals still occupy the bin containing their point.

    >>> list(bin_span(0, 250, 100))
    [0, 1, 2]
    """
    if bin_size <= 0:
        raise ValueError(f"bin size must be positive, got {bin_size}")
    last = max(right - 1, left)
    return range(left // bin_size, last // bin_size + 1)


class Binning:
    """Assigns regions of one genome to (chromosome, bin) partitions."""

    __slots__ = ("bin_size",)

    def __init__(self, bin_size: int = DEFAULT_BIN_SIZE) -> None:
        if bin_size <= 0:
            raise ValueError(f"bin size must be positive, got {bin_size}")
        self.bin_size = bin_size

    def partition(
        self, regions: Sequence[GenomicRegion]
    ) -> dict:
        """Group regions by ``(chrom, bin_index)``, replicating spanners.

        Returns ``{(chrom, bin): [regions...]}``.  A region spanning k bins
        appears in all k groups.
        """
        partitions: dict = {}
        for region in regions:
            for index in bin_span(region.left, region.right, self.bin_size):
                partitions.setdefault((region.chrom, index), []).append(region)
        return partitions

    def owns_pair(
        self, bin_key: tuple, a: GenomicRegion, b: GenomicRegion
    ) -> bool:
        """True when *bin_key* is the reporting bin for the pair ``(a, b)``.

        The reporting bin is the one containing the leftmost position of
        the overlap (or, for disjoint pairs considered by distal joins,
        the leftmost position of the gap's left flank).  Each pair has
        exactly one reporting bin, so partition-local joins can emit
        without global deduplication.

        For overlapping pairs the anchor ``max(a.left, b.left)`` lies
        inside the overlap, so both regions touch the reporting bin.
        For disjoint pairs that anchor would fall in a bin the left
        flank may never touch (it can even span *several* bins past the
        flank's end), so the anchor is the left flank's own leftmost
        position instead -- the flank being the region that ends first,
        ties broken by start.
        """
        chrom, index = bin_key
        if a.chrom != chrom or b.chrom != chrom:
            return False
        if a.left < b.right and b.left < a.right:
            anchor = max(a.left, b.left)
        elif (a.right, a.left) <= (b.right, b.left):
            anchor = a.left
        else:
            anchor = b.left
        return anchor // self.bin_size == index

    def bins_for(self, region: GenomicRegion) -> Iterator[tuple]:
        """Yield the ``(chrom, bin)`` keys a region belongs to."""
        for index in bin_span(region.left, region.right, self.bin_size):
            yield (region.chrom, index)


def binned_count_overlaps(
    references: Sequence[GenomicRegion],
    probes: Sequence[GenomicRegion],
    bin_size: int = DEFAULT_BIN_SIZE,
) -> list:
    """Count overlapping probes per reference via genome binning.

    This is the distributed-GMQL strategy in miniature: both sides are
    partitioned into (chromosome, bin) groups, pairs are enumerated
    bin-locally, and the reporting-bin rule (:meth:`Binning.owns_pair`)
    guarantees each pair is counted exactly once even when both regions
    span several bins.  Returns counts aligned with the input order of
    *references*.
    """
    binning = Binning(bin_size)
    counts = [0] * len(references)
    ref_partitions: dict = {}
    for position, region in enumerate(references):
        for key in binning.bins_for(region):
            ref_partitions.setdefault(key, []).append((region, position))
    probe_partitions = binning.partition(probes)
    for key, indexed_refs in ref_partitions.items():
        bin_probes = probe_partitions.get(key)
        if not bin_probes:
            continue
        for region, position in indexed_refs:
            for probe in bin_probes:
                if region.overlaps(probe) and binning.owns_pair(
                    key, region, probe
                ):
                    counts[position] += 1
    return counts
