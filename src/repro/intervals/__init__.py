"""Interval algebra substrate: trees, sweeps, coverage, distances, bins.

Every genometric GMQL operator bottoms out in one of these kernels; the
engines in :mod:`repro.engine` choose between them (interval tree vs
sort-merge sweep vs binned partitioning) per operator and data shape.
"""

from repro.intervals.bins import (
    Binning,
    DEFAULT_BIN_SIZE,
    bin_span,
    binned_count_overlaps,
)
from repro.intervals.coverage import (
    AccumulationBound,
    CoverageSegment,
    cover_intervals,
    coverage_profile,
    flat_intervals,
    histogram_intervals,
    summit_intervals,
)
from repro.intervals.distance import (
    NearestIndex,
    distance,
    is_downstream,
    is_upstream,
    stream_pair_mask,
)
from repro.intervals.sweep import (
    merge_touching,
    sweep_count_overlaps,
    sweep_overlap_join,
)
from repro.intervals.tree import GenomeIndex, IntervalTree

__all__ = [
    "AccumulationBound",
    "Binning",
    "CoverageSegment",
    "DEFAULT_BIN_SIZE",
    "GenomeIndex",
    "IntervalTree",
    "NearestIndex",
    "bin_span",
    "binned_count_overlaps",
    "cover_intervals",
    "coverage_profile",
    "distance",
    "flat_intervals",
    "histogram_intervals",
    "is_downstream",
    "is_upstream",
    "merge_touching",
    "stream_pair_mask",
    "summit_intervals",
    "sweep_count_overlaps",
    "sweep_overlap_join",
]
