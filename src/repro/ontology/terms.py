"""Ontology terms: the vocabulary layer of the UMLS substitute.

UMLS itself is licensed and enormous; we implement the same *machinery*
(concepts with synonyms, IS-A/PART-OF relations, semantic closure) over a
compact biomedical terminology covering the vocabulary our synthetic
generators emit -- per DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OntologyError


@dataclass(frozen=True)
class Term:
    """One ontology concept."""

    term_id: str
    name: str
    synonyms: tuple = ()

    def labels(self) -> tuple:
        """All strings that denote this term (name + synonyms), lowercase."""
        return tuple(
            {self.name.lower(), *(s.lower() for s in self.synonyms)}
        )

    def __post_init__(self) -> None:
        if not self.term_id or not self.name:
            raise OntologyError("terms need an id and a name")


#: Relation kinds supported by the ontology graph.
IS_A = "is_a"
PART_OF = "part_of"
RELATIONS = (IS_A, PART_OF)
