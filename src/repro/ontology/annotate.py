"""Semantic annotation of GDM metadata with ontology terms.

The section 4.3 recipe, end to end: metadata values are matched against
term labels/synonyms ("annotating the metadata ... by means of UMLS"),
the matched term sets are completed with their semantic closure, and
queries can then be *expanded* -- searching for "cancer" finds samples
annotated HeLa-S3 because the closure of HeLa-S3 contains the cancer
cell-line concept.
"""

from __future__ import annotations

from repro.gdm import Dataset, Metadata
from repro.ontology.graph import Ontology


def annotate_metadata(meta: Metadata, ontology: Ontology) -> set:
    """Term ids matching any metadata value (exact label/synonym match)."""
    matched: set = set()
    for __, value in meta:
        matched.update(ontology.find(str(value)))
    return matched


def semantic_closure_annotation(meta: Metadata, ontology: Ontology) -> set:
    """Annotation completed with the semantic closure (the paper's step 2)."""
    return ontology.closure(annotate_metadata(meta, ontology))


def annotate_dataset(dataset: Dataset, ontology: Ontology) -> dict:
    """Closure annotations for every sample: ``{sample_id: {term ids}}``."""
    return {
        sample.id: semantic_closure_annotation(sample.meta, ontology)
        for sample in dataset
    }


def expand_query_terms(text: str, ontology: Ontology) -> set:
    """Terms denoted by a query string, plus all their descendants.

    A query for a general concept ("cancer") must match samples annotated
    with any of its specialisations, so expansion goes *down* the DAG
    (the closure of the sample annotations goes *up*; either side alone
    suffices, both together are belt and braces for multi-hop matches).
    """
    seeds: set = set()
    for token in text.replace(",", " ").split():
        seeds.update(ontology.find(token))
    seeds.update(ontology.find(text.strip()))
    expanded = set(seeds)
    for term_id in seeds:
        expanded.update(ontology.descendants(term_id))
    return expanded


def ontology_match(
    query_text: str, annotations: dict, ontology: Ontology
) -> list:
    """Sample ids whose closure annotation intersects the expanded query.

    *annotations* is the output of :func:`annotate_dataset`.  Results are
    sorted by descending overlap size (more shared concepts = better
    match), then by sample id.
    """
    query_terms = expand_query_terms(query_text, ontology)
    scored = []
    for sample_id, terms in annotations.items():
        overlap = len(terms & query_terms)
        if overlap:
            scored.append((-overlap, sample_id))
    scored.sort()
    return [sample_id for __, sample_id in scored]
