"""Ontology layer: the UMLS-substitute of the paper's section 4.3.

A compact biomedical terminology with IS-A/PART-OF reasoning, semantic
annotation of GDM metadata, semantic closure, and ontology-aware query
expansion for metadata search.
"""

from repro.ontology.annotate import (
    annotate_dataset,
    annotate_metadata,
    expand_query_terms,
    ontology_match,
    semantic_closure_annotation,
)
from repro.ontology.graph import Ontology, builtin_ontology
from repro.ontology.terms import IS_A, PART_OF, RELATIONS, Term

__all__ = [
    "IS_A",
    "Ontology",
    "PART_OF",
    "RELATIONS",
    "Term",
    "annotate_dataset",
    "annotate_metadata",
    "builtin_ontology",
    "expand_query_terms",
    "ontology_match",
    "semantic_closure_annotation",
]
