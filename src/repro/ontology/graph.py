"""The ontology DAG: terms, relations, ancestors and a built-in terminology.

Implements the reasoning the paper's section 4.3 requires: "semantically
annotating the metadata of each repository's datasets by means of UMLS,
and completing the information by performing the semantic closure of such
annotations".  :meth:`Ontology.closure` is that semantic closure: the set
of all ancestors reachable through IS-A/PART-OF edges.
"""

from __future__ import annotations

from repro.errors import OntologyError
from repro.ontology.terms import IS_A, PART_OF, RELATIONS, Term


class Ontology:
    """A DAG of terms with typed edges and label lookup."""

    def __init__(self) -> None:
        self._terms: dict = {}
        self._parents: dict = {}  # term_id -> set of (relation, parent_id)
        self._by_label: dict = {}

    # -- construction -----------------------------------------------------------

    def add_term(self, term: Term) -> Term:
        """Register a term; duplicate ids are an error."""
        if term.term_id in self._terms:
            raise OntologyError(f"duplicate term id {term.term_id!r}")
        self._terms[term.term_id] = term
        self._parents[term.term_id] = set()
        for label in term.labels():
            self._by_label.setdefault(label, []).append(term.term_id)
        return term

    def add_relation(self, child_id: str, relation: str, parent_id: str) -> None:
        """Add a typed edge; cycles are rejected."""
        if relation not in RELATIONS:
            raise OntologyError(f"unknown relation {relation!r}")
        for term_id in (child_id, parent_id):
            if term_id not in self._terms:
                raise OntologyError(f"unknown term {term_id!r}")
        if child_id == parent_id or child_id in self.closure({parent_id}):
            raise OntologyError(
                f"relation {child_id} -{relation}-> {parent_id} creates a cycle"
            )
        self._parents[child_id].add((relation, parent_id))

    # -- lookup -------------------------------------------------------------------

    def term(self, term_id: str) -> Term:
        """Look up a term by id."""
        try:
            return self._terms[term_id]
        except KeyError:
            raise OntologyError(f"unknown term {term_id!r}") from None

    def find(self, label: str) -> list:
        """Term ids whose name or synonyms match *label* (case-insensitive)."""
        return list(self._by_label.get(label.lower(), ()))

    def __contains__(self, term_id: str) -> bool:
        return term_id in self._terms

    def __len__(self) -> int:
        return len(self._terms)

    def terms(self) -> tuple:
        """All term ids, sorted."""
        return tuple(sorted(self._terms))

    # -- reasoning ------------------------------------------------------------------

    def parents(self, term_id: str) -> set:
        """Direct parents (any relation)."""
        return {parent for __, parent in self._parents.get(term_id, ())}

    def closure(self, term_ids: set) -> set:
        """Semantic closure: the terms plus all their ancestors."""
        result: set = set()
        frontier = list(term_ids)
        while frontier:
            term_id = frontier.pop()
            if term_id in result:
                continue
            result.add(term_id)
            frontier.extend(self.parents(term_id))
        return result

    def descendants(self, term_id: str) -> set:
        """All terms whose closure contains *term_id* (excludes itself)."""
        return {
            candidate
            for candidate in self._terms
            if candidate != term_id and term_id in self.closure({candidate})
        }

    def is_a(self, child_id: str, ancestor_id: str) -> bool:
        """True when *ancestor_id* is in the child's closure."""
        return ancestor_id in self.closure({child_id})


def builtin_ontology() -> Ontology:
    """The compact biomedical terminology the generators' metadata uses.

    Mirrors the UMLS fragments a genomic-metadata annotator would touch:
    cell lines, assays, antibodies/marks, tissues and disease states.
    """
    ontology = Ontology()

    def term(term_id, name, *synonyms):
        ontology.add_term(Term(term_id, name, tuple(synonyms)))

    # Assays.
    term("A:assay", "assay")
    term("A:seq", "sequencing assay", "NGS assay")
    term("A:chipseq", "ChIP-seq", "ChipSeq", "chip sequencing")
    term("A:rnaseq", "RNA-seq", "RnaSeq")
    term("A:dnaseseq", "DNase-seq", "DnaseSeq")
    term("A:wgs", "whole genome sequencing", "WGS-sim")
    term("A:repliseq", "Repli-seq", "Repli-seq-sim")
    term("A:bliss", "breaks labeling in situ", "BLISS-sim")
    for child in ("A:chipseq", "A:rnaseq", "A:dnaseseq", "A:wgs",
                  "A:repliseq", "A:bliss"):
        ontology.add_relation(child, IS_A, "A:seq")
    ontology.add_relation("A:seq", IS_A, "A:assay")

    # Molecules / marks.
    term("M:protein", "protein")
    term("M:tf", "transcription factor")
    term("M:ctcf", "CTCF")
    term("M:pol2", "RNA polymerase II", "POL2")
    term("M:myc", "MYC")
    term("M:rest", "REST")
    term("M:histone_mark", "histone mark", "histone modification")
    term("M:h3k27ac", "H3K27ac")
    term("M:h3k4me1", "H3K4me1")
    term("M:h3k4me3", "H3K4me3")
    ontology.add_relation("M:tf", IS_A, "M:protein")
    for tf in ("M:ctcf", "M:pol2", "M:myc", "M:rest"):
        ontology.add_relation(tf, IS_A, "M:tf")
    for mark in ("M:h3k27ac", "M:h3k4me1", "M:h3k4me3"):
        ontology.add_relation(mark, IS_A, "M:histone_mark")

    # Cells and tissues.
    term("C:cell", "cell")
    term("C:cell_line", "cell line")
    term("C:cancer_line", "cancer cell line", "cancer")
    term("C:normal_line", "normal cell line", "normal")
    term("C:hela", "HeLa-S3", "HeLa")
    term("C:k562", "K562")
    term("C:hepg2", "HepG2")
    term("C:a549", "A549")
    term("C:gm12878", "GM12878")
    term("C:h1", "H1-hESC", "H1")
    term("T:tissue", "tissue")
    term("T:cervix", "cervix")
    term("T:blood", "blood")
    term("T:liver", "liver")
    term("T:lung", "lung")
    ontology.add_relation("C:cell_line", IS_A, "C:cell")
    ontology.add_relation("C:cancer_line", IS_A, "C:cell_line")
    ontology.add_relation("C:normal_line", IS_A, "C:cell_line")
    for line, kind, tissue in (
        ("C:hela", "C:cancer_line", "T:cervix"),
        ("C:k562", "C:cancer_line", "T:blood"),
        ("C:hepg2", "C:cancer_line", "T:liver"),
        ("C:a549", "C:cancer_line", "T:lung"),
        ("C:gm12878", "C:normal_line", "T:blood"),
        ("C:h1", "C:normal_line", None),
    ):
        ontology.add_relation(line, IS_A, kind)
        if tissue:
            ontology.add_relation(line, PART_OF, tissue)
    for tissue in ("T:cervix", "T:blood", "T:liver", "T:lung"):
        ontology.add_relation(tissue, IS_A, "T:tissue")

    # Conditions.
    term("D:condition", "experimental condition")
    term("D:control", "control")
    term("D:induced", "induced", "treated")
    term("D:treatment", "treatment")
    term("D:ifna", "IFNa", "interferon alpha")
    term("D:estradiol", "estradiol")
    ontology.add_relation("D:control", IS_A, "D:condition")
    ontology.add_relation("D:induced", IS_A, "D:condition")
    ontology.add_relation("D:ifna", IS_A, "D:treatment")
    ontology.add_relation("D:estradiol", IS_A, "D:treatment")
    ontology.add_relation("D:treatment", IS_A, "D:condition")
    return ontology
