"""The ``repro bench`` harness: section-2 scenarios across engines.

Runs the paper's headline region operations (MAP, JOIN, COVER over
simulated ENCODE-shaped data, see :mod:`repro.simulate`) on a matrix of
engine variants and writes one BENCH JSON document:

* ``naive`` -- the reference row-at-a-time kernels;
* ``columnar-nostore`` -- the columnar kernels with the store disabled
  (``use_store: False``) and no result cache: the pre-store baseline;
* ``columnar`` -- columnar kernels over store blocks with zone-map
  pruning *and* the plan-fingerprint result cache: cold run pays the
  kernels, warm runs hit the cache;
* ``auto`` -- per-node routing over the same store;
* ``parallel`` -- the process-pool backend with zero-copy shared-memory
  block shipping (``medium``/``full`` scales, where worker start-up
  amortises);
* ``parallel-pickle`` -- the same pool with shared memory disabled
  (``use_shm: False``), isolating the serialisation cost the shm
  protocol removes;
* ``store-persisted`` -- the columnar kernels over the disk-native
  persisted store (:mod:`repro.store.persist`): sources are regenerated
  before *every* repeat so nothing survives in process memory, the cold
  run pays in-memory block build plus the synchronous persist, and the
  warm runs open the content-addressed segments via ``np.memmap`` --
  the cold-build vs mmap-open delta is the number the persistent store
  exists to win;
* ``sharded`` -- sharded cluster execution over a
  :class:`~repro.federation.cluster.LocalCluster` of worker node
  processes, one matrix per node count (``--nodes``): sources are
  partitioned into chromosome shards across the nodes, sub-plans are
  pushed to the shard owners, and the streamed partials are merged
  client-side.  On a time-sliced test box the wall clock cannot show
  multi-host scaling, so each cell also records ``cluster_seconds`` --
  the slowest node's self-measured kernel time plus the client merge,
  the critical path a real cluster would pay -- and the scaling claim
  (``speedup_max_nodes_vs_1``) is made on that number.

Every variant regenerates its sources from the same seed, so store
blocks memoised by one variant never subsidise another, and every
variant's result digest is compared for byte-identity.  Each scenario
records wall times, the ``store.partitions_pruned`` counter, and the
result-cache hit/miss statistics -- the numbers the CI regression gate
(``benchmarks/check_bench_regression.py``) checks.
"""

from __future__ import annotations

import json

from repro.resilience.clock import perf_counter
from repro.engine.context import ExecutionContext
from repro.engine.dispatch import get_backend
from repro.gmql.lang import Interpreter, compile_program, optimize
from repro.store.cache import reset_result_cache, result_cache
from repro.store.columnar import reset_store_counters, store_counters

#: Scenario programs: the section-2 shapes, one operator in the spotlight.
PROGRAMS = {
    "map": """
        PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
        PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
        RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
        MATERIALIZE RESULT;
    """,
    "map_avg": """
        PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
        PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
        RESULT = MAP(avg_p AS AVG(p_value)) PROMS PEAKS;
        MATERIALIZE RESULT;
    """,
    "map_max": """
        PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
        PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
        RESULT = MAP(max_p AS MAX(p_value)) PROMS PEAKS;
        MATERIALIZE RESULT;
    """,
    "join": """
        PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
        PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
        RESULT = JOIN(DLE(20000); output: LEFT) PROMS PEAKS;
        MATERIALIZE RESULT;
    """,
    "join_md1": """
        PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
        PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
        RESULT = JOIN(MD(1); output: LEFT) PROMS PEAKS;
        MATERIALIZE RESULT;
    """,
    "join_up": """
        PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
        PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
        RESULT = JOIN(DLE(20000), UP; output: LEFT) PROMS PEAKS;
        MATERIALIZE RESULT;
    """,
    "cover": """
        PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
        RESULT = COVER(2, ANY) PEAKS;
        MATERIALIZE RESULT;
    """,
    "flat_summit": """
        PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
        F = FLAT(1, ANY) PEAKS;
        S = SUMMIT(2, ANY) PEAKS;
        MATERIALIZE F;
        MATERIALIZE S;
    """,
    "histogram": """
        PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
        RESULT = HISTOGRAM(1, ANY) PEAKS;
        MATERIALIZE RESULT;
    """,
}

#: Data sizes: ``tiny`` for unit tests, ``smoke`` for the CI bench job,
#: ``medium`` for the JOIN/MAP kernel and shared-memory numbers,
#: ``full`` for the committed baseline numbers.
SCALES = {
    "tiny": {"n_genes": 60, "n_enhancers": 30, "n_samples": 3,
             "peaks_per_sample_mean": 40},
    "smoke": {"n_genes": 200, "n_enhancers": 100, "n_samples": 8,
              "peaks_per_sample_mean": 150},
    "medium": {"n_genes": 1500, "n_enhancers": 800, "n_samples": 4,
               "peaks_per_sample_mean": 3000},
    "full": {"n_genes": 400, "n_enhancers": 200, "n_samples": 32,
             "peaks_per_sample_mean": 400},
}

#: ``(variant name, engine, use_store, result cache enabled, use_shm,
#: persisted store)``.
VARIANTS = (
    ("naive", "naive", True, False, True, False),
    ("columnar-nostore", "columnar", False, False, True, False),
    ("columnar", "columnar", True, True, True, False),
    ("auto", "auto", True, True, True, False),
    ("parallel", "parallel", True, False, True, False),
    ("parallel-pickle", "parallel", True, False, False, False),
    ("store-persisted", "columnar", True, False, True, True),
)


def default_variants(scale: str) -> tuple:
    """Variant names benched at *scale* (fan-out pays off at medium+)."""
    names = [name for name, *_ in VARIANTS]
    if scale in ("tiny", "smoke"):
        names.remove("parallel")
        names.remove("parallel-pickle")
    return tuple(names)


def _sources(scale: str, seed: int) -> dict:
    """Freshly generated source datasets (fresh store memos included)."""
    from repro.simulate import EncodeRepository, GenomeLayout

    params = SCALES[scale]
    layout = GenomeLayout.generate(
        seed=seed,
        n_genes=params["n_genes"],
        n_enhancers=params["n_enhancers"],
    )
    repo = EncodeRepository.generate(
        seed=seed,
        n_samples=params["n_samples"],
        peaks_per_sample_mean=params["peaks_per_sample_mean"],
        layout=layout,
    )
    return {"ANNOTATIONS": repo.annotations, "ENCODE": repo.encode}


def _result_digest(results: dict) -> str:
    """Engine-independent digest of every materialised dataset's rows.

    Delegates to :func:`repro.gdm.digest.results_digest` -- the same
    definition the query server returns with every response -- so bench
    identity checks and served-result identity checks agree by
    construction.
    """
    from repro.gdm.digest import results_digest

    return results_digest(results)


def _run_variant(
    program: str,
    scale: str,
    seed: int,
    engine: str,
    use_store: bool,
    cache_enabled: bool,
    use_shm: bool,
    persisted: bool,
    repeat: int,
    bin_size: int | None,
    workers: int | None,
    cold_repeat: int = 1,
) -> dict:
    """Time one (scenario, variant) cell: cold run plus warm repeats.

    The ``store-persisted`` variant regenerates its sources before every
    repeat (so block memos never survive between runs, modelling a fresh
    process) and routes the storage layer at a throwaway persistent
    store root with synchronous persistence: repeat 0 measures build +
    persist + kernels, later repeats measure mmap open + kernels.

    ``cold_repeat`` > 1 steadies the cold number: that many independent
    cold runs are timed -- fresh sources and a cleared result cache each
    time, so nothing warm survives between them -- and the minimum wins.
    A single cold sample at millisecond scale is hostage to scheduler
    noise, which matters once gates compare cold ratios.  Persisted
    cells keep one cold run: their first run writes the segments that
    define every later run as warm.
    """
    import shutil
    import tempfile

    from repro.store.persist import set_store_root

    store_dir = tempfile.mkdtemp(prefix="repro-bench-store-") if persisted \
        else None
    sources = _sources(scale, seed)
    compiled = optimize(compile_program(program))
    reset_result_cache()
    extra_colds = []
    if not persisted:
        for __ in range(max(1, cold_repeat) - 1):
            context = ExecutionContext(
                workers=workers,
                bin_size=bin_size,
                result_cache=cache_enabled,
                config={"use_store": use_store, "use_shm": use_shm},
            )
            backend = get_backend(engine)
            started = perf_counter()
            try:
                Interpreter(
                    backend, sources, context=context
                ).run_program(compiled)
            finally:
                backend.close()
            extra_colds.append(perf_counter() - started)
            sources = _sources(scale, seed)
            reset_result_cache()
    runs = []
    pruned_cold = 0
    shm_shared_cold = 0
    shm_pickled_cold = 0
    shm_mapped_warm = 0
    regions_emitted = 0
    store_stats_cold: dict = {}
    store_stats_warm: dict = {}
    digest = None
    try:
        if persisted:
            set_store_root(store_dir, sync=True)
        for iteration in range(max(1, repeat)):
            if persisted:
                # Per-iteration block accounting: the process-wide
                # counters also see stores on derived datasets (a COVER
                # over a SELECT result never touches a source store).
                reset_store_counters()
            if persisted and iteration:
                # Fresh datasets (same content): nothing survives in
                # memory, only the persisted segments on disk.
                sources = _sources(scale, seed)
            context = ExecutionContext(
                workers=workers,
                bin_size=bin_size,
                result_cache=cache_enabled,
                config={"use_store": use_store, "use_shm": use_shm},
            )
            backend = get_backend(engine)
            started = perf_counter()
            try:
                results = Interpreter(
                    backend, sources, context=context
                ).run_program(compiled)
            finally:
                backend.close()
            runs.append(perf_counter() - started)
            if iteration == 0:
                pruned_cold = context.metrics.counter(
                    "store.partitions_pruned"
                )
                shm_shared_cold = context.metrics.counter("shm.bytes_shared")
                shm_pickled_cold = context.metrics.counter(
                    "shm.bytes_pickled"
                )
                regions_emitted = sum(
                    dataset.region_count() for dataset in results.values()
                )
                digest = _result_digest(results)
                if persisted:
                    store_stats_cold = _store_stats(sources)
            else:
                shm_mapped_warm = max(
                    shm_mapped_warm,
                    context.metrics.counter("shm.bytes_mapped"),
                )
                if persisted:
                    store_stats_warm = _store_stats(sources)
    finally:
        if persisted:
            set_store_root(None)
            shutil.rmtree(store_dir, ignore_errors=True)
    cache = result_cache().stats()
    cell = {
        "engine": engine,
        "use_store": use_store,
        "result_cache_enabled": cache_enabled,
        "use_shm": use_shm,
        "persisted_store": persisted,
        "cold_seconds": min(extra_colds + [runs[0]]),
        "warm_seconds": min(runs[1:]) if len(runs) > 1 else None,
        "runs_seconds": extra_colds + runs,
        "partitions_pruned": pruned_cold,
        "regions_emitted": regions_emitted,
        "shm_bytes_shared": shm_shared_cold,
        "shm_bytes_pickled": shm_pickled_cold,
        "shm_bytes_mapped": shm_mapped_warm,
        "cache": {
            "hits": cache["hits"],
            "misses": cache["misses"],
            "evictions": cache["evictions"],
        },
        "digest": digest,
    }
    if persisted:
        cell["store_cold"] = store_stats_cold
        cell["store_warm"] = store_stats_warm
    return cell


def _store_stats(sources: dict) -> dict:
    """Block counters for this iteration plus source-store residency.

    Built/mapped/evicted come from the process-wide counters (reset at
    the top of every persisted iteration) so block activity on derived
    datasets -- COVER and friends run against the SELECT output's store,
    not a source store -- is visible.  Residency is a point-in-time
    gauge, so it still reads from the stores the bench can reach.
    """
    totals = store_counters()
    totals["resident_bytes"] = sum(
        dataset.store_stats()["resident_bytes"]
        for dataset in sources.values()
    )
    return totals


def _run_sharded_matrix(
    program: str,
    scale: str,
    seed: int,
    nodes: tuple,
    repeat: int,
    workers: int | None,
    baseline_digest: str | None,
) -> dict:
    """Time one scenario over local clusters of each size in *nodes*.

    Every node count gets its own cluster over freshly generated sources
    and a throwaway persistent store root (so co-resident partials can
    come back over the mmap handle path).  The worker-side result cache
    is off by default, so every repeat recomputes the kernels; the
    minimum over repeats is reported, and the traffic/placement counters
    are snapshotted after the first (cold) run.
    """
    import shutil
    import tempfile

    from repro.federation import LocalCluster

    matrix: dict = {"nodes": {}}
    for count in nodes:
        sources = _sources(scale, seed)
        context = ExecutionContext(workers=workers)
        store_dir = tempfile.mkdtemp(prefix="repro-bench-shard-")
        walls: list = []
        cluster_times: list = []
        cell: dict = {}
        try:
            with LocalCluster(
                sources,
                nodes=count,
                store_root=store_dir,
                context=context,
                seed=seed,
            ) as cluster:
                for iteration in range(max(1, repeat)):
                    started = perf_counter()
                    outcome = cluster.run(program)
                    walls.append(perf_counter() - started)
                    cluster_times.append(outcome.cluster_seconds())
                    if iteration == 0:
                        counter = context.metrics.counter
                        cell = {
                            "digest": _result_digest(outcome.datasets or {}),
                            "node_seconds": dict(outcome.node_seconds),
                            "merge_seconds": outcome.merge_seconds,
                            "degraded": outcome.degraded,
                            "bytes_streamed": counter(
                                "federation.bytes_streamed"
                            ),
                            "bytes_mapped": counter("federation.bytes_mapped"),
                            "shards_placed": counter(
                                "federation.shards_placed"
                            ),
                            "shards_skipped": counter(
                                "federation.shards_skipped"
                            ),
                        }
        finally:
            shutil.rmtree(store_dir, ignore_errors=True)
        cell["wall_seconds"] = min(walls)
        cell["cluster_seconds"] = min(cluster_times)
        matrix["nodes"][str(count)] = cell
    cells = matrix["nodes"]
    if baseline_digest is not None:
        matrix["identical_to_columnar"] = all(
            cell["digest"] == baseline_digest for cell in cells.values()
        )
    counts = sorted(int(count) for count in cells)
    if len(counts) > 1:
        smallest = cells[str(counts[0])]["cluster_seconds"]
        largest = cells[str(counts[-1])]["cluster_seconds"]
        matrix["speedup_max_nodes_vs_1"] = (
            smallest / largest if largest else None
        )
    return matrix


def _reference_digest(
    program: str,
    scale: str,
    seed: int,
    bin_size: int | None,
    workers: int | None,
) -> str:
    """Digest of a single-node columnar run (the sharded identity bar)."""
    sources = _sources(scale, seed)
    compiled = optimize(compile_program(program))
    reset_result_cache()
    context = ExecutionContext(
        workers=workers, bin_size=bin_size, result_cache=False
    )
    backend = get_backend("columnar")
    try:
        results = Interpreter(backend, sources, context=context).run_program(
            compiled
        )
    finally:
        backend.close()
    return _result_digest(results)


def run_bench(
    scale: str = "smoke",
    scenarios: tuple | None = None,
    variants: tuple | None = None,
    repeat: int = 3,
    bin_size: int | None = None,
    workers: int | None = None,
    seed: int = 42,
    cold_repeat: int = 1,
    nodes: tuple = (1, 2, 4),
    clients: int | None = None,
    client_requests: int = 6,
    serve_engine: str = "auto",
) -> dict:
    """Run the benchmark matrix; returns the BENCH document (plain dict).

    With *clients* set, the ``concurrent-clients`` serving scenario
    (:mod:`repro.serve.bench`) also runs: that many client threads
    against a warm in-process query server, compared against one cold
    ``repro run`` subprocess per query, reported under the document's
    ``concurrent_clients`` key.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    scenario_names = tuple(scenarios or PROGRAMS)
    variant_names = tuple(variants or default_variants(scale))
    sharded = "sharded" in variant_names
    variant_names = tuple(
        name for name in variant_names if name != "sharded"
    )
    by_name = {name: spec for name, *spec in VARIANTS}
    document = {
        "bench": "pr10",
        "scale": scale,
        "repeat": repeat,
        "seed": seed,
        "bin_size": bin_size,
        "scenarios": {},
    }
    if sharded:
        document["nodes"] = list(nodes)
    for scenario in scenario_names:
        program = PROGRAMS[scenario]
        cells = {}
        for variant in variant_names:
            engine, use_store, cache_enabled, use_shm, persisted = \
                by_name[variant]
            cells[variant] = _run_variant(
                program, scale, seed, engine, use_store, cache_enabled,
                use_shm, persisted, repeat, bin_size, workers,
                cold_repeat=cold_repeat,
            )
        digests = {cell["digest"] for cell in cells.values()}
        entry = {
            "variants": cells,
            "identical_results": not cells or len(digests) == 1,
        }
        if sharded:
            baseline_digest = (
                cells["columnar"]["digest"] if "columnar" in cells
                else _reference_digest(program, scale, seed, bin_size, workers)
            )
            entry["sharded"] = _run_sharded_matrix(
                program, scale, seed, nodes, repeat, workers, baseline_digest
            )
        baseline = cells.get("columnar-nostore")
        store_cell = cells.get("columnar")
        if baseline and store_cell:
            warm = store_cell["warm_seconds"] or store_cell["cold_seconds"]
            reference = baseline["warm_seconds"] or baseline["cold_seconds"]
            entry["columnar_vs_nostore_speedup"] = (
                reference / warm if warm else None
            )
        naive_cell = cells.get("naive")
        if naive_cell and store_cell:
            cold = store_cell["cold_seconds"]
            entry["columnar_vs_naive_speedup"] = (
                naive_cell["cold_seconds"] / cold if cold else None
            )
        persisted_cell = cells.get("store-persisted")
        if persisted_cell and persisted_cell["warm_seconds"]:
            # Cold = in-memory block build + synchronous persist +
            # kernels; warm = mmap open + kernels.  The satellite's
            # cold-build vs mmap-open delta.
            entry["persisted_open_vs_cold_build_speedup"] = (
                persisted_cell["cold_seconds"]
                / persisted_cell["warm_seconds"]
            )
        document["scenarios"][scenario] = entry
    if clients:
        from repro.serve.bench import run_concurrent_clients_bench

        document["concurrent_clients"] = run_concurrent_clients_bench(
            scale=scale,
            seed=seed,
            clients=clients,
            requests_per_client=client_requests,
            engine=serve_engine,
            workers=workers,
        )
    return document


def write_bench(document: dict, path: str) -> None:
    """Write the BENCH document as indented JSON (creating parent dirs)."""
    import os

    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_summary(document: dict) -> str:
    """Human-readable table of the BENCH document (CLI output)."""
    lines = [
        f"bench {document['bench']}  scale={document['scale']}"
        f"  repeat={document['repeat']}"
    ]
    for scenario, entry in document["scenarios"].items():
        lines.append(f"\n{scenario}:")
        for variant, cell in entry["variants"].items():
            warm = cell["warm_seconds"]
            warm_text = f"{warm * 1000:9.1f}" if warm is not None else "        -"
            lines.append(
                f"  {variant:<18} cold {cell['cold_seconds'] * 1000:9.1f} ms"
                f"  warm {warm_text} ms"
                f"  pruned {cell['partitions_pruned']:>6}"
                f"  cache {cell['cache']['hits']}/{cell['cache']['misses']}"
            )
        for variant, cell in entry["variants"].items():
            if cell["shm_bytes_shared"] or cell["shm_bytes_pickled"]:
                lines.append(
                    f"  {variant:<18} shipped"
                    f" {cell['shm_bytes_shared']:>12,} B shm"
                    f" / {cell['shm_bytes_pickled']:>12,} B pickled"
                )
        if not entry["identical_results"]:
            lines.append("  WARNING: variants disagree on result content")
        speedup = entry.get("columnar_vs_nostore_speedup")
        if speedup is not None:
            lines.append(
                f"  columnar (store+cache) vs columnar-nostore:"
                f" {speedup:.1f}x warm"
            )
        speedup = entry.get("columnar_vs_naive_speedup")
        if speedup is not None:
            lines.append(
                f"  columnar vs naive: {speedup:.1f}x cold"
            )
        speedup = entry.get("persisted_open_vs_cold_build_speedup")
        if speedup is not None:
            lines.append(
                f"  persisted store: mmap open vs cold build+persist:"
                f" {speedup:.1f}x"
            )
        sharded = entry.get("sharded")
        if sharded:
            for count in sorted(sharded["nodes"], key=int):
                cell = sharded["nodes"][count]
                lines.append(
                    f"  sharded x{count:<2}"
                    f" cluster {cell['cluster_seconds'] * 1000:9.1f} ms"
                    f"  wall {cell['wall_seconds'] * 1000:9.1f} ms"
                    f"  shards {cell['shards_placed']:>4}"
                    f"  streamed {cell['bytes_streamed']:>10,} B"
                    f"  mapped {cell['bytes_mapped']:>10,} B"
                )
            speedup = sharded.get("speedup_max_nodes_vs_1")
            if speedup is not None:
                lines.append(
                    f"  sharded cluster critical path, max nodes vs 1:"
                    f" {speedup:.1f}x"
                )
            if sharded.get("identical_to_columnar") is False:
                lines.append(
                    "  WARNING: sharded results differ from columnar"
                )
    serving = document.get("concurrent_clients")
    if serving:
        from repro.serve.bench import render_serving_summary

        lines.append(render_serving_summary(serving))
    return "\n".join(lines)
