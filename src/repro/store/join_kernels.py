"""Vectorised genometric JOIN/MAP pair kernels over sorted block arrays.

These kernels turn the per-anchor Python loops of the genometric JOIN
and the per-reference aggregation of MAP into ``searchsorted``/merge
arithmetic over one chromosome's worth of :class:`~repro.store.columnar.
ChromBlock` arrays.  They operate on *plain numpy arrays* -- never on
region objects or plan nodes -- so the same functions run in the parent
process (columnar backend) and inside pool workers over shared-memory
views (parallel backend).

Conventions shared by every kernel here:

* the experiment side arrives in **left-sorted order**: ``e_starts``
  ascending, ``e_stops`` carrying the matching stop per row (i.e. the
  block's ``starts[left_order]`` / ``stops[left_order]``);
* returned experiment indices are **positions in that sorted order**;
  callers map them back through ``block.left_order`` to block rows;
* returned anchor/reference indices are plain row positions into the
  anchor arrays, in non-decreasing order;
* genometric gaps follow :meth:`GenomicRegion.distance`: negative for
  overlaps, ``0`` when adjacent, never defined across chromosomes
  (cross-chromosome pairs simply never reach a kernel).

Pair *order* is part of the contract, because downstream sample sorts
are stable and ties (identical output coordinates, different values)
must serialise exactly like the naive reference enumeration:

* with a finite DLE bound and no MD clause, pairs within one anchor come
  in left-sorted order (``NearestIndex.within`` order);
* with an MD clause or no DLE bound, pairs within one anchor come in
  ``(gap, left, right, position)`` order (``NearestIndex.nearest``
  order).
"""

from __future__ import annotations

import numpy as np

from repro.intervals.distance import stream_pair_mask

_EMPTY = np.empty(0, dtype=np.int64)


def expand_windows(lo: np.ndarray, hi: np.ndarray) -> tuple:
    """Expand per-anchor candidate windows ``[lo, hi)`` into pair arrays.

    Returns ``(anchor_rows, member_positions)`` where anchor ``i``
    contributes ``hi[i] - lo[i]`` consecutive pairs covering the
    positions ``lo[i] .. hi[i]-1``.  The classic ragged-window trick:
    one ``repeat`` for the anchors, offset arithmetic for the members.
    """
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    anchor_rows = np.repeat(np.arange(lo.size, dtype=np.int64), counts)
    offsets = np.cumsum(counts) - counts
    members = (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(lo, counts)
    )
    return anchor_rows, members


def _md_distance_bound(
    a_starts: np.ndarray,
    a_stops: np.ndarray,
    a_strands: np.ndarray,
    e_starts: np.ndarray,
    e_sorted_stops: np.ndarray,
    k: int,
    upstream: bool,
    downstream: bool,
) -> np.ndarray:
    """Per-anchor distance ``D`` guaranteeing >= k MD candidates within it.

    The k-th experiment start at-or-after the anchor's stop bounds the
    gap of k same-side candidates on the right; the k-th largest
    experiment stop at-or-before the anchor's start bounds k candidates
    on the left.  Directional clauses restrict candidates to one side
    (which side depends on the anchor's strand), so only that side's
    bound applies.  ``inf`` (no such bound -- fewer than k candidates on
    the relevant side) widens the window to the whole chromosome, which
    is exactly what MD semantics require.
    """
    m = e_starts.size
    right_kth = np.searchsorted(e_starts, a_stops, side="left") + (k - 1)
    gap_right = np.where(
        right_kth < m,
        e_starts[np.minimum(right_kth, m - 1)] - a_stops,
        np.inf,
    )
    left_kth = np.searchsorted(e_sorted_stops, a_starts, side="right") - k
    gap_left = np.where(
        left_kth >= 0,
        a_starts - e_sorted_stops[np.maximum(left_kth, 0)],
        np.inf,
    )
    if upstream and downstream:
        # Contradictory on every anchor with a strand; nothing bounds the
        # candidate pool, so fall back to full windows.
        return np.full(a_starts.size, np.inf)
    if upstream or downstream:
        # Upstream of a forward/unstranded anchor is the left side;
        # everything mirrors for reverse-strand anchors and DOWN.
        left_side = (a_strands >= 0) if upstream else (a_strands < 0)
        return np.where(left_side, gap_left, gap_right)
    return np.minimum(gap_left, gap_right)


def _group_ranks(groups: np.ndarray) -> np.ndarray:
    """Rank of each element within its run of equal *groups* values."""
    boundaries = np.flatnonzero(np.r_[True, groups[1:] != groups[:-1]])
    counts = np.diff(np.r_[boundaries, groups.size])
    return np.arange(groups.size, dtype=np.int64) - np.repeat(
        boundaries, counts
    )


def join_pairs(
    a_starts: np.ndarray,
    a_stops: np.ndarray,
    a_strands: np.ndarray,
    e_starts: np.ndarray,
    e_stops: np.ndarray,
    e_sorted_stops: np.ndarray | None = None,
    *,
    max_distance: int | None = None,
    min_distance: int | None = None,
    md_k: int | None = None,
    upstream: bool = False,
    downstream: bool = False,
) -> tuple:
    """All genometric join pairs on one chromosome.

    Anchor arrays are in block-row order; experiment arrays in
    left-sorted order (``e_sorted_stops`` -- stops sorted independently
    -- is only consulted when ``md_k`` is set).  Returns
    ``(anchor_rows, e_positions, gaps)`` honouring the module's ordering
    contract; *gaps* is int64.

    Clause semantics mirror :meth:`GenometricCondition.matches_for_anchor`:
    directional clauses filter the candidate pool first, MD(k) then keeps
    the k nearest per anchor (ties broken by ``(left, right, position)``),
    and DLE/DGE bounds apply last -- so an MD selection is *not* widened
    by discarding out-of-bound nearest candidates.
    """
    if a_starts.size == 0 or e_starts.size == 0:
        return _EMPTY, _EMPTY, _EMPTY
    max_width = int((e_stops - e_starts).max())

    if md_k is not None:
        if e_sorted_stops is None:
            e_sorted_stops = np.sort(e_stops)
        bound = _md_distance_bound(
            a_starts, a_stops, a_strands, e_starts, e_sorted_stops,
            md_k, upstream, downstream,
        )
        lo = np.searchsorted(
            e_starts, a_starts - bound - max_width, side="left"
        )
        hi = np.searchsorted(e_starts, a_stops + bound, side="right")
    elif max_distance is not None:
        lo = np.searchsorted(
            e_starts, a_starts - max_distance - max_width, side="left"
        )
        hi = np.searchsorted(e_starts, a_stops + max_distance, side="right")
        # A negative DLE bound (overlap-only join) can invert degenerate
        # windows; expand_windows needs hi >= lo.
        hi = np.maximum(hi, lo)
    else:
        lo = np.zeros(a_starts.size, dtype=np.int64)
        hi = np.full(a_starts.size, e_starts.size, dtype=np.int64)

    a_rows, e_pos = expand_windows(lo, hi)
    if a_rows.size == 0:
        return _EMPTY, _EMPTY, _EMPTY
    pair_a_starts = a_starts[a_rows]
    pair_a_stops = a_stops[a_rows]
    pair_e_starts = e_starts[e_pos]
    pair_e_stops = e_stops[e_pos]
    gaps = np.maximum(pair_a_starts, pair_e_starts) - np.minimum(
        pair_a_stops, pair_e_stops
    )

    keep = np.ones(a_rows.size, dtype=bool)
    if upstream:
        keep &= stream_pair_mask(
            a_strands[a_rows], pair_a_starts, pair_a_stops,
            pair_e_starts, pair_e_stops, upstream=True,
        )
    if downstream:
        keep &= stream_pair_mask(
            a_strands[a_rows], pair_a_starts, pair_a_stops,
            pair_e_starts, pair_e_stops, upstream=False,
        )

    if md_k is None:
        if max_distance is not None:
            keep &= gaps <= max_distance
        if min_distance is not None:
            keep &= gaps >= min_distance
        a_rows, e_pos, gaps = a_rows[keep], e_pos[keep], gaps[keep]
        if max_distance is None and a_rows.size:
            # The naive reference enumerates unbounded candidates in
            # nearest order; reproduce it for stable-sort tie fidelity.
            order = np.lexsort(
                (e_stops[e_pos], e_starts[e_pos], gaps, a_rows)
            )
            a_rows, e_pos, gaps = a_rows[order], e_pos[order], gaps[order]
        return a_rows, e_pos, gaps

    # MD(k): directional filter first, then the k nearest per anchor.
    a_rows, e_pos, gaps = a_rows[keep], e_pos[keep], gaps[keep]
    if a_rows.size == 0:
        return _EMPTY, _EMPTY, _EMPTY
    # lexsort is stable over the left-sorted candidate order, so ties in
    # (gap, left, right) fall back to sample position -- exactly the
    # NearestIndex.nearest tie-break.
    order = np.lexsort((e_stops[e_pos], e_starts[e_pos], gaps, a_rows))
    a_rows, e_pos, gaps = a_rows[order], e_pos[order], gaps[order]
    selected = _group_ranks(a_rows) < md_k
    a_rows, e_pos, gaps = a_rows[selected], e_pos[selected], gaps[selected]
    keep = np.ones(a_rows.size, dtype=bool)
    if max_distance is not None:
        keep &= gaps <= max_distance
    if min_distance is not None:
        keep &= gaps >= min_distance
    return a_rows[keep], e_pos[keep], gaps[keep]


def overlap_pairs(
    r_starts: np.ndarray,
    r_stops: np.ndarray,
    e_starts: np.ndarray,
    e_stops: np.ndarray,
) -> tuple:
    """All strictly-overlapping (reference, experiment) pairs.

    Reference arrays in block-row order, experiment arrays left-sorted.
    Overlap is exact :meth:`GenomicRegion.overlaps` semantics
    (``e.left < r.right and e.right > r.left``), which handles
    zero-length features on either side without correction terms --
    point probes overlap only strict containers, coincident points never
    overlap.  Returns ``(ref_rows, e_positions)`` with experiments in
    left-sorted order within each reference (the canonical MAP hit
    order).
    """
    if r_starts.size == 0 or e_starts.size == 0:
        return _EMPTY, _EMPTY
    max_width = int((e_stops - e_starts).max())
    lo = np.searchsorted(e_starts, r_starts - max_width, side="right")
    hi = np.searchsorted(e_starts, r_stops, side="left")
    hi = np.maximum(hi, lo)
    r_rows, e_pos = expand_windows(lo, hi)
    if r_rows.size == 0:
        return _EMPTY, _EMPTY
    keep = e_stops[e_pos] > r_starts[r_rows]
    return r_rows[keep], e_pos[keep]


def group_offsets(ref_rows: np.ndarray, n_refs: int) -> np.ndarray:
    """CSR-style offsets: pairs of reference ``i`` occupy
    ``offsets[i]:offsets[i+1]``.  *ref_rows* must be non-decreasing
    (which every kernel here guarantees)."""
    return np.searchsorted(
        ref_rows, np.arange(n_refs + 1, dtype=np.int64)
    )


def segment_counts(offsets: np.ndarray) -> np.ndarray:
    """Per-reference pair counts from :func:`group_offsets` offsets."""
    return np.diff(offsets)


def segment_reduce(
    values: np.ndarray, offsets: np.ndarray, how: str
) -> np.ndarray:
    """Reduce each offsets segment of *values* with ``sum``/``min``/``max``.

    Only non-empty segments are reduced (``reduceat`` misbehaves on
    empty ones); the returned array is aligned with segments and holds
    garbage at empty positions -- callers mask with the counts.  Integer
    sums are exact (associative); float sums are *not* bit-identical to
    sequential Python summation, so callers must not route
    order-sensitive float reductions here.
    """
    ufunc = {"sum": np.add, "min": np.minimum, "max": np.maximum}[how]
    counts = segment_counts(offsets)
    out = np.zeros(counts.size, dtype=values.dtype)
    nonempty = counts > 0
    if nonempty.any():
        out[nonempty] = ufunc.reduceat(values, offsets[:-1][nonempty])
    return out


def segment_median_positions(
    values: np.ndarray, ref_rows: np.ndarray, offsets: np.ndarray
) -> tuple:
    """Positions of the middle element(s) of each sorted segment.

    Sorts *values* within each segment (stable, segment-major) and
    returns ``(sorted_values, lo_positions, hi_positions)`` where the
    median of segment ``i`` is ``sorted_values[lo[i]]`` for odd counts
    and the mean of ``sorted_values[lo[i]]``/``sorted_values[hi[i]]``
    for even counts.  Empty segments get positions clamped to 0; mask
    with the counts.
    """
    order = np.lexsort((values, ref_rows))
    sorted_values = values[order]
    counts = segment_counts(offsets)
    starts = offsets[:-1]
    lo = starts + np.maximum(counts - 1, 0) // 2
    hi = starts + np.maximum(counts, 1) // 2
    top = max(sorted_values.size - 1, 0)
    return sorted_values, np.minimum(lo, top), np.minimum(hi, top)
