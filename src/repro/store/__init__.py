"""The columnar region store: blocks, zone maps and the result cache.

This package is the physical data layout underneath the execution
engines (the paper's section 4 "cloud-based execution" direction):

* :mod:`repro.store.columnar` -- per-chromosome struct-of-arrays blocks
  with zone maps, memoised per dataset, so kernels stop rebuilding
  numpy arrays from region objects on every operator;
* :mod:`repro.store.join_kernels` -- vectorised genometric JOIN/MAP
  pair kernels (``searchsorted``/merge arithmetic over one
  chromosome's sorted block arrays);
* :mod:`repro.store.cover_kernels` -- the event-sweep kernels serving
  the whole COVER family (COVER/FLAT/SUMMIT/HISTOGRAM) and
  DIFFERENCE's overlap test from one step-function coverage profile
  per chromosome, built from the persisted sorted columns;
* :mod:`repro.store.exact_sum` -- exact grouped float summation
  (vectorised ``math.fsum``) backing the engines' float SUM/AVG/STD
  fast path;
* :mod:`repro.store.persist` -- the disk-native persisted store:
  content-addressed per-chromosome segment files opened lazily via
  ``np.memmap`` (the only module allowed to construct memory maps),
  plus the block-residency spill budget;
* :mod:`repro.store.shm` -- the shared-memory block-shipping protocol
  used by the parallel backend (the only module allowed to construct
  ``SharedMemory`` segments); disk-resident arrays ship as mmap
  handles instead;
* :mod:`repro.store.cache` -- the plan-fingerprint LRU result cache
  that lets identical (sub)queries over identical content skip
  execution entirely, optionally persisted beside the store.

See ``docs/PERFORMANCE.md`` for the layout, the pruning rules and the
cache-key/invalidation story.
"""

from repro.store.cache import (
    DEFAULT_CAPACITY,
    ResultCache,
    cache_capacity_from_env,
    plan_token,
    reset_result_cache,
    result_cache,
)
from repro.store.columnar import (
    STRAND_CODES,
    ChromBlock,
    DatasetStore,
    SampleBlocks,
    ZoneEntry,
    ZoneMap,
    count_overlaps_blocks,
    depth_segments,
    occupied_bins,
    point_feature_adjustment,
    reset_store_counters,
    store_counters,
)
from repro.store.cover_kernels import (
    block_cover_columns,
    chrom_cover_rows,
    coverage_runs,
    flat_extents,
    group_cover_rows,
    mask_chrom_events,
    multiset_subtract,
    overlap_any_mask,
    profile_cover,
    profile_histogram,
    profile_summits,
    prune_dead_bins,
    sweep_profile,
    wide_sorted_events,
)
from repro.store.exact_sum import segment_fsum
from repro.store.join_kernels import (
    expand_windows,
    group_offsets,
    join_pairs,
    overlap_pairs,
    segment_counts,
    segment_median_positions,
    segment_reduce,
)
from repro.store.persist import (
    PersistedStore,
    ResidencyLedger,
    mmap_descriptor,
    open_segment,
    persist_store,
    reset_residency_ledger,
    residency_ledger,
    set_store_root,
    store_root,
)
from repro.store.shm import (
    ArrayShipper,
    materialise,
    segment_exists,
    shared_memory_available,
    shm_enabled,
)

__all__ = [
    "ArrayShipper",
    "ChromBlock",
    "DEFAULT_CAPACITY",
    "DatasetStore",
    "ResultCache",
    "STRAND_CODES",
    "SampleBlocks",
    "ZoneEntry",
    "ZoneMap",
    "block_cover_columns",
    "cache_capacity_from_env",
    "chrom_cover_rows",
    "count_overlaps_blocks",
    "coverage_runs",
    "depth_segments",
    "expand_windows",
    "flat_extents",
    "group_cover_rows",
    "group_offsets",
    "join_pairs",
    "mask_chrom_events",
    "materialise",
    "multiset_subtract",
    "occupied_bins",
    "overlap_any_mask",
    "overlap_pairs",
    "profile_cover",
    "profile_histogram",
    "profile_summits",
    "prune_dead_bins",
    "PersistedStore",
    "ResidencyLedger",
    "mmap_descriptor",
    "open_segment",
    "persist_store",
    "plan_token",
    "point_feature_adjustment",
    "reset_residency_ledger",
    "reset_store_counters",
    "residency_ledger",
    "reset_result_cache",
    "result_cache",
    "store_counters",
    "set_store_root",
    "store_root",
    "segment_counts",
    "segment_exists",
    "segment_fsum",
    "segment_median_positions",
    "segment_reduce",
    "shared_memory_available",
    "shm_enabled",
    "sweep_profile",
    "wide_sorted_events",
]
