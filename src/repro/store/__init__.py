"""The columnar region store: blocks, zone maps and the result cache.

This package is the physical data layout underneath the execution
engines (the paper's section 4 "cloud-based execution" direction):

* :mod:`repro.store.columnar` -- per-chromosome struct-of-arrays blocks
  with zone maps, memoised per dataset, so kernels stop rebuilding
  numpy arrays from region objects on every operator;
* :mod:`repro.store.cache` -- the plan-fingerprint LRU result cache
  that lets identical (sub)queries over identical content skip
  execution entirely.

See ``docs/PERFORMANCE.md`` for the layout, the pruning rules and the
cache-key/invalidation story.
"""

from repro.store.cache import (
    DEFAULT_CAPACITY,
    ResultCache,
    cache_capacity_from_env,
    plan_token,
    reset_result_cache,
    result_cache,
)
from repro.store.columnar import (
    ChromBlock,
    DatasetStore,
    SampleBlocks,
    ZoneEntry,
    ZoneMap,
    count_overlaps_blocks,
    depth_segments,
    occupied_bins,
    point_feature_adjustment,
)

__all__ = [
    "ChromBlock",
    "DEFAULT_CAPACITY",
    "DatasetStore",
    "ResultCache",
    "SampleBlocks",
    "ZoneEntry",
    "ZoneMap",
    "cache_capacity_from_env",
    "count_overlaps_blocks",
    "depth_segments",
    "occupied_bins",
    "plan_token",
    "point_feature_adjustment",
    "reset_result_cache",
    "result_cache",
]
