"""Exact grouped float summation: vectorised ``math.fsum``.

The MAP/EXTEND/GROUP float aggregates (SUM, AVG, STD) are defined
against ``math.fsum``, which returns the correctly rounded value of the
*exact* real sum and is therefore order-independent.  That definition
is what lets a vectorised kernel be bit-identical to the naive
per-group reduction: both sides round the same exact rational number
once.

:func:`segment_fsum` reproduces fsum over CSR segments with a
fixed-point **superaccumulator** (a Kulisch-style accumulator, split
into 32-bit limbs held in int64 lanes):

1. ``np.frexp`` decomposes each float64 into an exact integer mantissa
   ``m`` (|m| < 2**53) and exponent, so ``v = m * 2**(e-53)``;
2. after re-biasing the exponent to be non-negative, each mantissa
   contributes to at most three 32-bit limbs of its group's
   accumulator, scattered with ``np.add.at`` (contributions are
   < 2**33 in magnitude, so an int64 lane absorbs > 2**30 addends
   without overflow);
3. a vectorised carry-propagation pass normalises the limbs, each
   group's accumulator is reassembled into an exact Python integer
   ``T``, and the result is the correctly rounded value of
   ``T * 2**-BIAS`` -- computed with Python's exact big-int ``/``
   (round-half-even, like fsum).

**Exactness argument.**  Steps 1-3 are exact integer arithmetic; the
single rounding at the end is the same correctly rounded conversion
fsum performs.  The one divergence fsum allows is an *intermediate*
overflow (a partial sum exceeding the float64 range even though the
total does not), which raises ``OverflowError``.  Groups that could hit
it -- any member with magnitude >= 2**1000, or more than 2**20 members
-- fall back to ``math.fsum`` itself, as do groups containing
non-finite values (fsum's inf/NaN bookkeeping is order-independent
too, so the fallback stays byte-identical).  For the remaining groups
every prefix sum is below ``2**20 * 2**1000 < 2**1024``, so fsum
cannot overflow and both sides return the same correctly rounded
float.  Zero totals are safe as well: fsum normalises them to ``+0.0``
regardless of input signs, exactly like big-int division of 0.
"""

from __future__ import annotations

import math

import numpy as np

_LIMB_BITS = 32
_LIMB_MASK = (1 << _LIMB_BITS) - 1

#: Exponent re-bias making every float64 (denormals included) an
#: integer multiple of ``2**-_BIAS``: the smallest positive float64 is
#: ``2**-1074 = 2**52 * 2**(-1073 - 53)``, so biasing frexp exponents
#: by 1128 leaves slack.
_BIAS = 1128

#: Conservative gates under which ``math.fsum`` provably cannot raise
#: an intermediate ``OverflowError`` (see the module docstring).
_MAX_MAGNITUDE = 2.0 ** 1000
_MAX_GROUP = 1 << 20


def _scaled_float(value: int, shift: int) -> float:
    """Correctly rounded ``value * 2**shift`` for exact integer *value*."""
    if shift >= 0:
        return float(value << shift)
    return value / (1 << -shift)


def segment_fsum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sums of float64 *values*, bit-identical to fsum.

    *offsets* is a CSR boundary array (:func:`repro.store.group_offsets`
    shape): segment ``i`` is ``values[offsets[i]:offsets[i+1]]``.
    Returns a float64 array aligned with segments; empty segments sum
    to ``0.0`` (fsum of an empty iterable).  Raises exactly where a
    per-segment ``math.fsum`` would (inf - inf, overflow).
    """
    counts = np.diff(offsets)
    n_groups = int(counts.size)
    out = np.zeros(n_groups, dtype=np.float64)
    if n_groups == 0 or values.size == 0:
        return out
    group = np.repeat(np.arange(n_groups, dtype=np.int64), counts)
    risky = ~np.isfinite(values) | (np.abs(values) >= _MAX_MAGNITUDE)
    fallback = np.zeros(n_groups, dtype=bool)
    if risky.any():
        fallback[group[risky]] = True
    fallback |= counts >= _MAX_GROUP

    exact_elements = ~fallback[group]
    x = values[exact_elements]
    if x.size:
        g = group[exact_elements]
        fractions, exponents = np.frexp(x)
        mantissas = np.ldexp(fractions, 53).astype(np.int64)  # exact
        biased = exponents.astype(np.int64) - 53 + _BIAS
        limb = biased >> 5
        shift = biased & 31
        signs = np.sign(mantissas)
        magnitudes = np.abs(mantissas)
        low = (magnitudes & _LIMB_MASK) << shift
        high = (magnitudes >> _LIMB_BITS) << shift
        contrib0 = (low & _LIMB_MASK) * signs
        contrib1 = ((low >> _LIMB_BITS) + (high & _LIMB_MASK)) * signs
        contrib2 = (high >> _LIMB_BITS) * signs

        # Window the limb range to what the data occupies (plus carry
        # headroom); full float64 range would be ~70 limbs per group.
        limb_lo = int(limb.min())
        n_limbs = int(limb.max()) - limb_lo + 4
        accumulator = np.zeros(n_groups * n_limbs, dtype=np.int64)
        base = g * n_limbs + (limb - limb_lo)
        np.add.at(accumulator, base, contrib0)
        np.add.at(accumulator, base + 1, contrib1)
        np.add.at(accumulator, base + 2, contrib2)
        accumulator = accumulator.reshape(n_groups, n_limbs)
        for j in range(n_limbs - 1):
            carry = accumulator[:, j] >> _LIMB_BITS  # arithmetic shift
            accumulator[:, j] -= carry << _LIMB_BITS
            accumulator[:, j + 1] += carry
        # Low limbs are now in [0, 2**32); the top limb keeps the sign.
        tops = accumulator[:, -1]
        body = np.ascontiguousarray(
            accumulator[:, :-1].astype(np.uint32)
        ).astype("<u4").tobytes()
        row_bytes = 4 * (n_limbs - 1)
        top_shift = _LIMB_BITS * (n_limbs - 1)
        result_shift = _LIMB_BITS * limb_lo - _BIAS
        for i in np.flatnonzero(~fallback & (counts > 0)).tolist():
            total = int.from_bytes(
                body[i * row_bytes:(i + 1) * row_bytes], "little"
            ) + (int(tops[i]) << top_shift)
            if total:
                out[i] = _scaled_float(total, result_shift)

    for i in np.flatnonzero(fallback).tolist():
        out[i] = math.fsum(
            values[int(offsets[i]):int(offsets[i + 1])].tolist()
        )
    return out
