"""Columnar region blocks and zone maps: the physical storage layer.

GMQL kernels used to rebuild per-chromosome numpy arrays from Python
region objects on *every* operator invocation.  This module materialises
each sample once into a struct-of-arrays :class:`SampleBlocks` -- per
chromosome ``starts``/``stops`` coordinate arrays plus lazily derived
sort orders -- and attaches a :class:`ZoneMap` (min/max coordinates and
the set of occupied genome bins per chromosome) so operators can prove
"nothing here can match" and skip whole chromosomes or bins without
touching a single region.

The layer is storage-only: it never interprets operator semantics.
Engines ask a :class:`DatasetStore` (memoised on the dataset, see
:meth:`repro.gdm.dataset.Dataset.store`) for blocks and zone maps and do
their own pruning arithmetic; :func:`count_overlaps_blocks` is the one
shared kernel because MAP-with-COUNT and DIFFERENCE both reduce to it.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

from repro.intervals.bins import DEFAULT_BIN_SIZE

#: Integer strand encoding used by block ``strands`` arrays: forward is
#: positive, reverse negative, unstranded zero.  Directional (UP/DOWN)
#: join kernels only ever test the sign (see
#: :func:`repro.intervals.distance.stream_pair_mask`).
STRAND_CODES = {"+": 1, "-": -1, "*": 0}

#: Process-wide block accounting, mirroring the per-store counters.
#: Individual stores live on (possibly short-lived) derived datasets --
#: a COVER over a SELECT result builds its blocks on the SELECT output's
#: store, which is garbage once the query returns -- so observers that
#: only see the source datasets (the bench harness, ``repro info``)
#: would under-count.  These totals survive the stores that fed them.
_PROCESS_COUNTERS = {
    "blocks_built": 0,
    "blocks_mapped": 0,
    "blocks_evicted": 0,
}


def reset_store_counters() -> None:
    """Zero the process-wide block counters (bench/test isolation)."""
    for name in _PROCESS_COUNTERS:
        _PROCESS_COUNTERS[name] = 0


def store_counters() -> dict:
    """Snapshot of the process-wide block counters."""
    return dict(_PROCESS_COUNTERS)


def occupied_bins(
    starts: np.ndarray, stops: np.ndarray, bin_size: int
) -> np.ndarray:
    """Sorted unique bin indices touched by ``[start, stop)`` intervals.

    Every bin an interval overlaps is included (a region spanning bins
    3..7 occupies all five), which is what makes zone-map pruning sound:
    two overlapping regions always share at least one occupied bin.
    Zero-length intervals occupy the bin containing their point.
    """
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    lo = starts // bin_size
    hi = np.maximum(stops - 1, starts) // bin_size
    pieces = [lo, hi]
    spanning = hi - lo >= 2
    if spanning.any():
        pieces.extend(
            np.arange(l + 1, h)
            for l, h in zip(lo[spanning], hi[spanning])
        )
    return np.unique(np.concatenate(pieces))


class ZoneEntry:
    """Zone-map statistics for one chromosome of one block set."""

    __slots__ = ("chrom", "count", "min_start", "max_start", "min_stop",
                 "max_stop", "bins")

    def __init__(
        self,
        chrom: str,
        starts: np.ndarray,
        stops: np.ndarray,
        bin_size: int,
    ) -> None:
        self.chrom = chrom
        self.count = int(starts.size)
        self.min_start = int(starts.min())
        self.max_start = int(starts.max())
        self.min_stop = int(stops.min())
        self.max_stop = int(stops.max())
        self.bins = occupied_bins(starts, stops, bin_size)

    @property
    def partitions(self) -> int:
        """Number of occupied (chromosome, bin) partitions."""
        return int(self.bins.size)

    @classmethod
    def from_stats(
        cls,
        chrom: str,
        count: int,
        min_start: int,
        max_start: int,
        min_stop: int,
        max_stop: int,
        bins: np.ndarray,
    ) -> "ZoneEntry":
        """Rebuild an entry from persisted statistics (no array scans).

        The loader in :mod:`repro.store.persist` uses this so opening a
        store never touches coordinate pages just to recompute min/max.
        """
        entry = cls.__new__(cls)
        entry.chrom = chrom
        entry.count = int(count)
        entry.min_start = int(min_start)
        entry.max_start = int(max_start)
        entry.min_stop = int(min_stop)
        entry.max_stop = int(max_stop)
        entry.bins = bins
        return entry

    def window_overlaps(self, lo: int, hi: int) -> bool:
        """Could any region here overlap the half-open window ``[lo, hi)``?

        Zero-length point features make the comparison inclusive on the
        start side: a point at ``lo`` is still a candidate.
        """
        return self.min_start < hi and self.max_stop > lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ZoneEntry({self.chrom!r}, n={self.count},"
            f" [{self.min_start},{self.max_stop}), bins={self.partitions})"
        )


class ZoneMap:
    """Per-chromosome zone entries for one sample (or one dataset)."""

    __slots__ = ("bin_size", "entries")

    def __init__(self, bin_size: int) -> None:
        self.bin_size = bin_size
        self.entries: dict = {}

    def entry(self, chrom: str) -> ZoneEntry | None:
        return self.entries.get(chrom)

    @property
    def chromosomes(self) -> tuple:
        return tuple(self.entries)

    def partitions(self) -> int:
        """Total occupied (chromosome, bin) partitions across chromosomes."""
        return sum(entry.partitions for entry in self.entries.values())

    def region_count(self) -> int:
        return sum(entry.count for entry in self.entries.values())


class ChromBlock:
    """Struct-of-arrays for one chromosome of one sample.

    ``starts``/``stops`` are in the sample's region order; ``index`` maps
    each row back to its position in ``sample.regions`` so kernels can
    rehydrate region objects only for emitted results.  Sorted views are
    derived lazily and memoised because only probe-side kernels need
    them.
    """

    __slots__ = ("chrom", "starts", "stops", "strands", "index",
                 "_sorted_starts", "_sorted_stops", "_left_order",
                 "_left_stops", "_max_width", "_zero_positions")

    def __init__(
        self, chrom: str, starts: np.ndarray, stops: np.ndarray,
        index: np.ndarray, strands: np.ndarray | None = None,
    ) -> None:
        self.chrom = chrom
        self.starts = starts
        self.stops = stops
        self.strands = (
            strands
            if strands is not None
            else np.zeros(starts.size, dtype=np.int8)
        )
        self.index = index
        self._sorted_starts = None
        self._sorted_stops = None
        self._left_order = None
        self._left_stops = None
        self._max_width = None
        self._zero_positions = None

    def __len__(self) -> int:
        return int(self.starts.size)

    @property
    def sorted_starts(self) -> np.ndarray:
        """Start coordinates in ascending order (memoised)."""
        if self._sorted_starts is None:
            self._sorted_starts = np.sort(self.starts)
        return self._sorted_starts

    @property
    def sorted_stops(self) -> np.ndarray:
        """Stop coordinates in ascending order (memoised, independent)."""
        if self._sorted_stops is None:
            self._sorted_stops = np.sort(self.stops)
        return self._sorted_stops

    @property
    def left_order(self) -> np.ndarray:
        """Row permutation sorting by ``(start, stop)`` (memoised)."""
        if self._left_order is None:
            self._left_order = np.lexsort((self.stops, self.starts))
        return self._left_order

    @property
    def left_stops(self) -> np.ndarray:
        """Stop coordinates permuted by :attr:`left_order` (memoised).

        Together with :attr:`sorted_starts` (whose values coincide with
        ``starts[left_order]``: both are the starts in ascending order)
        this is the left-sorted experiment view the pair kernels
        consume.  Memoised so the shared-memory shipper sees a stable
        array identity per block.
        """
        if self._left_stops is None:
            self._left_stops = self.stops[self.left_order]
        return self._left_stops

    @property
    def zero_positions(self) -> np.ndarray:
        """Sorted positions of zero-length regions (memoised).

        Probe-side kernels need these to repair the searchsorted counting
        identity for point references; see
        :func:`point_feature_adjustment`.
        """
        if self._zero_positions is None:
            self._zero_positions = np.sort(
                self.starts[self.stops == self.starts]
            )
        return self._zero_positions

    @property
    def max_width(self) -> int:
        """The widest region on this chromosome (window-join bound)."""
        if self._max_width is None:
            self._max_width = int((self.stops - self.starts).max())
        return self._max_width


class SampleBlocks:
    """All columnar blocks of one sample plus its zone map.

    ``column_cache`` additionally memoises whole-sample attribute
    columns (coordinates, strand, value columns) built by the vectorised
    SELECT path, so repeated predicates over one sample reuse arrays.
    """

    __slots__ = ("sample_id", "n_regions", "chroms", "zone_map",
                 "column_cache")

    def __init__(self, sample_id, regions, bin_size: int) -> None:
        self.sample_id = sample_id
        self.n_regions = len(regions)
        self.chroms: dict = {}
        self.zone_map = ZoneMap(bin_size)
        self.column_cache: dict = {}
        grouped: dict = {}
        for position, region in enumerate(regions):
            grouped.setdefault(region.chrom, []).append(position)
        for chrom, positions in grouped.items():
            index = np.asarray(positions, dtype=np.int64)
            starts = np.fromiter(
                (regions[i].left for i in positions),
                dtype=np.int64, count=len(positions),
            )
            stops = np.fromiter(
                (regions[i].right for i in positions),
                dtype=np.int64, count=len(positions),
            )
            strands = np.fromiter(
                (STRAND_CODES.get(regions[i].strand, 0) for i in positions),
                dtype=np.int8, count=len(positions),
            )
            self.chroms[chrom] = ChromBlock(
                chrom, starts, stops, index, strands
            )
            self.zone_map.entries[chrom] = ZoneEntry(
                chrom, starts, stops, bin_size
            )

    @classmethod
    def from_parts(
        cls, sample_id, n_regions: int, chroms: dict, zone_map: ZoneMap
    ) -> "SampleBlocks":
        """Assemble blocks from pre-built parts (the persisted-store path).

        :mod:`repro.store.persist` reconstructs chromosome blocks as
        zero-copy views into a memory-mapped segment file and hands them
        here; nothing is scanned or copied.
        """
        blocks = cls.__new__(cls)
        blocks.sample_id = sample_id
        blocks.n_regions = n_regions
        blocks.chroms = chroms
        blocks.zone_map = zone_map
        blocks.column_cache = {}
        return blocks

    def nbytes(self) -> int:
        """Bytes held by all materialised arrays (residency accounting)."""
        total = 0
        for block in self.chroms.values():
            for name in ChromBlock.__slots__:
                if name == "chrom":
                    continue
                value = getattr(block, name)
                if isinstance(value, np.ndarray):
                    total += value.nbytes
        for entry in self.zone_map.entries.values():
            total += entry.bins.nbytes
        return total

    def block(self, chrom: str) -> ChromBlock | None:
        return self.chroms.get(chrom)

    def chrom_arrays(self) -> dict:
        """Legacy view ``{chrom: (sorted_starts, sorted_stops)}``.

        The shape :func:`repro.engine.columnar._chrom_arrays` used to
        rebuild per operator; kept so callers can migrate piecemeal.
        """
        return {
            chrom: (block.sorted_starts, block.sorted_stops)
            for chrom, block in self.chroms.items()
        }


def point_feature_adjustment(
    zero_positions: np.ndarray,
    ref_starts: np.ndarray,
    ref_stops: np.ndarray,
) -> np.ndarray | int:
    """Correction restoring exact overlap semantics for point references.

    The shared counting identity ``|probes starting before ref.stop| -
    |probes ending at-or-before ref.start|`` tallies every probe exactly
    once -- except a zero-length probe sitting exactly on a zero-length
    reference, which is subtracted without ever having been added (it
    neither starts before the reference "ends" nor overlaps it), driving
    the count to -1.  This returns the per-reference count of coincident
    zero-length probes to add back; 0 when no reference is a point or
    the probe side has no zero-length regions.
    """
    if zero_positions.size == 0:
        return 0
    point = ref_stops == ref_starts
    if not point.any():
        return 0
    extra = np.zeros(ref_starts.size, dtype=np.int64)
    positions = ref_starts[point]
    extra[point] = np.searchsorted(
        zero_positions, positions, side="right"
    ) - np.searchsorted(zero_positions, positions, side="left")
    return extra


def count_overlaps_blocks(
    ref_blocks: SampleBlocks, probe_blocks: SampleBlocks
) -> tuple:
    """Per-reference overlap counts with zone-map pruning.

    Returns ``(counts, partitions_pruned)``: *counts* is aligned with the
    reference sample's region order; *partitions_pruned* counts the
    (chromosome, bin) partitions of the reference side that the probe
    zone map proved empty, so the kernel never touched them.

    The counting identity is the searchsorted trick shared with the
    columnar engine: ``|probes starting before ref.stop| - |probes
    ending at-or-before ref.start|``.
    """
    counts = np.zeros(ref_blocks.n_regions, dtype=np.int64)
    pruned = 0
    bin_size = probe_blocks.zone_map.bin_size
    for chrom, block in ref_blocks.chroms.items():
        ref_entry = ref_blocks.zone_map.entry(chrom)
        probe_entry = probe_blocks.zone_map.entry(chrom)
        if probe_entry is None or not ref_entry.window_overlaps(
            probe_entry.min_start, probe_entry.max_stop
        ):
            pruned += ref_entry.partitions
            continue
        probe_block = probe_blocks.chroms[chrom]
        starts, stops, index = block.starts, block.stops, block.index
        dead = np.setdiff1d(
            ref_entry.bins, probe_entry.bins, assume_unique=True
        )
        if dead.size:
            pruned += int(dead.size)
            # A reference can only overlap a probe when some occupied
            # probe bin falls inside the reference's own bin span.
            lo_bins = starts // bin_size
            hi_bins = np.maximum(stops - 1, starts) // bin_size
            occupied = np.searchsorted(
                probe_entry.bins, hi_bins, side="right"
            ) - np.searchsorted(probe_entry.bins, lo_bins, side="left")
            live = occupied > 0
            if not live.all():
                starts, stops, index = starts[live], stops[live], index[live]
        if index.size == 0:
            continue
        started = np.searchsorted(
            probe_block.sorted_starts, stops, side="left"
        )
        ended = np.searchsorted(
            probe_block.sorted_stops, starts, side="right"
        )
        counts[index] = started - ended + point_feature_adjustment(
            probe_block.zero_positions, starts, stops
        )
    return counts, pruned


def depth_segments(
    chrom: str, starts: np.ndarray, stops: np.ndarray
) -> Iterator[tuple]:
    """Depth profile of event arrays: yields ``(left, right, depth)``.

    The numpy event sweep the COVER kernels share: +1 at every start, -1
    at every stop, positions collapsed and depths accumulated.  Only
    segments with positive depth are emitted.  Zero-length intervals
    must be filtered by the caller (they contribute no coverage).
    """
    n = int(starts.size)
    if n == 0:
        return
    positions = np.concatenate([starts, stops])
    deltas = np.empty(2 * n, dtype=np.int64)
    deltas[:n] = 1
    deltas[n:] = -1
    order = np.argsort(positions, kind="stable")
    positions = positions[order]
    deltas = deltas[order]
    unique_positions, first_at = np.unique(positions, return_index=True)
    depths = np.cumsum(np.add.reduceat(deltas, first_at))
    for i in range(len(unique_positions) - 1):
        depth = int(depths[i])
        if depth > 0:
            yield (int(unique_positions[i]), int(unique_positions[i + 1]),
                   depth)


def _update_strings(h, strings: list) -> None:
    """Hash a string list injectively: lengths first, then the bodies."""
    h.update(",".join(map(str, map(len, strings))).encode())
    h.update(";".encode())
    h.update("".join(strings).encode())


def _update_column(h, column: list, count: int) -> None:
    """Hash one attribute column with explicit per-value type tags.

    The tag string makes values of different types distinct even when
    their byte encodings coincide (``1`` vs ``1.0`` vs ``True``), so
    each homogeneous column can use the cheapest faithful encoding:
    float columns hash their IEEE bytes, int columns their fixed-width
    two's complement, string columns a length-prefixed concatenation.
    Mixed, ``None``-bearing, oversized-int and exotic columns fall back
    to ``repr``, which is always faithful, just slower.
    """
    types = set(map(type, column))
    if len(types) == 1:
        tag = _TYPE_TAGS.get(types.pop(), "?")
        h.update((tag * count).encode())
        h.update(b";")
        if tag == "f":
            h.update(np.fromiter(column, np.float64, count).tobytes())
            return
        if tag == "i":
            try:
                h.update(np.fromiter(column, np.int64, count).tobytes())
                return
            except OverflowError:
                pass  # ints beyond int64: take the exact repr path
        elif tag == "s":
            _update_strings(h, column)
            return
    else:
        h.update("".join(
            _TYPE_TAGS.get(type(value), "?") for value in column
        ).encode())
        h.update(b";")
    h.update(";".join(map(repr, column)).encode())


#: Type tags for :func:`_update_column`; ``bool`` gets its own tag so it
#: never aliases ``int`` (``repr`` fallback handles its values).
_TYPE_TAGS = {float: "f", int: "i", str: "s", bool: "b", type(None): "n"}


class DatasetStore:
    """Columnar blocks, zone maps and a content digest for one dataset.

    Built lazily per sample on first access and memoised on the owning
    :class:`~repro.gdm.dataset.Dataset` (see :meth:`Dataset.store`); the
    dataset invalidates its store when samples are added, so a store
    always describes the content it was derived from.

    With a *root* configured (``--store-dir`` / ``REPRO_STORE_DIR`` /
    :func:`repro.store.persist.set_store_root`), block requests first
    try the persisted content-addressed store: a hit returns zero-copy
    ``np.memmap`` views built by :class:`repro.store.persist.PersistedStore`
    (counted in :attr:`blocks_mapped`), a miss builds in memory as
    before and triggers a one-time persist -- synchronous when *sync*
    resolves true, otherwise in a background thread.  In-memory built
    blocks are charged against the process-wide
    :class:`~repro.store.persist.ResidencyLedger` so a budget can spill
    the least-recently-used blocks instead of exhausting RAM.
    """

    def __init__(
        self,
        dataset,
        bin_size: int | None = None,
        root: str | None = None,
        sync: bool | None = None,
    ) -> None:
        from repro.store import persist

        self._dataset = dataset
        self.bin_size = int(bin_size or DEFAULT_BIN_SIZE)
        self.root = root if root is not None else persist.store_root()
        self.sync = persist.persist_sync_default() if sync is None else sync
        self._samples: dict = {}
        self._union: SampleBlocks | None = None
        self._zone_map: ZoneMap | None = None
        self._digest: str | None = None
        self._persisted = None
        self._persisted_checked = False
        self._persist_thread = None
        #: Blocks materialised in memory so far (observability / bench).
        self.blocks_built = 0
        #: Blocks served as memory-mapped segment views.
        self.blocks_mapped = 0
        #: Blocks evicted by the residency ledger (spill events).
        self.blocks_evicted = 0

    # -- persisted-store plumbing --------------------------------------------

    def _persisted_store(self):
        """The opened :class:`PersistedStore`, or ``None`` (memoised)."""
        if not self._persisted_checked:
            self._persisted_checked = True
            if self.root is not None:
                from repro.store.persist import PersistedStore

                self._persisted = PersistedStore.open(
                    self.root, self.digest(), self.bin_size
                )
        return self._persisted

    def _mapped_blocks(self, key, n_regions: int):
        """Blocks for *key* served from persisted segments, or ``None``."""
        persisted = self._persisted_store()
        if persisted is None:
            return None
        blocks = persisted.sample_blocks(key, n_regions)
        if blocks is not None:
            self.blocks_mapped += 1
            _PROCESS_COUNTERS["blocks_mapped"] += 1
        return blocks

    def _schedule_persist(self) -> None:
        """Persist this store to its root once (sync or background)."""
        if self.root is None or self._persisted_store() is not None:
            return
        if self._persist_thread is not None:
            return
        from repro.store.persist import persist_store

        if self.sync:
            self._persist_thread = True
            persist_store(self)
            # Serve every later block request from the fresh segments.
            self._persisted_checked = False
            self._persisted = None
            return
        import threading

        def _persist() -> None:
            try:
                persist_store(self)
            except OSError:
                # Background persistence is best-effort: a full disk or
                # revoked permission must never fail the query that
                # triggered it.  The next process retries.
                pass

        thread = threading.Thread(
            target=_persist, name="repro-store-persist", daemon=True
        )
        self._persist_thread = thread
        thread.start()

    def wait_for_persist(self, timeout: float | None = None) -> None:
        """Block until a background persist (if any) finished."""
        thread = self._persist_thread
        if thread is not None and thread is not True:
            thread.join(timeout)

    def _charge(self, key, blocks: SampleBlocks) -> None:
        from repro.store.persist import residency_ledger

        residency_ledger().charge(self, key, blocks.nbytes())

    def _touch(self, key) -> None:
        from repro.store.persist import residency_ledger

        residency_ledger().touch(self, key)

    def _evict_resident(self, key) -> None:
        """Drop one built block set (ledger spill callback).

        Persisted stores re-serve the blocks as mmap views on the next
        request; unpersisted ones rebuild from the region objects.  The
        dataset-level zone map survives union eviction -- it is small
        and plan-time pruning depends on it.
        """
        from repro.store.persist import UNION_KEY

        if key == UNION_KEY:
            self._union = None
        else:
            self._samples.pop(key, None)
        self.blocks_evicted += 1
        _PROCESS_COUNTERS["blocks_evicted"] += 1

    # -- block access ---------------------------------------------------------

    def blocks(self, sample) -> SampleBlocks:
        """The (memoised) :class:`SampleBlocks` of one member sample."""
        blocks = self._samples.get(sample.id)
        if blocks is None:
            blocks = self._mapped_blocks(sample.id, len(sample.regions))
            if blocks is None:
                blocks = SampleBlocks(
                    sample.id, sample.regions, self.bin_size
                )
                self.blocks_built += 1
                _PROCESS_COUNTERS["blocks_built"] += 1
                self._charge(sample.id, blocks)
                self._samples[sample.id] = blocks
                self._schedule_persist()
            else:
                self._samples[sample.id] = blocks
        else:
            self._touch(sample.id)
        return blocks

    def union_blocks(self) -> SampleBlocks:
        """Blocks over *all* regions of the dataset (DIFFERENCE masks)."""
        from repro.store.persist import UNION_KEY

        if self._union is None:
            union = self._mapped_blocks(
                None, self._dataset.region_count()
            )
            if union is None:
                regions = [
                    region
                    for sample in self._dataset
                    for region in sample.regions
                ]
                union = SampleBlocks(None, regions, self.bin_size)
                self.blocks_built += 1
                _PROCESS_COUNTERS["blocks_built"] += 1
                self._charge(UNION_KEY, union)
                self._union = union
                self._schedule_persist()
            else:
                self._union = union
        else:
            self._touch(UNION_KEY)
        return self._union

    def zone_map(self) -> ZoneMap:
        """The dataset-level zone map (union of all samples)."""
        if self._zone_map is None:
            self._zone_map = self.union_blocks().zone_map
        return self._zone_map

    def partitions(self) -> int:
        """Occupied (chromosome, bin) partitions across the dataset."""
        return self.zone_map().partitions()

    def resident_bytes(self) -> int:
        """Bytes of block arrays currently materialised by this store.

        Memory-mapped blocks count zero real bytes here: their pages
        belong to the OS page cache, not this process's working set.
        """
        import numpy as _np

        total = 0
        candidates = list(self._samples.values())
        if self._union is not None:
            candidates.append(self._union)
        for blocks in candidates:
            for block in blocks.chroms.values():
                base = block.starts
                while isinstance(getattr(base, "base", None), _np.ndarray):
                    base = base.base
                if isinstance(base, _np.memmap):
                    continue
                total += blocks.nbytes()
                break
        return total

    def stats(self) -> dict:
        """Observability snapshot for bench reporting and ``repro info``."""
        persisted = self._persisted_store()
        return {
            "blocks_built": self.blocks_built,
            "blocks_mapped": self.blocks_mapped,
            "blocks_evicted": self.blocks_evicted,
            "resident_bytes": self.resident_bytes(),
            "persisted": (
                str(persisted.directory) if persisted is not None else None
            ),
        }

    def digest(self) -> str:
        """Content digest over schema, samples, metadata and regions.

        Deliberately excludes the dataset *name*: operators rename
        results freely and a rename does not change content, so
        fingerprint-keyed caches stay valid across renames.

        Computed straight from the region objects -- never from blocks --
        because the digest *keys* the persisted store: looking a store up
        must not first build the blocks the lookup exists to avoid.

        Recipe v3 feeds coordinates and numeric attribute columns to the
        hash as raw fixed-width bytes (with an explicit per-value type
        tag, so ``1`` and ``1.0`` stay distinct) instead of per-region
        formatted strings: digesting is on the cold critical path of
        every fingerprinted plan, and ``repr`` of a float costs more
        than the rest of a region's hashing combined.  Every variable
        length field is length-prefixed, which keeps the encoding
        injective.
        """
        if self._digest is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(b"repro.store.digest.v3;")
            schema = self._dataset.schema
            for definition in schema:
                h.update(f"{definition.name}:{definition.type.name};".encode())
            for sample in self._dataset:
                h.update(f"#{sample.id}".encode())
                for attribute, value in sorted(
                    (str(a), str(v))
                    for __, a, v in sample.meta.triples(sample.id)
                ):
                    h.update(f"@{attribute}={value};".encode())
                regions = sample.regions
                count = len(regions)
                h.update(f"|regions:{count};".encode())
                if not count:
                    continue
                try:
                    coordinates = (
                        np.fromiter(
                            (r.left for r in regions), np.int64, count
                        ).tobytes(),
                        np.fromiter(
                            (r.right for r in regions), np.int64, count
                        ).tobytes(),
                    )
                except OverflowError:  # coordinates beyond int64
                    coordinates = (
                        ";".join(
                            f"{r.left}-{r.right}" for r in regions
                        ).encode(),
                    )
                for piece in coordinates:
                    h.update(piece)
                _update_strings(h, [r.chrom for r in regions])
                _update_strings(h, [r.strand for r in regions])
                rows = [r.values for r in regions]
                widths = set(map(len, rows))
                if len(widths) == 1:
                    width = widths.pop()
                    h.update(f"|values:{width};".encode())
                    for index in range(width):
                        _update_column(
                            h, [row[index] for row in rows], count
                        )
                else:
                    # Ragged value tuples (only possible with validation
                    # off): fall back to exhaustive per-region hashing.
                    h.update(b"|values:ragged;")
                    h.update(";".join(map(repr, rows)).encode())
            self._digest = h.hexdigest()
        return self._digest
