"""Plan-fingerprint result cache: reuse operator results across runs.

Physical plan nodes carry a *fingerprint* -- a digest of the operator
kind, its resolved parameters and the content digests of everything
below it (:func:`repro.gmql.lang.physical.plan_program` computes them
bottom-up).  Two plan nodes with the same fingerprint are guaranteed to
produce the same dataset, so the interpreter can serve the second one
from this process-wide LRU cache instead of running the kernel.

The cache is content-addressed: source-dataset digests (see
:meth:`repro.store.columnar.DatasetStore.digest`) anchor every
fingerprint, so editing a dataset changes the key and stale results are
never served.  Hit/miss/eviction counters feed ``ExecutionContext``
metrics, ``repro explain --analyze`` and the ``repro bench`` harness.
"""

from __future__ import annotations

import os
from collections import OrderedDict

#: Default number of cached operator results kept by the global cache.
DEFAULT_CAPACITY = 64


def cache_capacity_from_env(default: int = DEFAULT_CAPACITY) -> int:
    """Capacity from ``REPRO_RESULT_CACHE`` (entries; 0 disables)."""
    raw = os.environ.get("REPRO_RESULT_CACHE", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(0, value)


def plan_token(obj) -> str:
    """A stable, content-based token for plan parameters.

    Predicates, aggregates, genometric conditions and accumulation
    bounds are plain value objects; walking their instance state
    recursively gives a deterministic signature without each class
    having to implement one.  Unknown objects fall back to ``repr``,
    which is stable for everything the compiler produces.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return repr(obj)
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(plan_token(item) for item in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(plan_token(item) for item in obj)) + "}"
    if isinstance(obj, dict):
        items = sorted(
            (plan_token(key), plan_token(value))
            for key, value in obj.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    state = _instance_state(obj)
    if state is not None:
        return f"{type(obj).__name__}({plan_token(state)})"
    return repr(obj)


def _instance_state(obj) -> dict | None:
    """Instance attributes of a value object, or ``None`` for exotica."""
    if hasattr(obj, "__dict__"):
        return dict(vars(obj))
    slots: dict = {}
    for klass in type(obj).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if hasattr(obj, name):
                slots[name] = getattr(obj, name)
    return slots or None


class ResultCache:
    """A size-bounded LRU of ``fingerprint -> Dataset`` entries."""

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = (
            capacity if capacity is not None else cache_capacity_from_env()
        )
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str):
        """The cached dataset for *key*, or ``None`` (recency updated)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value) -> None:
        """Insert (or refresh) an entry, evicting the least recent."""
        if self.capacity <= 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict:
        """Plain-dict counter snapshot (bench/CLI reporting)."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


_GLOBAL_CACHE: ResultCache | None = None


def result_cache() -> ResultCache:
    """The process-wide result cache (created on first use)."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = ResultCache()
    return _GLOBAL_CACHE


def reset_result_cache(capacity: int | None = None) -> ResultCache:
    """Replace the global cache (benchmarks and tests isolate with this)."""
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = ResultCache(capacity)
    return _GLOBAL_CACHE
