"""Plan-fingerprint result cache: reuse operator results across runs.

Physical plan nodes carry a *fingerprint* -- a digest of the operator
kind, its resolved parameters and the content digests of everything
below it (:func:`repro.gmql.lang.physical.plan_program` computes them
bottom-up).  Two plan nodes with the same fingerprint are guaranteed to
produce the same dataset, so the interpreter can serve the second one
from this process-wide LRU cache instead of running the kernel.

The cache is content-addressed: source-dataset digests (see
:meth:`repro.store.columnar.DatasetStore.digest`) anchor every
fingerprint, so editing a dataset changes the key and stale results are
never served.  Hit/miss/eviction counters feed ``ExecutionContext``
metrics, ``repro explain --analyze`` and the ``repro bench`` harness.

With a *directory* configured (``REPRO_RESULT_CACHE_DIR``, defaulting to
``<store root>/results`` when a persistent store root is active) every
entry is additionally pickled to disk, so warm results survive process
restarts: a fresh process misses in memory, loads the pickled dataset,
and serves the hit without running a single kernel.  Content addressing
makes the files immortal -- they are only ever rewritten with identical
bytes -- and atomic rename keeps concurrent processes safe.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict

#: Default number of cached operator results kept by the global cache.
DEFAULT_CAPACITY = 64


def cache_capacity_from_env(default: int = DEFAULT_CAPACITY) -> int:
    """Capacity from ``REPRO_RESULT_CACHE`` (entries; 0 disables)."""
    raw = os.environ.get("REPRO_RESULT_CACHE", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(0, value)


def cache_directory_from_env() -> str | None:
    """Resolve the on-disk result-cache directory, or ``None``.

    ``REPRO_RESULT_CACHE_DIR`` wins; otherwise entries live beside the
    persistent store (``<store root>/results``) whenever a store root is
    configured -- the "persistent service" arrangement where both block
    segments and warm results survive restarts together.
    """
    raw = os.environ.get("REPRO_RESULT_CACHE_DIR", "").strip()
    if raw:
        return raw
    from repro.store.persist import store_root

    root = store_root()
    if root:
        return os.path.join(root, "results")
    return None


def plan_token(obj) -> str:
    """A stable, content-based token for plan parameters.

    Predicates, aggregates, genometric conditions and accumulation
    bounds are plain value objects; walking their instance state
    recursively gives a deterministic signature without each class
    having to implement one.  Unknown objects fall back to ``repr``,
    which is stable for everything the compiler produces.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return repr(obj)
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(plan_token(item) for item in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(plan_token(item) for item in obj)) + "}"
    if isinstance(obj, dict):
        items = sorted(
            (plan_token(key), plan_token(value))
            for key, value in obj.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    state = _instance_state(obj)
    if state is not None:
        return f"{type(obj).__name__}({plan_token(state)})"
    return repr(obj)


def _instance_state(obj) -> dict | None:
    """Instance attributes of a value object, or ``None`` for exotica."""
    if hasattr(obj, "__dict__"):
        return dict(vars(obj))
    slots: dict = {}
    for klass in type(obj).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if hasattr(obj, name):
                slots[name] = getattr(obj, name)
    return slots or None


class ResultCache:
    """A size-bounded LRU of ``fingerprint -> Dataset`` entries.

    With a *directory*, entries are also pickled to disk on ``put`` and
    in-memory misses consult the files before giving up -- the second
    cache level that survives restarts.  Memory eviction never removes
    files (they back the next process's warm start); ``clear`` does.

    The cache is thread-safe: a long-lived query server runs many
    queries against one process-wide instance concurrently, and an
    unguarded ``OrderedDict`` would corrupt its recency order (or lose
    entries mid-``move_to_end``) under interleaved get/put/evict.  One
    re-entrant lock serialises every mutation; disk writes stay inside
    it so two threads never race the same ``.tmp`` file (the atomic
    rename already protects separate *processes*).
    """

    def __init__(
        self, capacity: int | None = None, directory: str | None = None
    ) -> None:
        self.capacity = (
            capacity if capacity is not None else cache_capacity_from_env()
        )
        self.directory = (
            directory if directory is not None else cache_directory_from_env()
        )
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_stores = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def _path(self, key: str) -> str:
        # Fingerprints are hex digests, but hash defensively so any
        # plan-token ever used as a key still maps to a safe filename.
        name = hashlib.blake2b(key.encode(), digest_size=16).hexdigest()
        return os.path.join(self.directory, f"{name}.result")

    def _load(self, key: str):
        """A disk entry for *key*, or ``None`` (corruption tolerated)."""
        if self.directory is None:
            return None
        try:
            with open(self._path(key), "rb") as handle:
                return pickle.load(handle)
        except Exception:
            # Missing file is the common case; a truncated or
            # unreadable one degrades to a recompute, never an error.
            return None

    def _persist(self, key: str, value) -> None:
        """Pickle *value* beside the store (atomic, best-effort)."""
        if self.directory is None:
            return
        path = self._path(key)
        if os.path.exists(path):
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            tmp = f"{path}.tmp-{os.getpid()}"
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # Full disk or permission loss: the in-memory cache still
            # works, only restart warmth is lost.
            return
        self.disk_stores += 1

    def get(self, key: str):
        """The cached dataset for *key*, or ``None`` (recency updated)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._load(key)
                if entry is None:
                    self.misses += 1
                    return None
                self.disk_hits += 1
                if self.capacity > 0:
                    self._entries[key] = entry
                    self._entries.move_to_end(key)
                    while len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
                        self.evictions += 1
                self.hits += 1
                return entry
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, value) -> None:
        """Insert (or refresh) an entry, evicting the least recent."""
        with self._lock:
            if self.capacity <= 0:
                return
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._persist(key, value)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (disk files included) and reset the counters."""
        with self._lock:
            self._entries.clear()
            if self.directory is not None and os.path.isdir(self.directory):
                for name in os.listdir(self.directory):
                    if name.endswith(".result"):
                        try:
                            os.unlink(os.path.join(self.directory, name))
                        except OSError:  # pragma: no cover - concurrent clear
                            pass
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.disk_hits = 0
            self.disk_stores = 0

    def stats(self) -> dict:
        """Plain-dict counter snapshot (bench/CLI reporting)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "disk_hits": self.disk_hits,
                "disk_stores": self.disk_stores,
                "directory": self.directory,
            }


_GLOBAL_CACHE: ResultCache | None = None
_GLOBAL_CACHE_LOCK = threading.Lock()


def result_cache() -> ResultCache:
    """The process-wide result cache (created on first use)."""
    global _GLOBAL_CACHE
    with _GLOBAL_CACHE_LOCK:
        if _GLOBAL_CACHE is None:
            _GLOBAL_CACHE = ResultCache()
        return _GLOBAL_CACHE


def reset_result_cache(
    capacity: int | None = None, directory: str | None = None
) -> ResultCache:
    """Replace the global cache (benchmarks and tests isolate with this).

    Disk entries of the previous cache are untouched: the fresh cache
    resolves its own directory and will re-serve them on miss, which is
    exactly the restart-survival behaviour being modelled.
    """
    global _GLOBAL_CACHE
    with _GLOBAL_CACHE_LOCK:
        _GLOBAL_CACHE = ResultCache(capacity, directory)
        return _GLOBAL_CACHE
