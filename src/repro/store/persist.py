"""Disk-native persistence for the columnar store: persist once, mmap forever.

Everything in :mod:`repro.store.columnar` used to live and die with one
process: every run rebuilt :class:`~repro.store.columnar.SampleBlocks`
from region objects, every worker received a copy, and a dataset larger
than RAM was simply fatal.  This module gives the store a disk-native
representation so blocks are **built once, persisted, and memory-mapped
by every later consumer** -- the storage-centric system design the
paper's repository abstraction (sections 3-4) assumes:

* :func:`persist_store` writes one content-addressed directory per
  ``(dataset digest, bin size)`` under a *store root*:
  ``<root>/<digest>-b<bin>/`` holding a single ``segments.bin`` with
  every per-chromosome column (coordinates, strands, row index, the
  derived sorted views, zone-map bins) 64-byte aligned, plus a
  ``MANIFEST.json`` sidecar carrying the versioned header, the schema,
  per-chromosome segment descriptors and zone-map scalars.  Writes are
  atomic (write into a ``.tmp-`` sibling, then ``os.rename``), so a
  reader never observes a half-written store and concurrent writers
  race harmlessly (content-addressing makes their outputs identical).
* :class:`PersistedStore` opens such a directory: the manifest is
  parsed once, ``segments.bin`` is mapped once via ``np.memmap``, and
  each chromosome's columns become zero-copy views into the map --
  nothing is read from disk until a kernel actually touches a page.
* :func:`mmap_descriptor` / :func:`open_segment` are the handle
  protocol: an array that is a view into a persisted segment can be
  described as ``(path, offset, shape, dtype)`` and re-opened by any
  process, which is how :class:`repro.store.shm.ArrayShipper` ships
  disk-resident blocks to workers for free.
* :class:`ResidencyLedger` enforces the block-residency budget: bytes
  of *in-memory built* blocks are charged against a process-wide LRU
  budget and the least-recently-used blocks are evicted (spilled) when
  the budget would overflow -- datasets larger than RAM degrade to
  re-loading instead of OOMing.  Memory-mapped blocks are never
  charged: the page cache already evicts them for free.

The store root resolves from ``REPRO_STORE_DIR`` (or
:func:`set_store_root`, used by the CLI ``--store-dir`` flag); without a
root every code path behaves exactly as before -- purely in-memory.

This module is the *only* place allowed to construct ``np.memmap`` /
``mmap.mmap`` objects (``benchmarks/lint_repo.py`` enforces the ban
elsewhere), so segment lifecycles stay in one auditable file.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import weakref
from collections import OrderedDict
from pathlib import Path

import numpy as np

#: Format identifier and version written into every manifest.  Readers
#: reject anything else and fall back to an in-memory build, so the
#: layout can evolve without ever serving stale bytes.
STORE_FORMAT = "repro-columnar-store"
STORE_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"
SEGMENTS_NAME = "segments.bin"

#: Manifest key of the dataset-union blocks (DIFFERENCE masks).  Real
#: sample keys are stringified integers, so this can never collide.
UNION_KEY = "__union__"

#: Segment alignment: every column starts on a 64-byte boundary so any
#: dtype view is aligned and cache lines are not shared across columns.
ALIGNMENT = 64

#: The columns persisted per (sample, chromosome) block.  ``starts`` /
#: ``stops`` / ``index`` / ``sorted_*`` / ``left_*`` / ``zero_positions``
#: / ``bins`` are int64; ``strands`` is int8.  Derived views are
#: persisted too: the cold build pays the sorts once so warm opens skip
#: them entirely *and* probe-side kernels ship pure mmap handles.
BLOCK_COLUMNS = (
    "starts",
    "stops",
    "strands",
    "index",
    "sorted_starts",
    "sorted_stops",
    "left_order",
    "left_stops",
    "zero_positions",
    "bins",
)

#: Magic prefix of staged-result spill files (see
#: :mod:`repro.repository.staging`): 8 magic bytes then two little-endian
#: uint64 section lengths (metadata, regions).
BLOB_MAGIC = b"RSTAGE1\0"
BLOB_HEADER = struct.Struct("<8sQQ")


# -- store root resolution ------------------------------------------------------

_CONFIGURED_ROOT: str | None = None
_CONFIGURED_SYNC: bool | None = None


def set_store_root(path: str | None, sync: bool | None = None) -> None:
    """Configure the process-wide store root (overrides the environment).

    The CLI ``--store-dir`` flag lands here.  *sync*, when given, also
    fixes the persist mode: ``True`` persists synchronously on first
    build (short-lived CLI processes must not exit mid-background-write),
    ``False`` forces background persistence, ``None`` leaves the
    ``REPRO_STORE_SYNC`` environment default in charge.
    """
    global _CONFIGURED_ROOT, _CONFIGURED_SYNC
    _CONFIGURED_ROOT = str(path) if path else None
    _CONFIGURED_SYNC = sync


def store_root_from_env() -> str | None:
    """The ``REPRO_STORE_DIR`` override, if any."""
    raw = os.environ.get("REPRO_STORE_DIR", "").strip()
    return raw or None


def store_root() -> str | None:
    """The active store root: configured value, then ``REPRO_STORE_DIR``."""
    if _CONFIGURED_ROOT is not None:
        return _CONFIGURED_ROOT
    return store_root_from_env()


def persist_sync_default() -> bool:
    """Whether persistence should run synchronously by default.

    ``REPRO_STORE_SYNC=1`` (or a ``set_store_root(..., sync=True)``)
    makes the first in-memory build block until segments are on disk --
    what short-lived processes and deterministic tests want.  The
    default is background persistence: queries never wait on the disk.
    """
    if _CONFIGURED_SYNC is not None:
        return _CONFIGURED_SYNC
    return persist_sync_from_env()


def persist_sync_from_env() -> bool:
    """Whether ``REPRO_STORE_SYNC`` asks for synchronous persistence."""
    return os.environ.get("REPRO_STORE_SYNC", "").strip() in (
        "1", "true", "yes", "on"
    )


def store_directory(root: str | os.PathLike, digest: str, bin_size: int) -> Path:
    """The content-addressed directory of one persisted store."""
    return Path(root) / f"{digest}-b{int(bin_size)}"


# -- segment writing ------------------------------------------------------------


class _SegmentWriter:
    """Appends aligned arrays to one open segment file.

    ``write`` returns the JSON-serialisable descriptor
    ``[offset, count, dtype]`` recorded in the manifest.
    """

    def __init__(self, handle) -> None:
        self._handle = handle
        self._offset = 0

    def write(self, array: np.ndarray) -> list:
        array = np.ascontiguousarray(array)
        padding = (-self._offset) % ALIGNMENT
        if padding:
            self._handle.write(b"\0" * padding)
            self._offset += padding
        descriptor = [self._offset, int(array.size), array.dtype.str]
        self._handle.write(array.tobytes())
        self._offset += array.nbytes
        return descriptor


def _write_blocks(writer: _SegmentWriter, blocks) -> dict:
    """Serialise one :class:`SampleBlocks` into the segment file.

    Accessing the derived properties (``sorted_starts``...) here forces
    their computation -- deliberate: the cold build pays every sort
    once, and warm opens inherit them as plain segment views.
    """
    chroms = {}
    for chrom, block in blocks.chroms.items():
        entry = blocks.zone_map.entries[chrom]
        chroms[chrom] = {
            "max_width": block.max_width,
            "zone": {
                "count": entry.count,
                "min_start": entry.min_start,
                "max_start": entry.max_start,
                "min_stop": entry.min_stop,
                "max_stop": entry.max_stop,
            },
            "columns": {
                "starts": writer.write(block.starts),
                "stops": writer.write(block.stops),
                "strands": writer.write(block.strands),
                "index": writer.write(block.index),
                "sorted_starts": writer.write(block.sorted_starts),
                "sorted_stops": writer.write(block.sorted_stops),
                "left_order": writer.write(block.left_order),
                "left_stops": writer.write(block.left_stops),
                "zero_positions": writer.write(block.zero_positions),
                "bins": writer.write(entry.bins),
            },
        }
    return {"n_regions": blocks.n_regions, "chroms": chroms}


def persist_store(store) -> Path | None:
    """Write *store*'s blocks to its root; returns the final directory.

    Content-addressed and atomic: segments and manifest are written into
    a ``.tmp-`` sibling which is then renamed into place.  If another
    process (or thread) wins the rename race its output is byte-wise
    interchangeable, so the loser just discards its temporary directory.
    Samples whose blocks are not already memoised are built one at a
    time and dropped immediately, so persisting a dataset never needs
    the whole dataset's blocks in memory at once.

    Returns ``None`` when the store has no root configured.
    """
    from repro.store.columnar import SampleBlocks

    root = store.root
    if root is None:
        return None
    dataset = store._dataset
    final = store_directory(root, store.digest(), store.bin_size)
    if (final / MANIFEST_NAME).is_file():
        return final
    final.parent.mkdir(parents=True, exist_ok=True)
    tmp = final.parent / (
        f".tmp-{final.name}-{os.getpid()}-{threading.get_ident()}"
    )
    tmp.mkdir()
    try:
        samples = {}
        with open(tmp / SEGMENTS_NAME, "wb") as handle:
            writer = _SegmentWriter(handle)
            for sample in dataset:
                blocks = store._samples.get(sample.id)
                if blocks is None or _is_mapped(blocks):
                    blocks = SampleBlocks(
                        sample.id, sample.regions, store.bin_size
                    )
                samples[str(sample.id)] = _write_blocks(writer, blocks)
            union = store._union
            if union is None or _is_mapped(union):
                union = SampleBlocks(
                    None,
                    [r for sample in dataset for r in sample.regions],
                    store.bin_size,
                )
            samples[UNION_KEY] = _write_blocks(writer, union)
        manifest = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "digest": store.digest(),
            "bin_size": store.bin_size,
            "segments": SEGMENTS_NAME,
            "schema": [
                {"name": d.name, "type": d.type.name}
                for d in dataset.schema
            ],
            "samples": samples,
        }
        with open(tmp / MANIFEST_NAME, "w") as handle:
            json.dump(manifest, handle, sort_keys=True)
        try:
            os.rename(tmp, final)
        except OSError:
            # Lost the race: an identical store already landed.
            if not (final / MANIFEST_NAME).is_file():
                raise
        return final
    finally:
        if tmp.is_dir():
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)


def _is_mapped(blocks) -> bool:
    """True when *blocks* is already served from persisted segments."""
    for block in blocks.chroms.values():
        return isinstance(block.starts, np.memmap) or isinstance(
            getattr(block.starts, "base", None), np.memmap
        )
    return False


# -- opening persisted stores ---------------------------------------------------


class PersistedStore:
    """One opened store directory: parsed manifest + lazily mapped segments.

    ``sample_blocks`` reconstructs :class:`SampleBlocks` whose arrays are
    zero-copy views into the single ``segments.bin`` memory map; pages
    fault in only when a kernel touches them, so opening a terabyte
    store costs a manifest parse and one ``mmap`` call.
    """

    def __init__(self, directory: Path, manifest: dict) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self.bin_size = int(manifest["bin_size"])
        self._map: np.memmap | None = None

    @classmethod
    def open(
        cls, root: str | os.PathLike, digest: str, bin_size: int
    ) -> "PersistedStore | None":
        """Open the persisted store for ``(digest, bin_size)``, or ``None``.

        Any problem -- missing directory, unreadable or mis-versioned
        manifest, digest mismatch -- degrades to ``None``: the caller
        rebuilds in memory and (eventually) re-persists.
        """
        directory = store_directory(root, digest, bin_size)
        path = directory / MANIFEST_NAME
        try:
            with open(path) as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            manifest.get("format") != STORE_FORMAT
            or manifest.get("version") != STORE_VERSION
            or manifest.get("digest") != digest
            or manifest.get("bin_size") != bin_size
        ):
            return None
        if not (directory / manifest.get("segments", SEGMENTS_NAME)).is_file():
            return None
        return cls(directory, manifest)

    @property
    def segments_path(self) -> Path:
        return self.directory / self.manifest.get("segments", SEGMENTS_NAME)

    def _memmap(self) -> np.memmap:
        if self._map is None:
            self._map = np.memmap(self.segments_path, dtype=np.uint8, mode="r")
        return self._map

    def _view(self, descriptor: list) -> np.ndarray:
        offset, count, dtype = descriptor
        dtype = np.dtype(dtype)
        raw = self._memmap()[offset: offset + count * dtype.itemsize]
        return raw.view(dtype)

    def sample_blocks(self, key, n_regions: int | None = None):
        """Blocks of one sample (or :data:`UNION_KEY`) as segment views.

        Returns ``None`` when the manifest has no such sample or its
        recorded region count disagrees with *n_regions* (a defensive
        impossibility under content addressing, but cheap to check).
        """
        from repro.store.columnar import (
            ChromBlock,
            SampleBlocks,
            ZoneEntry,
            ZoneMap,
        )

        entry = self.manifest["samples"].get(
            UNION_KEY if key is None else str(key)
        )
        if entry is None:
            return None
        if n_regions is not None and entry["n_regions"] != n_regions:
            return None
        chroms: dict = {}
        zone_map = ZoneMap(self.bin_size)
        for chrom, info in entry["chroms"].items():
            columns = info["columns"]
            block = ChromBlock(
                chrom,
                self._view(columns["starts"]),
                self._view(columns["stops"]),
                self._view(columns["index"]),
                self._view(columns["strands"]),
            )
            block._sorted_starts = self._view(columns["sorted_starts"])
            block._sorted_stops = self._view(columns["sorted_stops"])
            block._left_order = self._view(columns["left_order"])
            block._left_stops = self._view(columns["left_stops"])
            block._zero_positions = self._view(columns["zero_positions"])
            block._max_width = int(info["max_width"])
            chroms[chrom] = block
            zone_map.entries[chrom] = ZoneEntry.from_stats(
                chrom,
                bins=self._view(columns["bins"]),
                **info["zone"],
            )
        return SampleBlocks.from_parts(
            None if key is None else key,
            entry["n_regions"],
            chroms,
            zone_map,
        )


def open_store(
    root: str | os.PathLike, digest: str, bin_size: int
) -> PersistedStore | None:
    """Convenience alias for :meth:`PersistedStore.open`."""
    return PersistedStore.open(root, digest, bin_size)


# -- the mmap handle protocol ---------------------------------------------------


def mmap_descriptor(array: np.ndarray) -> tuple | None:
    """``(path, offset, shape, dtype)`` when *array* views a segment file.

    Walks the ``base`` chain to the owning ``np.memmap``; returns
    ``None`` for ordinary in-memory arrays, non-contiguous views, or
    anonymous maps.  The descriptor plus :func:`open_segment` is enough
    for any process to rebuild the exact view without copying a byte --
    the zero-cost shipping handle of
    :class:`repro.store.shm.ArrayShipper`.
    """
    if not isinstance(array, np.ndarray) or array.nbytes == 0:
        return None
    if not array.flags.c_contiguous:
        return None
    base = array
    # Stop at the deepest *ndarray*: an np.memmap's own ``base`` is the
    # raw ``mmap.mmap`` buffer, one step past where we want to land.
    while isinstance(getattr(base, "base", None), np.ndarray):
        base = base.base
    if not isinstance(base, np.memmap):
        return None
    filename = getattr(base, "filename", None)
    if filename is None:
        return None
    offset = (
        array.__array_interface__["data"][0]
        - base.__array_interface__["data"][0]
        + int(base.offset)
    )
    if offset < 0:
        return None
    return (str(filename), int(offset), array.shape, array.dtype.str)


#: Worker-side memo of opened segment maps.  Segment files are immutable
#: once renamed into place (content addressing), so a map stays valid for
#: the worker's lifetime and repeated morsels attach for free.
_OPENED_MAPS: dict = {}


def open_segment(path: str, offset: int, shape, dtype) -> np.ndarray:
    """Re-open the view described by an mmap handle (worker side)."""
    mapped = _OPENED_MAPS.get(path)
    if mapped is None:
        mapped = np.memmap(path, dtype=np.uint8, mode="r")
        _OPENED_MAPS[path] = mapped
    dtype = np.dtype(dtype)
    count = int(np.prod(shape)) if shape else 1
    raw = mapped[offset: offset + count * dtype.itemsize]
    return raw.view(dtype).reshape(shape)


def close_opened_segments() -> None:
    """Drop the worker-side segment memo (tests and long-lived services)."""
    _OPENED_MAPS.clear()


# -- staged-blob helpers (used by repository staging) ---------------------------


def atomic_write_blob(path: str | os.PathLike, sections: tuple) -> None:
    """Write a staged blob ``(meta, regions)`` with header, atomically."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta, regions = sections
    tmp = path.parent / f".tmp-{path.name}-{os.getpid()}-{threading.get_ident()}"
    with open(tmp, "wb") as handle:
        handle.write(BLOB_HEADER.pack(BLOB_MAGIC, len(meta), len(regions)))
        handle.write(meta)
        handle.write(regions)
    os.replace(tmp, path)


def map_blob(path: str | os.PathLike) -> tuple | None:
    """Map a staged blob; returns ``(map, meta_len, region_len)``.

    The map is a read-only ``mmap.mmap`` whose payload starts right
    after the header; returns ``None`` when the file is missing,
    truncated or carries a foreign magic (caller rewrites it).
    """
    import mmap as _mmap

    try:
        handle = open(path, "rb")
    except OSError:
        return None
    with handle:
        try:
            mapped = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
        except (OSError, ValueError):  # empty or unmappable
            return None
    if len(mapped) < BLOB_HEADER.size:
        mapped.close()
        return None
    magic, meta_len, region_len = BLOB_HEADER.unpack_from(mapped, 0)
    if (
        magic != BLOB_MAGIC
        or BLOB_HEADER.size + meta_len + region_len != len(mapped)
    ):
        mapped.close()
        return None
    return (mapped, meta_len, region_len)


# -- the block-residency budget -------------------------------------------------


def residency_budget_from_env(default: int | None = None) -> int | None:
    """Budget bytes from ``REPRO_STORE_BUDGET_MB`` (``None`` = unlimited)."""
    raw = os.environ.get("REPRO_STORE_BUDGET_MB", "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    if value <= 0:
        return default
    return int(value * 1024 * 1024)


class ResidencyLedger:
    """Process-wide LRU accounting of in-memory built block bytes.

    Every :class:`~repro.store.columnar.DatasetStore` charges the bytes
    of blocks it *builds* (never blocks it maps -- the page cache evicts
    those for free).  When the budget would overflow, least-recently-
    used blocks are evicted from their owning stores: persisted blocks
    come back as mmap views, unpersisted ones are rebuilt on demand.
    Either way the process spills instead of OOMing.
    """

    def __init__(self, budget_bytes: int | None = None) -> None:
        self.budget_bytes = (
            budget_bytes
            if budget_bytes is not None
            else residency_budget_from_env()
        )
        #: ``(store id, block key) -> (weakref to store, nbytes)``, in
        #: least-recently-used-first order.
        self._entries: OrderedDict = OrderedDict()
        self.evictions = 0

    def resident_bytes(self) -> int:
        return sum(nbytes for __, nbytes in self._entries.values())

    def charge(self, store, key, nbytes: int) -> None:
        """Account a freshly built block set and enforce the budget."""
        token = (id(store), key)
        self._entries[token] = (weakref.ref(store), int(nbytes))
        self._entries.move_to_end(token)
        self._enforce(exempt=token)

    def touch(self, store, key) -> None:
        """Refresh a block set's recency (no-op when not charged)."""
        token = (id(store), key)
        if token in self._entries:
            self._entries.move_to_end(token)

    def discharge(self, store, key) -> None:
        """Drop a charge without eviction (owner released it itself)."""
        self._entries.pop((id(store), key), None)

    def _enforce(self, exempt) -> None:
        if self.budget_bytes is None:
            return
        while self.resident_bytes() > self.budget_bytes:
            victim = next(
                (token for token in self._entries if token != exempt), None
            )
            if victim is None:
                # Only the block just charged remains; it must stay
                # resident for the caller to compute on.
                return
            ref, __ = self._entries.pop(victim)
            store = ref()
            if store is not None:
                store._evict_resident(victim[1])
            self.evictions += 1


_LEDGER: ResidencyLedger | None = None


def residency_ledger() -> ResidencyLedger:
    """The process-wide residency ledger (created on first use)."""
    global _LEDGER
    if _LEDGER is None:
        _LEDGER = ResidencyLedger()
    return _LEDGER


def reset_residency_ledger(
    budget_bytes: int | None = None,
) -> ResidencyLedger:
    """Replace the global ledger (tests and benchmarks isolate with this)."""
    global _LEDGER
    _LEDGER = ResidencyLedger(budget_bytes)
    return _LEDGER
