"""Zero-copy array shipping for the parallel backend.

The parallel engine fans genometric work out to ``ProcessPoolExecutor``
workers.  Pickling every ``ChromBlock`` array into each task payload
copies the same experiment columns once per (pair, chromosome) morsel;
for store-backed plans the columns are immutable numpy arrays, so they
can instead be placed once into ``multiprocessing.shared_memory``
segments and referenced by name from every task.

The protocol is deliberately tiny:

* the **parent** owns an :class:`ArrayShipper`.  ``ship(array)`` returns
  a picklable *handle* -- ``("mmap", path, offset, shape, dtype)`` when
  the array is already a view into a persisted store segment (see
  :func:`repro.store.persist.mmap_descriptor`; the worker re-maps the
  immutable file, so nothing is copied at all), else
  ``("shm", name, shape, dtype)`` backed by a segment the shipper
  created, or ``("raw", array)`` when shipping falls back to pickle
  (shared memory unavailable, disabled via ``REPRO_SHM=0`` / engine
  config, or the array is too small to be worth a segment).  Handles
  are memoised per array object, so the same experiment block shipped
  to forty morsels costs one segment.
* **workers** call :func:`materialise` on the handle list, compute over
  the returned views, and invoke the release callback before returning.
  Attached segments are closed but never unlinked by workers (on Python
  3.11 an attach does not register with the resource tracker, and
  unlinking is the creator's job).
* the parent's ``close()`` -- wired into the backend lifecycle -- closes
  and **unlinks** every segment it created.  ``close()`` is idempotent
  and also runs on interpreter teardown as a last resort.

Segment names are system-assigned (``SharedMemory(create=True)`` with no
explicit name), which makes collisions impossible across concurrent
sessions; the handle carries the name, shape and dtype so the worker can
rebuild the exact view.

This module is the *only* place allowed to construct ``SharedMemory``
objects (``benchmarks/lint_repo.py`` enforces the ban elsewhere).
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

# Arrays below this many bytes ride the pickle anyway: a segment costs a
# file descriptor plus two syscalls, which beats pickling only once the
# payload is non-trivial.
MIN_SHARED_BYTES = 2048


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` is usable here."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - baked into CPython >= 3.8
        return False
    return True


def shm_enabled(config_flag: Any = None) -> bool:
    """Resolve the shared-memory gate: config flag, then environment.

    ``REPRO_SHM=0`` force-disables shipping regardless of config; a
    *config_flag* of ``False`` (engine config ``use_shm``) does the same.
    """
    if shm_disabled_from_env():
        return False
    if config_flag is not None and not config_flag:
        return False
    return shared_memory_available()


def shm_disabled_from_env() -> bool:
    """Whether ``REPRO_SHM=0`` force-disables shared-memory shipping."""
    return os.environ.get("REPRO_SHM", "").strip() == "0"


class ArrayShipper:
    """Parent-side owner of shared-memory segments for numpy arrays.

    Create one per parallel backend, ``ship()`` arrays into task
    payloads, and ``close()`` when the backend closes -- segments live
    exactly as long as the pool that reads them.
    """

    def __init__(self, enabled: bool | None = None) -> None:
        self.enabled = shm_enabled() if enabled is None else bool(enabled)
        self._segments: list = []
        self._memo: dict = {}
        self.bytes_shared = 0
        self.bytes_pickled = 0
        self.bytes_mapped = 0

    def ship(self, array: np.ndarray) -> tuple:
        """Return a picklable handle for *array* (segment or raw)."""
        key = id(array)
        cached = self._memo.get(key)
        if cached is not None:
            return cached[1]
        handle = self._ship_uncached(array)
        self._memo[key] = (array, handle)
        return handle

    def _ship_uncached(self, array: np.ndarray) -> tuple:
        if array.nbytes:
            # Disk-resident arrays ship as ``(path, offset, shape,
            # dtype)`` descriptors regardless of the shm gate: the file
            # is immutable and already on disk, so the handle costs
            # nothing and the worker's page cache attach is free.
            from repro.store.persist import mmap_descriptor

            descriptor = mmap_descriptor(array)
            if descriptor is not None:
                self.bytes_mapped += array.nbytes
                return ("mmap", *descriptor)
        if (
            not self.enabled
            or array.nbytes == 0  # SharedMemory rejects zero-size segments
            or array.nbytes < MIN_SHARED_BYTES
            or not array.flags.c_contiguous
        ):
            self.bytes_pickled += array.nbytes
            return ("raw", array)
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(
                create=True, size=array.nbytes
            )
        except OSError:
            # Out of fds or /dev/shm space: degrade to pickle, once the
            # budget is exhausted it will likely stay exhausted.
            self.enabled = False
            self.bytes_pickled += array.nbytes
            return ("raw", array)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[:] = array
        del view
        self._segments.append(segment)
        self.bytes_shared += array.nbytes
        return ("shm", segment.name, array.shape, array.dtype.str)

    def segment_names(self) -> list:
        """Names of the segments currently owned (for tests/metrics)."""
        return [segment.name for segment in self._segments]

    def close(self) -> None:
        """Close and unlink every owned segment.  Idempotent."""
        segments, self._segments = self._segments, []
        self._memo.clear()
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ArrayShipper":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


def materialise(handles: list) -> tuple:
    """Worker-side: turn shipped handles back into arrays.

    Returns ``(arrays, release)``.  The arrays aligned with *handles*
    are real numpy views over attached segments (or the pickled arrays
    for raw handles); *release* drops the views and closes the
    attachments and must be called before the task returns -- after it,
    the shared views are invalid.
    """
    arrays: list = []
    attached: list = []
    for handle in handles:
        kind = handle[0]
        if kind == "raw":
            arrays.append(handle[1])
            continue
        if kind == "mmap":
            from repro.store.persist import open_segment

            _, path, offset, shape, dtype = handle
            arrays.append(open_segment(path, offset, shape, dtype))
            continue
        _, name, shape, dtype = handle
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=name)
        attached.append(segment)
        arrays.append(np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf))

    def release() -> None:
        arrays.clear()
        while attached:
            attached.pop().close()

    return arrays, release


def segment_exists(name: str) -> bool:
    """True when a shared-memory segment named *name* still exists.

    Test helper: proves ``close()`` really unlinked what it created.
    """
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True
