"""Vectorised event-sweep coverage kernels: COVER family + DIFFERENCE.

The accumulation-index operators of the paper's region calculus (COVER,
FLAT, SUMMIT, HISTOGRAM) and the overlap test of DIFFERENCE all reduce
to one primitive: the *step-function coverage profile* of a set of
intervals.  This module computes that profile with a single numpy
event sweep -- +1 at every region start, -1 at every region end,
positions collapsed with ``np.unique`` and depths accumulated with
``cumsum`` -- and serves every variant from it with array arithmetic.

The kernels consume the **persisted sorted columns** of
:class:`~repro.store.columnar.ChromBlock` (``sorted_starts``,
``sorted_stops``, ``zero_positions``, and ``left_stops`` for FLAT), so
a memory-mapped store pays no re-sort: zero-length regions are removed
from the sorted multisets with a vectorised multiset subtraction that
preserves order.  Like :mod:`repro.store.join_kernels`, everything here
operates on plain numpy arrays -- the same functions run in the parent
process (columnar backend) and inside pool workers over shared-memory
or mmap views (parallel backend).

Semantics pinned by the differential suite
(``tests/store/test_cover_kernels.py``):

* zero-length regions contribute **no events**: they neither add depth
  nor introduce profile breakpoints (the naive sweep skips them before
  building its event dict);
* positions where the net event delta is zero (one region ends exactly
  where another starts) **do** stay as breakpoints, so HISTOGRAM emits
  two adjacent equal-depth segments there, exactly like the naive
  profile;
* DIFFERENCE overlap honours the half-open :meth:`GenomicRegion.
  overlaps` matrix for zero-length features: a point probe hits only
  strict containers, a point reference is hit only by strict
  containers, and coincident points never overlap.
"""

from __future__ import annotations

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


def multiset_subtract(
    sorted_values: np.ndarray, sorted_removals: np.ndarray
) -> np.ndarray:
    """Drop one occurrence per removal from a sorted array (order kept).

    *sorted_removals* must be a sub-multiset of *sorted_values*; both
    ascending.  Which physical occurrence of a duplicated value is
    dropped is immaterial -- equal values are interchangeable.
    """
    if sorted_removals.size == 0:
        return sorted_values
    base = np.searchsorted(sorted_values, sorted_removals, side="left")
    run_starts = np.flatnonzero(
        np.concatenate(
            ([True], sorted_removals[1:] != sorted_removals[:-1])
        )
    )
    counts = np.diff(np.concatenate((run_starts, [sorted_removals.size])))
    within_run = np.arange(
        sorted_removals.size, dtype=np.int64
    ) - np.repeat(run_starts, counts)
    keep = np.ones(sorted_values.size, dtype=bool)
    keep[base + within_run] = False
    return sorted_values[keep]


def wide_sorted_events(
    sorted_starts: np.ndarray,
    sorted_stops: np.ndarray,
    zero_positions: np.ndarray,
) -> tuple:
    """``(starts, stops)`` of the wide regions only, both still sorted.

    A zero-length region at ``p`` contributes ``p`` once to the sorted
    starts *and* once to the sorted stops, so removing the
    ``zero_positions`` multiset from each side leaves exactly the wide
    regions' event coordinates -- without touching the unsorted pair
    columns and without re-sorting anything.
    """
    return (
        multiset_subtract(sorted_starts, zero_positions),
        multiset_subtract(sorted_stops, zero_positions),
    )


def sweep_profile(starts: np.ndarray, stops: np.ndarray) -> tuple:
    """The coverage step function of wide intervals: ``(bounds, depths)``.

    ``bounds`` holds every distinct event position ascending;
    ``depths[i]`` is the accumulation index on
    ``[bounds[i], bounds[i+1])`` (the final entry is always 0).  Counts
    travel through ``np.bincount`` float weights, exact below ``2**53``
    events.
    """
    if starts.size == 0:
        return _EMPTY, _EMPTY
    positions = np.concatenate((starts, stops))
    deltas = np.ones(positions.size, dtype=np.int64)
    deltas[starts.size:] = -1
    bounds, inverse = np.unique(positions, return_inverse=True)
    net = np.bincount(
        inverse, weights=deltas, minlength=bounds.size
    ).astype(np.int64)
    return bounds, np.cumsum(net)


def _in_range(depths: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Per-segment mask: accumulation within ``[max(lo, 1), hi]``."""
    segment_depths = depths[:-1]
    return (segment_depths >= max(lo, 1)) & (segment_depths <= hi)


def _runs_of(mask: np.ndarray) -> tuple:
    """``(run_starts, run_ends)`` segment indices of True runs in *mask*."""
    padded = np.concatenate(([False], mask, [False]))
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    return edges[0::2], edges[1::2]


def profile_histogram(
    bounds: np.ndarray, depths: np.ndarray, lo: int, hi: int
) -> tuple:
    """HISTOGRAM rows ``(lefts, rights, depths)``: in-range segments."""
    if bounds.size == 0:
        return _EMPTY, _EMPTY, _EMPTY
    idx = np.flatnonzero(_in_range(depths, lo, hi))
    return bounds[idx], bounds[idx + 1], depths[idx]


def profile_cover(
    bounds: np.ndarray, depths: np.ndarray, lo: int, hi: int
) -> tuple:
    """COVER rows ``(lefts, rights, max_depths)``: maximal in-range runs.

    Runs break wherever the in-range mask does; a zero-depth gap between
    qualifying segments fails the (clamped) lower bound, which is
    exactly the naive run-merger's ``left != previous.right`` break.
    """
    if bounds.size == 0:
        return _EMPTY, _EMPTY, _EMPTY
    mask = _in_range(depths, lo, hi)
    run_starts, run_ends = _runs_of(mask)
    if run_starts.size == 0:
        return _EMPTY, _EMPTY, _EMPTY
    segment_depths = depths[:-1]
    slices = np.empty(2 * run_starts.size, dtype=np.int64)
    slices[0::2] = run_starts
    slices[1::2] = run_ends
    if slices[-1] == segment_depths.size:
        # reduceat indices must stay in bounds; the final run then
        # reduces to the end of the array, which is what we want.
        slices = slices[:-1]
    max_depths = np.maximum.reduceat(segment_depths, slices)[0::2]
    return bounds[run_starts], bounds[run_ends], max_depths


def profile_summits(
    bounds: np.ndarray, depths: np.ndarray, lo: int, hi: int
) -> tuple:
    """SUMMIT rows ``(lefts, rights, depths)``: local maxima within runs.

    A segment is a summit when its left neighbour is either outside the
    run or strictly lower, and its right neighbour is either outside
    the run or not higher -- the naive ``_summits`` rule, evaluated
    with shifted comparisons (profile segments are always contiguous,
    so "outside the run" is exactly "neighbour not in range").
    """
    if bounds.size == 0:
        return _EMPTY, _EMPTY, _EMPTY
    mask = _in_range(depths, lo, hi)
    segment_depths = depths[:-1]
    prev_in = np.zeros_like(mask)
    prev_in[1:] = mask[:-1]
    next_in = np.zeros_like(mask)
    next_in[:-1] = mask[1:]
    prev_depth = np.zeros_like(segment_depths)
    prev_depth[1:] = segment_depths[:-1]
    next_depth = np.zeros_like(segment_depths)
    next_depth[:-1] = segment_depths[1:]
    summit = (
        mask
        & (~prev_in | (prev_depth < segment_depths))
        & (~next_in | (next_depth <= segment_depths))
    )
    idx = np.flatnonzero(summit)
    return bounds[idx], bounds[idx + 1], segment_depths[idx]


def flat_extents(
    pair_starts: np.ndarray,
    pair_stops: np.ndarray,
    cover_lefts: np.ndarray,
    cover_rights: np.ndarray,
) -> tuple:
    """FLAT extents: each cover run widened to its contributing regions.

    For a run ``[L, R)`` FLAT takes the min start / max stop over the
    original wide regions overlapping it.  Two monotone scans replace
    the naive all-regions pass:

    * among regions with ``start < R`` (a ``searchsorted`` prefix of the
      start-sorted pairs), the maximum stop is a prefix-max -- and its
      achiever always overlaps the run, because the run has depth >= 1,
      so *some* region covers its first base and any prefix-max stop
      exceeds ``L``;
    * symmetrically, the minimum start among ``stop > L`` (a suffix of
      the stop-sorted pairs) is a suffix-min whose achiever starts at
      or before ``L`` < ``R``.

    Zero-length regions can never widen a FLAT extent (their min/max
    contributions are no-ops inside the half-open overlap test), so the
    pair arrays hold wide regions only.
    """
    if cover_lefts.size == 0:
        return cover_lefts, cover_rights
    by_start = np.argsort(pair_starts, kind="stable")
    starts_sorted = pair_starts[by_start]
    prefix_max_stop = np.maximum.accumulate(pair_stops[by_start])
    k = np.searchsorted(starts_sorted, cover_rights, side="left")
    flat_rights = np.maximum(cover_rights, prefix_max_stop[k - 1])
    by_stop = np.argsort(pair_stops, kind="stable")
    stops_sorted = pair_stops[by_stop]
    suffix_min_start = np.minimum.accumulate(
        pair_starts[by_stop][::-1]
    )[::-1]
    j = np.searchsorted(stops_sorted, cover_lefts, side="right")
    flat_lefts = np.minimum(cover_lefts, suffix_min_start[j])
    return flat_lefts, flat_rights


def chrom_cover_rows(parts: list, lo: int, hi: int, variant: str) -> tuple:
    """One chromosome's COVER-family rows ``(lefts, rights, depths)``.

    *parts* holds, per contributing sample block, the tuple
    ``(sorted_starts, sorted_stops, zero_positions)`` -- with
    ``left_stops`` appended for FLAT, whose extents need the original
    (start, stop) pairing that the left-order columns preserve.  All
    outputs are freshly allocated arrays (safe to return from workers
    holding shared-memory views).
    """
    starts_list, stops_list = [], []
    for part in parts:
        wide_starts, wide_stops = wide_sorted_events(
            part[0], part[1], part[2]
        )
        starts_list.append(wide_starts)
        stops_list.append(wide_stops)
    starts = np.concatenate(starts_list)
    stops = np.concatenate(stops_list)
    bounds, depths = sweep_profile(starts, stops)
    if variant == "HISTOGRAM":
        return profile_histogram(bounds, depths, lo, hi)
    if variant == "SUMMIT":
        return profile_summits(bounds, depths, lo, hi)
    lefts, rights, max_depths = profile_cover(bounds, depths, lo, hi)
    if variant != "FLAT" or lefts.size == 0:
        return lefts, rights, max_depths
    pair_starts = np.concatenate(
        [part[0][part[3] > part[0]] for part in parts]
    )
    pair_stops = np.concatenate(
        [part[3][part[3] > part[0]] for part in parts]
    )
    flat_lefts, flat_rights = flat_extents(
        pair_starts, pair_stops, lefts, rights
    )
    return flat_lefts, flat_rights, max_depths


def block_cover_columns(block, variant: str, with_pairs: bool = False
                        ) -> tuple:
    """The persisted columns :func:`chrom_cover_rows` needs from *block*.

    *with_pairs* appends ``left_stops`` (stops in start-sorted order,
    pairing element-wise with ``sorted_starts``) even for non-FLAT
    variants -- :func:`prune_dead_bins` needs the pairing to test each
    region's bin span.
    """
    columns = (block.sorted_starts, block.sorted_stops,
               block.zero_positions)
    if variant == "FLAT" or with_pairs:
        columns += (block.left_stops,)
    return columns


#: Bin-span ceiling above which dead-bin pruning is skipped: the per-bin
#: count pass allocates O(span) arrays, which for a pathological sparse
#: chromosome (two regions a gigabase apart, small bins) would dwarf the
#: sweep it is trying to shortcut.
PRUNE_MAX_BINS = 1_000_000


def prune_dead_bins(parts: list, lo: int, bin_size: int, variant: str
                    ) -> tuple:
    """Drop regions that cannot reach a COVER threshold of ``max(lo, 1)``.

    Returns ``(parts, pruned_bins)`` where *pruned_bins* counts occupied
    zone-map bins eliminated from the sweep.  For every bin ``b`` over
    ``[b * bin_size, (b+1) * bin_size)`` the number of wide regions
    overlapping it is computed exactly from the combined sorted event
    arrays -- ``#(start < bin_end) - #(stop <= bin_start)`` (every
    region with ``stop <= bin_start`` also has ``start < bin_end``, so
    the difference counts exactly the overlappers).  That count bounds
    the accumulation index anywhere in the bin, so a bin counting below
    the clamped lower threshold is *dead*: no position in it can ever
    qualify.  A region whose whole bin span is dead can then be dropped
    outright -- it cannot intersect any qualifying segment, cannot
    change depths outside its own extent, and (for FLAT) cannot widen a
    qualifying run it does not overlap.

    Inputs must carry the paired ``left_stops`` column
    (``block_cover_columns(..., with_pairs=True)``); outputs keep that
    column only for FLAT, matching what :func:`chrom_cover_rows` and the
    parallel morsel kernels consume.  Zero-length regions are dropped
    from pruned parts entirely (they contribute no events).
    """

    def arity(columns):
        return columns if variant == "FLAT" else [
            part[:3] for part in columns
        ]

    clamped = max(lo, 1)
    if clamped < 2 or not bin_size or bin_size <= 0:
        return arity(parts), 0
    starts_list, stops_list = [], []
    for part in parts:
        wide_starts, wide_stops = wide_sorted_events(
            part[0], part[1], part[2]
        )
        starts_list.append(wide_starts)
        stops_list.append(wide_stops)
    starts = np.sort(np.concatenate(starts_list))
    stops = np.sort(np.concatenate(stops_list))
    if starts.size == 0:
        return arity(parts), 0
    first_bin = int(starts[0] // bin_size)
    last_bin = int((stops[-1] - 1) // bin_size)
    span = last_bin - first_bin + 1
    if span > PRUNE_MAX_BINS:
        return arity(parts), 0
    edges = np.arange(
        first_bin, first_bin + span + 1, dtype=np.int64
    ) * bin_size
    counts = (
        np.searchsorted(starts, edges[1:], side="left")
        - np.searchsorted(stops, edges[:-1], side="right")
    )
    pruned = int(np.count_nonzero((counts > 0) & (counts < clamped)))
    if pruned == 0:
        return arity(parts), 0
    dead = np.flatnonzero(counts < clamped) + first_bin
    out = []
    for part in parts:
        pair_starts, pair_stops = part[0], part[3]
        wide = pair_stops > pair_starts
        wide_starts = pair_starts[wide]
        wide_stops = pair_stops[wide]
        lo_bins = wide_starts // bin_size
        hi_bins = (wide_stops - 1) // bin_size
        dead_in_span = (
            np.searchsorted(dead, hi_bins, side="right")
            - np.searchsorted(dead, lo_bins, side="left")
        )
        keep = dead_in_span < (hi_bins - lo_bins + 1)
        kept_starts = wide_starts[keep]
        kept_stops = wide_stops[keep]
        pruned_part = (kept_starts, np.sort(kept_stops), _EMPTY)
        if variant == "FLAT":
            pruned_part += (kept_stops,)
        out.append(pruned_part)
    return out, pruned


def group_cover_rows(blocks_list: list, lo: int, hi: int, variant: str,
                     bin_size: int | None = None, on_pruned=None):
    """Yield ``(chrom, lefts, rights, depths)`` for one COVER group.

    *blocks_list* holds each contributing sample's
    :class:`~repro.store.columnar.SampleBlocks`; chromosomes come out
    in genome order, chromosomes with no qualifying rows are skipped
    (matching the naive iterators).

    With a *bin_size* and a lower threshold of at least 2, dead zone-map
    bins are pruned from each chromosome's sweep first
    (:func:`prune_dead_bins`); *on_pruned* is called with the count of
    occupied bins eliminated.
    """
    from repro.gdm.region import chromosome_sort_key

    prune = bin_size is not None and max(lo, 1) >= 2
    per_chrom: dict = {}
    for blocks in blocks_list:
        for chrom, block in blocks.chroms.items():
            per_chrom.setdefault(chrom, []).append(
                block_cover_columns(block, variant, with_pairs=prune)
            )
    for chrom in sorted(per_chrom, key=chromosome_sort_key):
        parts = per_chrom[chrom]
        if prune:
            parts, pruned = prune_dead_bins(parts, lo, bin_size, variant)
            if pruned and on_pruned is not None:
                on_pruned(pruned)
        lefts, rights, row_depths = chrom_cover_rows(
            parts, lo, hi, variant
        )
        if lefts.size:
            yield chrom, lefts, rights, row_depths


# -- DIFFERENCE served from the sweep profile -----------------------------------


def coverage_runs(bounds: np.ndarray, depths: np.ndarray) -> tuple:
    """Maximal positive-depth intervals ``(run_starts, run_ends)``.

    Runs are disjoint and separated by genuine zero-depth gaps, so both
    arrays are strictly increasing -- the precondition of the
    ``searchsorted`` overlap test in :func:`overlap_any_mask`.
    """
    if bounds.size == 0:
        return _EMPTY, _EMPTY
    run_starts, run_ends = _runs_of(depths[:-1] > 0)
    return bounds[run_starts], bounds[run_ends]


def mask_chrom_events(block) -> tuple:
    """DIFFERENCE probe-side arrays for one chromosome block.

    Returns ``(wide_starts, wide_stops, run_starts, run_ends,
    zero_positions)``: the sorted wide event arrays, the merged
    positive-depth runs of their profile, and the (sorted, distinct
    occurrences kept) zero-length positions.  Computed once per
    chromosome and reused across every left-side sample.
    """
    wide_starts, wide_stops = wide_sorted_events(
        block.sorted_starts, block.sorted_stops, block.zero_positions
    )
    bounds, depths = sweep_profile(wide_starts, wide_stops)
    run_starts, run_ends = coverage_runs(bounds, depths)
    return (wide_starts, wide_stops, run_starts, run_ends,
            block.zero_positions)


def overlap_any_mask(
    ref_starts: np.ndarray,
    ref_stops: np.ndarray,
    wide_starts: np.ndarray,
    wide_stops: np.ndarray,
    run_starts: np.ndarray,
    run_ends: np.ndarray,
    zero_positions: np.ndarray,
) -> np.ndarray:
    """Per-reference boolean: overlaps *any* probe region.

    Exact :meth:`GenomicRegion.overlaps` semantics, case by case:

    * **wide reference vs wide probes** -- the reference intersects the
      probes' coverage iff it intersects a merged positive-depth run:
      ``#(run_start < ref_stop) > #(run_end <= ref_start)``;
    * **wide reference vs point probes** -- a zero-length probe ``q``
      overlaps only strict containers (``left < q < right``), counted
      on the sorted ``zero_positions``;
    * **point reference vs wide probes** -- merged runs are *not*
      enough: a point on the internal seam of two adjacent probes
      (``[0, 5)`` + ``[5, 10)``, point at 5) lies inside the merged run
      but overlaps neither.  The crossing count
      ``#(start < p) - #(stop <= p)`` over the raw wide events counts
      exactly the probes that strictly contain ``p``;
    * **point reference vs point probes** -- never overlap, coincident
      or not (``p < p`` fails on both sides of the half-open test).
    """
    out = np.empty(ref_starts.size, dtype=bool)
    wide = ref_stops > ref_starts
    starts_w = ref_starts[wide]
    stops_w = ref_stops[wide]
    hit = np.searchsorted(
        run_starts, stops_w, side="left"
    ) > np.searchsorted(run_ends, starts_w, side="right")
    if zero_positions.size:
        hit |= np.searchsorted(
            zero_positions, stops_w, side="left"
        ) > np.searchsorted(zero_positions, starts_w, side="right")
    out[wide] = hit
    points = ref_starts[~wide]
    out[~wide] = (
        np.searchsorted(wide_starts, points, side="left")
        - np.searchsorted(wide_stops, points, side="right")
    ) > 0
    return out
