"""Execution context: tracing, metrics, deadlines and engine configuration.

One :class:`ExecutionContext` accompanies one query run.  The interpreter
opens a :class:`Span` per physical plan node, backends check the context
for cancellation before each kernel and account per-operator metrics, and
the CLI renders the resulting span tree for ``repro explain --analyze``.

The context is deliberately backend-agnostic: it carries no datasets and
no plan objects, only observability state and configuration (worker
count, arbitrary engine options), so it can be threaded through every
layer without creating import cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import ExecutionCancelled
from repro.resilience.clock import monotonic, perf_counter


def workers_from_env(default: int | None = None) -> int | None:
    """Worker count from ``REPRO_WORKERS`` (``None``/*default* when unset)."""
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 1 else default


def bin_size_from_env(default: int | None = None) -> int | None:
    """Partition bin size from ``REPRO_BIN_SIZE`` (positions per bin).

    Tunes zone-map/partition granularity the same way ``REPRO_WORKERS``
    tunes parallelism; ``None``/*default* when unset or invalid.
    """
    raw = os.environ.get("REPRO_BIN_SIZE", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 1 else default


def result_cache_from_env(default: bool = False) -> bool:
    """Whether ``REPRO_RESULT_CACHE_ENABLED`` turns the result cache on."""
    raw = os.environ.get("REPRO_RESULT_CACHE_ENABLED", "").strip().lower()
    if not raw:
        return default
    return raw in ("1", "true", "yes", "on")


@dataclass
class Span:
    """One timed region of execution, nested under its parent span."""

    label: str
    attributes: dict = field(default_factory=dict)
    children: list = field(default_factory=list)
    seconds: float = 0.0

    def annotate(self, **attributes) -> "Span":
        """Attach or update attributes (e.g. input/output cardinalities)."""
        self.attributes.update(attributes)
        return self

    def total_regions(self, key: str = "output_regions") -> int:
        """Convenience accessor for a cardinality attribute (0 when unset)."""
        return int(self.attributes.get(key, 0) or 0)

    def render(self, indent: int = 0) -> str:
        """Indented one-span-per-line rendering of this subtree."""
        parts = [f"{'  ' * indent}{self.label}  {self.seconds * 1000:.2f} ms"]
        interesting = {
            k: v for k, v in sorted(self.attributes.items()) if v is not None
        }
        if interesting:
            parts[0] += "  " + " ".join(
                f"{k}={v}" for k, v in interesting.items()
            )
        for child in self.children:
            parts.append(child.render(indent + 1))
        return "\n".join(parts)


class SpanTracer:
    """Collects a forest of nested spans for one query run."""

    def __init__(self) -> None:
        self.roots: list = []
        self._stack: list = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, label: str, **attributes):
        """Open a nested span; timing stops when the block exits."""
        span = Span(label, dict(attributes))
        (self._stack[-1].children if self._stack else self.roots).append(span)
        self._stack.append(span)
        started = perf_counter()
        try:
            yield span
        finally:
            span.seconds = perf_counter() - started
            self._stack.pop()

    def total_seconds(self) -> float:
        return sum(span.seconds for span in self.roots)

    def render(self) -> str:
        """The whole span forest as indented text."""
        return "\n".join(span.render() for span in self.roots)

    def iter_spans(self):
        """Depth-first iteration over every recorded span."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))


class MetricsRegistry:
    """Named counters and value distributions for one run."""

    def __init__(self) -> None:
        self._counters: dict = {}
        self._observations: dict = {}

    def increment(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record one sample of a value distribution (count/sum/min/max)."""
        stats = self._observations.get(name)
        if stats is None:
            self._observations[name] = [1, value, value, value]
        else:
            stats[0] += 1
            stats[1] += value
            stats[2] = min(stats[2], value)
            stats[3] = max(stats[3], value)

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """Plain-dict view: counters plus per-distribution summaries."""
        out = dict(self._counters)
        for name, (count, total, lo, hi) in self._observations.items():
            out[name] = {
                "count": count,
                "total": total,
                "min": lo,
                "max": hi,
                "mean": total / count,
            }
        return out


class ExecutionContext:
    """Everything one query run carries besides data: tracing, metrics,
    deadline/cancellation, and engine configuration.

    Parameters
    ----------
    timeout_seconds:
        Wall-clock budget; :meth:`check` raises
        :class:`~repro.errors.ExecutionCancelled` once it is exhausted.
    workers:
        Worker-process count for parallel kernels; defaults to the
        ``REPRO_WORKERS`` environment variable when set.
    bin_size:
        Genome partition granularity (positions per zone-map bin) used
        by the columnar store; defaults to ``REPRO_BIN_SIZE`` when set,
        otherwise the store's default.
    result_cache:
        Whether the interpreter may serve plan nodes from the
        process-wide fingerprint result cache; defaults to the
        ``REPRO_RESULT_CACHE_ENABLED`` environment variable (off when
        unset -- the CLI and the bench harness turn it on explicitly).
    config:
        Free-form engine options (forwarded to backends untouched).
    clock:
        Any object with a ``monotonic()`` method (e.g. a resilience
        :class:`~repro.resilience.clock.SimulatedClock`); defaults to
        real time.  Deadlines are measured against this clock, so a
        whole timeout scenario can run in virtual time.
    """

    def __init__(
        self,
        *,
        tracer: SpanTracer | None = None,
        metrics: MetricsRegistry | None = None,
        timeout_seconds: float | None = None,
        workers: int | None = None,
        bin_size: int | None = None,
        result_cache: bool | None = None,
        config: dict | None = None,
        clock=None,
    ) -> None:
        self.tracer = tracer or SpanTracer()
        self.metrics = metrics or MetricsRegistry()
        self.workers = workers if workers is not None else workers_from_env()
        self.bin_size = (
            bin_size if bin_size is not None else bin_size_from_env()
        )
        self.result_cache = (
            result_cache
            if result_cache is not None
            else result_cache_from_env()
        )
        self.config = dict(config or {})
        self._clock = clock
        self._deadline = (
            self._now() + timeout_seconds
            if timeout_seconds is not None
            else None
        )
        self._cancelled = False

    def _now(self) -> float:
        return self._clock.monotonic() if self._clock else monotonic()

    # -- cancellation / deadline ------------------------------------------------

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Request cooperative cancellation; kernels stop at the next check."""
        self._cancelled = True

    def remaining_seconds(self) -> float | None:
        """Seconds left before the deadline (``None`` without a deadline)."""
        if self._deadline is None:
            return None
        return self._deadline - self._now()

    def check(self) -> None:
        """Raise :class:`ExecutionCancelled` when cancelled or out of time."""
        if self._cancelled:
            raise ExecutionCancelled("query execution was cancelled")
        if self._deadline is not None and self._now() > self._deadline:
            raise ExecutionCancelled("query execution exceeded its deadline")

    # -- tracing ----------------------------------------------------------------

    def span(self, label: str, **attributes):
        """Open a span (checking cancellation first); context manager."""
        self.check()
        return self.tracer.span(label, **attributes)
