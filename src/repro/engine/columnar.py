"""The columnar backend: numpy kernels over cached store blocks.

Plays the part of the "vectorised cluster framework" in the paper's
section 4.2 comparison.  Hot kernels are vectorised and consume the
per-dataset columnar blocks (:meth:`Dataset.store`) instead of
rebuilding coordinate arrays from region objects on every operator:

* **MAP** -- COUNT-only aggregates use the two-``searchsorted`` counting
  identity (:func:`repro.store.count_overlaps_blocks`) with zone-map
  chromosome/bin pruning; every other registered aggregate runs on the
  overlap-pair kernel (:func:`repro.store.overlap_pairs`) with grouped
  ``reduceat``/sorted-prefix reductions.  Float SUM/AVG/STD reduce with
  the exact vectorised summation of :func:`repro.store.segment_fsum`
  (bit-identical to the ``math.fsum`` the naive aggregates are defined
  against, in any order), MEDIAN with sorted-rank selection, and BAG
  with a lexsort/dedup pass over a stringified column -- so the old
  per-group Python fallback survives only for genuinely unvectorisable
  inputs (``None``-bearing columns, ints beyond 2**52, ``-0.0``/NaN
  tie-sensitive MIN/MAX/MEDIAN, unregistered aggregates);
* **JOIN** -- every genometric condition (DLE/DGE/MD(k)/UP/DOWN) runs on
  the vectorised pair kernel (:func:`repro.store.join_pairs`):
  ``searchsorted`` candidate windows, strand-aware stream masks, and a
  per-anchor nearest-k selection, with zone-map pruning of anchor
  chromosomes the experiment provably cannot reach;
* **COVER/FLAT/SUMMIT/HISTOGRAM** -- the whole accumulation family is
  served from one event-sweep kernel
  (:mod:`repro.store.cover_kernels`): per chromosome, the persisted
  ``sorted_*`` columns become a +1/-1 event array, ``cumsum`` turns it
  into the step-function coverage profile, and each variant extracts
  its rows with array arithmetic (run extraction, ``reduceat`` maxima,
  shifted-comparison summits, prefix/suffix scans for FLAT extents);
* **DIFFERENCE** -- the right side's profile is swept once per
  chromosome into merged coverage runs; references are tested with
  ``searchsorted`` interval probes (crossing counts for zero-length
  references, strict-interior counts for zero-length probes), pruning
  zone-disjoint partitions;
* **SELECT** -- region predicates over fixed coordinates and numeric
  variable attributes evaluate as boolean array expressions over
  memoised column arrays, and conjunctive coordinate bounds prune whole
  chromosomes via the zone map.

Array building lives in :mod:`repro.store` only: with ``use_store:
False`` (or ``REPRO_STORE=0``) the kernels build *ephemeral*
:class:`~repro.store.SampleBlocks` per operator invocation instead of
memoised ones -- same kernels, no cross-operator reuse and no pruning
accounting -- which is what ``repro bench`` measures as the pre-store
baseline.  Metadata-centric operators fall back to the naive kernels:
backends differ only where vectorisation pays, which is itself a
faithful reproduction of how the Spark/Flink encodings share their
front end.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gdm import Dataset, GenomicRegion
from repro.intervals.coverage import CoverageSegment
from repro.engine.naive import NaiveBackend
from repro.gmql.aggregates import Avg, Bag, Count, Max, Median, Min, Std, Sum
from repro.gmql.genometric import Downstream, Upstream
from repro.gmql.operators.base import (
    build_result,
    group_samples,
    merged_metadata,
    sample_pairs,
    union_group_metadata,
)
from repro.gmql.predicates import (
    RegionAnd,
    RegionCompare,
    RegionNot,
    RegionOr,
)
from repro.store.columnar import (
    SampleBlocks,
    count_overlaps_blocks,
    depth_segments,
)
from repro.store.cover_kernels import (
    group_cover_rows,
    mask_chrom_events,
    overlap_any_mask,
)
from repro.store.exact_sum import segment_fsum
from repro.store.join_kernels import (
    group_offsets,
    join_pairs,
    overlap_pairs,
    segment_counts,
    segment_median_positions,
    segment_reduce,
)

#: Integer magnitudes above which vectorised int64 reductions could
#: overflow or lose exactness; columns exceeding it take the Python path.
_SAFE_INT_MAGNITUDE = 2**52


def coverage_segments_from_blocks(blocks_list: list):
    """Depth profile of a sample group straight from store blocks.

    Concatenates each chromosome's event arrays across the group's
    :class:`~repro.store.columnar.SampleBlocks` (dropping zero-length
    regions, which contribute no coverage) and sweeps them with the
    shared numpy kernel; yields :class:`CoverageSegment` in genome
    order.
    """
    from repro.gdm import chromosome_sort_key

    events: dict = {}
    for blocks in blocks_list:
        for chrom, block in blocks.chroms.items():
            wide = block.stops > block.starts
            if not wide.any():
                continue
            bucket = events.setdefault(chrom, ([], []))
            bucket[0].append(block.starts[wide])
            bucket[1].append(block.stops[wide])
    for chrom in sorted(events, key=chromosome_sort_key):
        starts_list, stops_list = events[chrom]
        starts = np.concatenate(starts_list)
        stops = np.concatenate(stops_list)
        for left, right, depth in depth_segments(chrom, starts, stops):
            yield CoverageSegment(chrom, left, right, depth)


def _conjuncts(predicate) -> list:
    """Flatten a predicate's top-level AND tree into its conjuncts."""
    if isinstance(predicate, RegionAnd):
        return _conjuncts(predicate.left) + _conjuncts(predicate.right)
    return [predicate]


def _chrom_provably_empty(conjuncts: list, entry) -> bool:
    """True when a zone entry proves no region there can satisfy SELECT.

    Only simple comparisons on the fixed coordinates participate; every
    other conjunct is ignored (pruning stays conservative).  *entry* is
    a :class:`repro.store.columnar.ZoneEntry`.
    """
    for node in conjuncts:
        if not isinstance(node, RegionCompare):
            continue
        attribute, op = node.attribute, node.operator
        if attribute in ("chrom", "chr"):
            target = str(node.value)
            if op == "==" and target != entry.chrom:
                return True
            if op == "!=" and target == entry.chrom:
                return True
            continue
        if attribute in ("left", "start", "right", "stop"):
            try:
                value = float(node.value)
            except (TypeError, ValueError):
                continue
            if attribute in ("left", "start"):
                low, high = entry.min_start, entry.max_start
            else:
                low, high = entry.min_stop, entry.max_stop
            if op == "<" and low >= value:
                return True
            if op == "<=" and low > value:
                return True
            if op == ">" and high <= value:
                return True
            if op == ">=" and high < value:
                return True
    return False


def _vectorise_predicate(predicate, schema, regions: list,
                         column_cache: dict | None = None):
    """Evaluate a region predicate as a boolean numpy array, or ``None``.

    Handles conjunction/disjunction/negation over comparisons on fixed
    coordinates and numeric variable attributes; anything else returns
    ``None`` and the caller falls back to per-region evaluation.

    *column_cache* (usually a store block's ``column_cache``) memoises
    the materialised attribute columns across operator invocations, so
    repeated predicates over one sample never rebuild arrays.
    """
    if not regions:
        return np.zeros(0, dtype=bool)

    columns: dict = column_cache if column_cache is not None else {}

    def column(name: str):
        if name in columns:
            return columns[name]
        if name in ("left", "start"):
            values = np.fromiter((r.left for r in regions), dtype=np.int64,
                                 count=len(regions))
        elif name in ("right", "stop"):
            values = np.fromiter((r.right for r in regions), dtype=np.int64,
                                 count=len(regions))
        elif name in ("chrom", "chr"):
            values = np.array([r.chrom for r in regions])
        elif name == "strand":
            values = np.array([r.strand for r in regions])
        elif name in schema:
            index = schema.index_of(name)
            attr_type = schema[name].type.name
            if attr_type in ("INT", "FLOAT"):
                values = np.array(
                    [
                        np.nan if r.values[index] is None else float(r.values[index])
                        for r in regions
                    ],
                    dtype=np.float64,
                )
            else:
                values = np.array(
                    ["" if r.values[index] is None else str(r.values[index])
                     for r in regions]
                )
        else:
            return None
        columns[name] = values
        return values

    def walk(node):
        if isinstance(node, RegionAnd):
            left, right = walk(node.left), walk(node.right)
            return None if left is None or right is None else left & right
        if isinstance(node, RegionOr):
            left, right = walk(node.left), walk(node.right)
            return None if left is None or right is None else left | right
        if isinstance(node, RegionNot):
            inner = walk(node.inner)
            return None if inner is None else ~inner
        if isinstance(node, RegionCompare):
            values = column(node.attribute)
            if values is None:
                return None
            target = node.value
            if np.issubdtype(values.dtype, np.number):
                try:
                    target = float(target)
                except (TypeError, ValueError):
                    return None
            else:
                target = str(target)
            if node.operator == "==":
                return values == target
            if node.operator == "!=":
                return values != target
            if node.operator == "<":
                return values < target
            if node.operator == "<=":
                return values <= target
            if node.operator == ">":
                return values > target
            if node.operator == ">=":
                return values >= target
            return None
        return None

    return walk(predicate)


# -- MAP aggregation over overlap pairs ---------------------------------------


def resolve_map_aggregates(aggregates, reference: Dataset,
                           experiment: Dataset) -> tuple:
    """Resolve MAP aggregate specs exactly like the naive operator.

    Returns ``(schema, resolved)`` with ``resolved`` a list of
    ``(aggregate, attr_index, input_type_name)`` -- *attr_index* is the
    experiment-schema column position (``None`` for COUNT) and the type
    name drives the exactness classification of the vector reductions.
    Raises the same :class:`EvaluationError`\\ s as the naive path for
    malformed specs.
    """
    from repro.errors import EvaluationError
    from repro.gdm import AttributeDef, INT
    from repro.gmql.aggregates import Aggregate

    resolved = []
    new_defs = []
    for out_name, (aggregate, attribute) in aggregates.items():
        if not isinstance(aggregate, Aggregate):
            raise EvaluationError(f"MAP: {out_name!r} needs an Aggregate")
        if aggregate.requires_attribute:
            if attribute is None:
                raise EvaluationError(
                    f"MAP: aggregate {aggregate.name} needs an experiment attribute"
                )
            index = experiment.schema.index_of(attribute)
            input_type = experiment.schema[attribute].type
        else:
            index, input_type = None, None
        resolved.append(
            (aggregate, index, input_type.name if input_type else None)
        )
        new_defs.append(
            AttributeDef(
                out_name,
                aggregate.result_type(input_type) if input_type else INT,
            )
        )
    return reference.schema.extend(*new_defs), resolved


def experiment_columns(regions: list, resolved: list) -> dict:
    """Materialise the experiment value columns the aggregates touch.

    Returns ``{attr_index: (raw_list, numeric_array_or_None, cache)}``;
    the numeric array exists only for clean INT/FLOAT columns (no
    ``None``), which is the precondition of every vectorised reduction.
    *cache* memoises per-column derivations (currently BAG's stringified
    column) across sample pairs.
    """
    columns: dict = {}
    for __, attr_index, type_name in resolved:
        if attr_index is None or attr_index in columns:
            continue
        raw = [region.values[attr_index] for region in regions]
        array = None
        if type_name in ("INT", "FLOAT") and not any(
            value is None for value in raw
        ):
            dtype = np.int64 if type_name == "INT" else np.float64
            try:
                array = np.asarray(raw, dtype=dtype)
            except (OverflowError, ValueError):
                array = None
        columns[attr_index] = (raw, array, {})
    return columns


def _column_all_floats(raw: list, cache: dict) -> bool:
    """Memoised "every value is a Python float" check for one column.

    The exact-fsum reductions are proven bit-identical against the naive
    ``math.fsum`` path only when the naive side sees floats too; a FLOAT
    column carrying stray ints would make the naive aggregate return an
    ``int`` where the kernel returns ``float``.
    """
    flag = cache.get("all_float")
    if flag is None:
        flag = all(isinstance(value, float) for value in raw)
        cache["all_float"] = flag
    return flag


def _bag_strings(raw: list, cache: dict):
    """Memoised stringified column for BAG, or ``None`` if unvectorisable.

    numpy ``<U`` comparison orders by code point exactly like Python
    ``str``, so a lexsort over this column reproduces the naive
    ``sorted(set(...))``.  Columns with missing values keep the Python
    path (BAG must filter them before stringifying).
    """
    if "bag_strings" not in cache:
        if any(value is None for value in raw):
            cache["bag_strings"] = None
        else:
            cache["bag_strings"] = np.array([str(value) for value in raw])
    return cache["bag_strings"]


def aggregate_segments(
    aggregate, type_name, column, e_rows: np.ndarray,
    ref_rows: np.ndarray, offsets: np.ndarray,
) -> list:
    """Per-reference aggregate values over grouped overlap pairs.

    *e_rows* are experiment sample positions aligned with the pairs,
    already in canonical ``(left, right, position)`` hit order within
    each reference; *offsets* is the CSR grouping from
    :func:`repro.store.group_offsets`.  Dispatches to bit-exact vector
    reductions where the classification allows, otherwise reduces each
    group with ``aggregate.compute`` over the canonically ordered Python
    values -- byte-identical to the naive operator either way.
    """
    counts = segment_counts(offsets)
    n = int(counts.size)
    empty = aggregate.compute([])
    if isinstance(aggregate, Count) and column is None:
        return [int(c) for c in counts.tolist()]

    raw, array, cache = column if column is not None else (None, None, None)
    if array is not None:
        gathered = array[e_rows]
        is_float = array.dtype.kind == "f"
        clean = True
        if is_float and gathered.size:
            # NaN poisons order-dependence; a -0.0/0.0 mix makes min/max
            # tie-resolution representation-dependent.  Both are rare --
            # take the Python path and stay byte-exact.
            clean = not bool(
                np.isnan(gathered).any()
                or ((gathered == 0) & np.signbit(gathered)).any()
            )
        safe_int = not is_float and (
            gathered.size == 0
            or int(np.abs(gathered).max()) < _SAFE_INT_MAGNITUDE
        )
        if isinstance(aggregate, (Min, Max)) and clean:
            how = "min" if isinstance(aggregate, Min) else "max"
            reduced = segment_reduce(gathered, offsets, how)
            cast = float if is_float else int
            return [
                cast(reduced[i]) if counts[i] else empty for i in range(n)
            ]
        if isinstance(aggregate, (Sum, Avg)) and safe_int:
            sums = segment_reduce(gathered, offsets, "sum")
            if isinstance(aggregate, Sum):
                return [
                    int(sums[i]) if counts[i] else empty for i in range(n)
                ]
            return [
                int(sums[i]) / int(counts[i]) if counts[i] else empty
                for i in range(n)
            ]
        if (
            isinstance(aggregate, (Sum, Avg, Std))
            and is_float
            and _column_all_floats(raw, cache)
        ):
            # segment_fsum == per-group math.fsum bit-for-bit (it raises
            # in parity too), which is the definition of the naive float
            # SUM/AVG/STD -- exactness without caring about pair order.
            sums = segment_fsum(gathered, offsets)
            if isinstance(aggregate, Sum):
                return [
                    float(sums[i]) if counts[i] else empty for i in range(n)
                ]
            if isinstance(aggregate, Avg):
                return [
                    float(sums[i]) / int(counts[i]) if counts[i] else empty
                    for i in range(n)
                ]
            means = sums / np.maximum(counts, 1)
            deviations = gathered - np.repeat(means, counts)
            with np.errstate(over="ignore", invalid="ignore"):
                # Square overflow -> inf and nan arithmetic match Python
                # float semantics; segment_fsum falls back to the
                # per-group fsum for those segments.
                squares = segment_fsum(deviations * deviations, offsets)
            out = []
            for i in range(n):
                count = int(counts[i])
                if not count:
                    out.append(empty)
                elif count == 1:
                    out.append(0.0)
                else:
                    out.append(math.sqrt(float(squares[i]) / count))
            return out
        if isinstance(aggregate, Median) and clean and (is_float or safe_int):
            ordered, lo, hi = segment_median_positions(
                gathered, ref_rows, offsets
            )
            out = []
            for i in range(n):
                count = int(counts[i])
                if not count:
                    out.append(empty)
                elif count % 2:
                    out.append(float(ordered[lo[i]]))
                elif is_float:
                    out.append((float(ordered[lo[i]]) + float(ordered[hi[i]])) / 2)
                else:
                    out.append((int(ordered[lo[i]]) + int(ordered[hi[i]])) / 2)
            return out

    if isinstance(aggregate, Bag) and raw is not None:
        strings = _bag_strings(raw, cache)
        if strings is not None:
            gathered_strings = strings[e_rows]
            order = np.lexsort((gathered_strings, ref_rows))
            groups_ordered = ref_rows[order]
            values_ordered = gathered_strings[order]
            keep = np.ones(order.size, dtype=bool)
            if order.size:
                keep[1:] = (values_ordered[1:] != values_ordered[:-1]) | (
                    groups_ordered[1:] != groups_ordered[:-1]
                )
            kept_groups = groups_ordered[keep]
            kept_values = values_ordered[keep].tolist()
            group_ids = np.arange(n, dtype=np.int64)
            lo = np.searchsorted(kept_groups, group_ids, side="left")
            hi = np.searchsorted(kept_groups, group_ids, side="right")
            return [
                " ".join(kept_values[lo[i]:hi[i]]) if counts[i] else empty
                for i in range(n)
            ]

    # Canonical-order Python reduction: exact for None-bearing columns,
    # huge-int SUM/AVG, -0.0/NaN tie-sensitive MIN/MAX/MEDIAN, and any
    # unregistered aggregate.
    gathered_raw = (
        [raw[i] for i in e_rows.tolist()] if raw is not None else None
    )
    bounds = offsets.tolist()
    out = []
    for i in range(n):
        if not counts[i]:
            out.append(empty)
        else:
            out.append(aggregate.compute(gathered_raw[bounds[i]:bounds[i + 1]]))
    return out


def map_pair_extras(
    ref_blocks: SampleBlocks, exp_blocks: SampleBlocks,
    columns: dict, resolved: list, use_store: bool,
) -> tuple:
    """Per-reference aggregate tuples for one (reference, experiment) pair.

    Returns ``(rows, pruned)``: *rows* is aligned with the reference
    sample's region order; *pruned* counts zone-pruned partitions (zero
    unless *use_store*).
    """
    empty_row = tuple(
        aggregate.compute([]) for aggregate, __, ___ in resolved
    )
    rows = [empty_row] * ref_blocks.n_regions
    pruned = 0
    for chrom, block in ref_blocks.chroms.items():
        exp_block = exp_blocks.block(chrom)
        if exp_block is None:
            if use_store:
                pruned += ref_blocks.zone_map.entry(chrom).partitions
            continue
        if use_store:
            ref_entry = ref_blocks.zone_map.entry(chrom)
            exp_entry = exp_blocks.zone_map.entry(chrom)
            if not ref_entry.window_overlaps(
                exp_entry.min_start, exp_entry.max_stop
            ):
                pruned += ref_entry.partitions
                continue
        ref_rows, e_pos = overlap_pairs(
            block.starts, block.stops,
            exp_block.sorted_starts, exp_block.left_stops,
        )
        columns_out = pair_group_columns(
            block, exp_block, ref_rows, e_pos, columns, resolved
        )
        positions = block.index.tolist()
        for local, values in enumerate(zip(*columns_out)):
            rows[positions[local]] = values
    return rows, pruned


def pair_group_columns(
    ref_block, exp_block, ref_rows: np.ndarray, e_pos: np.ndarray,
    columns: dict, resolved: list,
) -> list:
    """One aggregate-value list per resolved aggregate for a chrom block.

    *ref_rows*/*e_pos* come from :func:`repro.store.overlap_pairs` over
    the block pair; experiment positions are mapped back to sample
    order before gathering values.
    """
    offsets = group_offsets(ref_rows, len(ref_block))
    e_rows = exp_block.index[exp_block.left_order[e_pos]]
    return [
        aggregate_segments(
            aggregate, type_name, columns.get(attr_index),
            e_rows, ref_rows, offsets,
        )
        for aggregate, attr_index, type_name in resolved
    ]


def join_emitter(merged, output: str):
    """The JOIN output-region constructor for one (merged schema, output).

    Returns ``emit(anchor_region, experiment_region, gap) -> region | None``
    implementing the LEFT/RIGHT/INT/CAT coordinate options with the
    naive operator's strand-combination rules; shared by the columnar
    and parallel backends so materialisation semantics cannot drift.
    """
    from repro.gmql.operators.join import _combine_strand

    def emit(a, b, gap):
        values = merged.combine(a.values, b.values) + (gap,)
        if output == "LEFT":
            return GenomicRegion(a.chrom, a.left, a.right, a.strand, values)
        if output == "RIGHT":
            return GenomicRegion(b.chrom, b.left, b.right, b.strand, values)
        if output == "INT":
            left = max(a.left, b.left)
            right = min(a.right, b.right)
            if right <= left:
                return None
            return GenomicRegion(a.chrom, left, right,
                                 _combine_strand(a, b), values)
        return GenomicRegion(
            a.chrom, min(a.left, b.left), max(a.right, b.right),
            _combine_strand(a, b), values,
        )

    return emit


class ColumnarBackend(NaiveBackend):
    """Numpy-vectorised backend (falls back to naive where noted above)."""

    name = "columnar"

    def _blocks_of(self, store, sample, scratch: dict):
        """Store blocks when available, ephemeral blocks otherwise.

        *scratch* memoises ephemeral blocks for the duration of one
        operator invocation so a sample paired many times is still
        built once.
        """
        if store is not None:
            return store.blocks(sample)
        blocks = scratch.get(sample.id)
        if blocks is None:
            from repro.intervals.bins import DEFAULT_BIN_SIZE

            blocks = SampleBlocks(
                sample.id, sample.regions,
                self.store_bin_size() or DEFAULT_BIN_SIZE,
            )
            scratch[sample.id] = blocks
        return blocks

    # -- SELECT ----------------------------------------------------------------

    def run_select(self, plan, child: Dataset, semijoin_data):
        if plan.region_predicate is None:
            return super().run_select(plan, child, semijoin_data)

        def kernel():
            from repro.gmql.operators.select import SemiJoin

            semijoin = None
            if semijoin_data is not None:
                semijoin = SemiJoin(
                    plan.semijoin_attributes, semijoin_data, plan.semijoin_negated
                )
            use_store = self.use_store()
            store = self.dataset_store(child) if use_store else None
            conjuncts = _conjuncts(plan.region_predicate)

            def parts():
                for sample in child:
                    if plan.meta_predicate is not None and not plan.meta_predicate(
                        sample.meta
                    ):
                        continue
                    if semijoin is not None and not semijoin.admits(sample):
                        continue
                    blocks = store.blocks(sample) if store is not None else None
                    live = None
                    if blocks is not None and sample.regions:
                        dead_positions = []
                        pruned = 0
                        for chrom, entry in blocks.zone_map.entries.items():
                            if _chrom_provably_empty(conjuncts, entry):
                                pruned += entry.partitions
                                dead_positions.append(
                                    blocks.chroms[chrom].index
                                )
                        if dead_positions:
                            self.note_pruned(pruned)
                            live = np.ones(blocks.n_regions, dtype=bool)
                            live[np.concatenate(dead_positions)] = False
                            if not live.any():
                                yield ([], sample.meta,
                                       [(child.name, sample.id)])
                                continue
                    mask = _vectorise_predicate(
                        plan.region_predicate, child.schema, sample.regions,
                        column_cache=(
                            blocks.column_cache if blocks is not None else None
                        ),
                    )
                    if mask is None:
                        bound = plan.region_predicate.bind(child.schema)
                        if live is None:
                            regions = [r for r in sample.regions if bound(r)]
                        else:
                            regions = [
                                r
                                for r, keep in zip(sample.regions, live)
                                if keep and bound(r)
                            ]
                    else:
                        if live is not None:
                            mask = mask & live
                        regions = [
                            r for r, keep in zip(sample.regions, mask) if keep
                        ]
                    yield (regions, sample.meta, [(child.name, sample.id)])

            return build_result(
                "SELECT", f"SELECT({child.name})", child.schema, parts(),
                parameters="columnar",
            )

        return self.timed("SELECT", kernel)

    # -- MAP ---------------------------------------------------------------------

    def run_map(self, plan, reference: Dataset, experiment: Dataset):
        aggregates = plan.aggregates or {"count": (Count(), None)}
        only_counts = all(
            isinstance(aggregate, Count) and attribute is None
            for aggregate, attribute in aggregates.values()
        )
        if not only_counts and any(
            attribute is None and not isinstance(aggregate, Count)
            for aggregate, attribute in aggregates.values()
        ):
            # Attribute-free non-COUNT aggregates reduce over region
            # objects; only the naive kernel knows how.
            return super().run_map(plan, reference, experiment)
        if only_counts:
            return self._run_map_counts(plan, reference, experiment, aggregates)
        return self._run_map_pairs(plan, reference, experiment, aggregates)

    def _run_map_counts(self, plan, reference, experiment, aggregates):
        def kernel():
            from repro.gdm import AttributeDef, INT

            self.note_kernel("map.count")
            schema = reference.schema.extend(
                *(AttributeDef(name, INT) for name in aggregates)
            )
            use_store = self.use_store()
            ref_store = exp_store = None
            if use_store:
                bin_size = self.store_bin_size()
                ref_store = self.dataset_store(reference, bin_size)
                exp_store = self.dataset_store(experiment, bin_size)
            ref_scratch: dict = {}
            exp_scratch: dict = {}

            def parts():
                for ref_sample, exp_sample in sample_pairs(
                    reference, experiment, plan.joinby
                ):
                    counts, pruned = count_overlaps_blocks(
                        self._blocks_of(ref_store, ref_sample, ref_scratch),
                        self._blocks_of(exp_store, exp_sample, exp_scratch),
                    )
                    if use_store:
                        self.note_pruned(pruned)
                    width = len(aggregates)
                    regions = [
                        region.with_values(
                            region.values + (int(count),) * width
                        )
                        for region, count in zip(ref_sample.regions, counts)
                    ]
                    yield (
                        regions,
                        merged_metadata(ref_sample, exp_sample),
                        [
                            (reference.name, ref_sample.id),
                            (experiment.name, exp_sample.id),
                        ],
                    )

            return build_result(
                "MAP",
                f"MAP({reference.name},{experiment.name})",
                schema,
                parts(),
                parameters="columnar-count",
            )

        return self.timed("MAP", kernel)

    def _run_map_pairs(self, plan, reference, experiment, aggregates):
        def kernel():
            self.note_kernel("map.pairs")
            schema, resolved = resolve_map_aggregates(
                aggregates, reference, experiment
            )
            use_store = self.use_store()
            ref_store = exp_store = None
            if use_store:
                bin_size = self.store_bin_size()
                ref_store = self.dataset_store(reference, bin_size)
                exp_store = self.dataset_store(experiment, bin_size)
            ref_scratch: dict = {}
            exp_scratch: dict = {}
            columns_by_sample: dict = {}

            def parts():
                for ref_sample, exp_sample in sample_pairs(
                    reference, experiment, plan.joinby
                ):
                    columns = columns_by_sample.get(exp_sample.id)
                    if columns is None:
                        columns = experiment_columns(
                            exp_sample.regions, resolved
                        )
                        columns_by_sample[exp_sample.id] = columns
                    rows, pruned = map_pair_extras(
                        self._blocks_of(ref_store, ref_sample, ref_scratch),
                        self._blocks_of(exp_store, exp_sample, exp_scratch),
                        columns, resolved, use_store,
                    )
                    if use_store:
                        self.note_pruned(pruned)
                    regions = [
                        region.with_values(region.values + extras)
                        for region, extras in zip(ref_sample.regions, rows)
                    ]
                    yield (
                        regions,
                        merged_metadata(ref_sample, exp_sample),
                        [
                            (reference.name, ref_sample.id),
                            (experiment.name, exp_sample.id),
                        ],
                    )

            return build_result(
                "MAP",
                f"MAP({reference.name},{experiment.name})",
                schema,
                parts(),
                parameters="columnar-pairs",
            )

        return self.timed("MAP", kernel)

    # -- COVER --------------------------------------------------------------------

    def run_cover(self, plan, child: Dataset):
        def kernel():
            from repro.gdm import AttributeDef, INT, RegionSchema

            self.note_kernel("cover.sweep")
            schema = RegionSchema((AttributeDef("acc_index", INT),))
            use_store = self.use_store()
            store = self.dataset_store(child) if use_store else None
            scratch: dict = {}
            from repro.intervals.bins import DEFAULT_BIN_SIZE

            bin_size = (
                store.bin_size if store is not None
                else self.store_bin_size() or DEFAULT_BIN_SIZE
            )

            def parts():
                for __, samples in group_samples(child, plan.groupby):
                    lo = plan.min_acc.resolve(len(samples), is_lower=True)
                    hi = plan.max_acc.resolve(len(samples), is_lower=False)
                    blocks_list = [
                        self._blocks_of(store, sample, scratch)
                        for sample in samples
                    ]
                    out = []
                    for chrom, lefts, rights, depths in group_cover_rows(
                        blocks_list, lo, hi, plan.variant,
                        bin_size=bin_size, on_pruned=self.note_pruned,
                    ):
                        out.extend(
                            GenomicRegion(chrom, left, right, "*", (depth,))
                            for left, right, depth in zip(
                                lefts.tolist(),
                                rights.tolist(),
                                depths.tolist(),
                            )
                        )
                    yield (
                        out,
                        union_group_metadata(samples),
                        [(child.name, sample.id) for sample in samples],
                    )

            return build_result(
                plan.variant,
                f"{plan.variant}({child.name})",
                schema,
                parts(),
                parameters="columnar",
            )

        return self.timed("COVER", kernel)

    # -- JOIN -------------------------------------------------------------------------

    def run_join(self, plan, anchor: Dataset, experiment: Dataset):
        def kernel():
            from repro.gdm import AttributeDef, INT

            condition = plan.condition
            md_k = condition.min_distance_k()
            max_distance = condition.max_distance()
            min_distance = condition.min_distance()
            upstream = any(
                isinstance(c, Upstream) for c in condition.clauses
            )
            downstream = any(
                isinstance(c, Downstream) for c in condition.clauses
            )
            self.note_kernel(
                "join.nearest" if md_k is not None else "join.window"
            )

            merged = anchor.schema.merge(experiment.schema)
            schema = merged.schema.extend(AttributeDef("dist", INT))
            use_store = self.use_store()
            anchor_store = exp_store = None
            if use_store:
                bin_size = self.store_bin_size()
                anchor_store = self.dataset_store(anchor, bin_size)
                exp_store = self.dataset_store(experiment, bin_size)
            anchor_scratch: dict = {}
            exp_scratch: dict = {}
            emit = join_emitter(merged, plan.output)

            def parts():
                for anchor_sample, exp_sample in sample_pairs(
                    anchor, experiment, plan.joinby
                ):
                    a_blocks = self._blocks_of(
                        anchor_store, anchor_sample, anchor_scratch
                    )
                    e_blocks = self._blocks_of(
                        exp_store, exp_sample, exp_scratch
                    )
                    regions, pruned = join_sample_pair(
                        a_blocks, e_blocks,
                        anchor_sample.regions, exp_sample.regions,
                        emit,
                        max_distance=max_distance,
                        min_distance=min_distance,
                        md_k=md_k,
                        upstream=upstream,
                        downstream=downstream,
                        use_store=use_store,
                    )
                    if use_store:
                        self.note_pruned(pruned)
                    regions.sort(key=GenomicRegion.sort_key)
                    yield (
                        regions,
                        merged_metadata(anchor_sample, exp_sample),
                        [
                            (anchor.name, anchor_sample.id),
                            (experiment.name, exp_sample.id),
                        ],
                    )

            return build_result(
                "JOIN",
                f"JOIN({anchor.name},{experiment.name})",
                schema,
                parts(),
                parameters="columnar-kernel",
            )

        return self.timed("JOIN", kernel)

    # -- DIFFERENCE ------------------------------------------------------------------

    def run_difference(self, plan, left: Dataset, right: Dataset):
        if plan.exact or plan.joinby:
            return super().run_difference(plan, left, right)

        def kernel():
            self.note_kernel("difference.sweep")
            use_store = self.use_store()
            bin_size = self.store_bin_size()
            if use_store:
                left_store = self.dataset_store(left, bin_size)
                mask_blocks = self.dataset_store(right, bin_size).union_blocks()
            else:
                from repro.intervals.bins import DEFAULT_BIN_SIZE

                left_store = None
                mask_blocks = SampleBlocks(
                    None,
                    [region for sample in right for region in sample.regions],
                    bin_size or DEFAULT_BIN_SIZE,
                )
            scratch: dict = {}
            # The probe side's sweep (merged coverage runs + raw wide
            # events) is a per-chromosome constant: compute it lazily,
            # reuse it across every left-side sample.
            mask_events: dict = {}

            def chrom_events(chrom: str) -> tuple:
                events = mask_events.get(chrom)
                if events is None:
                    events = mask_chrom_events(mask_blocks.chroms[chrom])
                    mask_events[chrom] = events
                return events

            def parts():
                for sample in left:
                    blocks = self._blocks_of(left_store, sample, scratch)
                    overlapped = np.zeros(blocks.n_regions, dtype=bool)
                    pruned = 0
                    for chrom, block in blocks.chroms.items():
                        ref_entry = blocks.zone_map.entry(chrom)
                        probe_entry = mask_blocks.zone_map.entry(chrom)
                        if probe_entry is None or not ref_entry.window_overlaps(
                            probe_entry.min_start, probe_entry.max_stop
                        ):
                            pruned += ref_entry.partitions
                            continue
                        overlapped[block.index] = overlap_any_mask(
                            block.starts, block.stops, *chrom_events(chrom)
                        )
                    if use_store:
                        self.note_pruned(pruned)
                    kept = [
                        region
                        for region, hit in zip(
                            sample.regions, overlapped.tolist()
                        )
                        if not hit
                    ]
                    yield (kept, sample.meta, [(left.name, sample.id)])

            return build_result(
                "DIFFERENCE",
                f"DIFFERENCE({left.name},{right.name})",
                left.schema,
                parts(),
                parameters="columnar",
            )

        return self.timed("DIFFERENCE", kernel)


def join_sample_pair(
    a_blocks: SampleBlocks, e_blocks: SampleBlocks,
    anchor_regions: list, exp_regions: list, emit,
    *, max_distance, min_distance, md_k, upstream, downstream,
    use_store: bool,
) -> tuple:
    """Materialised join regions for one (anchor, experiment) sample pair.

    Runs :func:`repro.store.join_pairs` per shared chromosome, prunes
    anchor chromosomes the experiment zone map proves unreachable (DLE
    window widened by one because DLE accepts ``gap == limit`` while
    zone windows are strict; sound even under MD(k), which only ever
    *shrinks* the candidate set), and rehydrates region objects only for
    emitted pairs.  Returns ``(regions, pruned_partitions)`` with
    regions *unsorted* -- the caller owns the final stable sample sort.
    """
    regions: list = []
    pruned = 0
    for chrom, a_block in a_blocks.chroms.items():
        e_block = e_blocks.block(chrom)
        if e_block is None:
            if use_store:
                pruned += a_blocks.zone_map.entry(chrom).partitions
            continue
        if use_store and max_distance is not None:
            a_entry = a_blocks.zone_map.entry(chrom)
            e_entry = e_blocks.zone_map.entry(chrom)
            if not e_entry.window_overlaps(
                a_entry.min_start - max_distance - 1,
                a_entry.max_stop + max_distance + 1,
            ):
                pruned += a_entry.partitions
                continue
        a_rows, e_pos, gaps = join_pairs(
            a_block.starts, a_block.stops, a_block.strands,
            e_block.sorted_starts, e_block.left_stops,
            e_block.sorted_stops if md_k is not None else None,
            max_distance=max_distance,
            min_distance=min_distance,
            md_k=md_k,
            upstream=upstream,
            downstream=downstream,
        )
        if a_rows.size == 0:
            continue
        a_index = a_block.index[a_rows]
        e_index = e_block.index[e_block.left_order[e_pos]]
        for a_i, e_i, gap in zip(
            a_index.tolist(), e_index.tolist(), gaps.tolist()
        ):
            out = emit(anchor_regions[a_i], exp_regions[e_i], gap)
            if out is not None:
                regions.append(out)
    return regions, pruned
