"""The columnar backend: numpy kernels over cached store blocks.

Plays the part of the "vectorised cluster framework" in the paper's
section 4.2 comparison.  Hot kernels are vectorised and, since the
:mod:`repro.store` layer landed, consume the per-dataset columnar blocks
(:meth:`Dataset.store`) instead of rebuilding coordinate arrays from
region objects on every operator:

* **MAP with COUNT** -- overlap counting via two ``searchsorted`` calls per
  chromosome (``started_before_ref_end - ended_before_ref_start``), the
  same trick distributed GMQL uses after binning, with zone-map pruning
  of chromosomes/bins the experiment provably cannot touch;
* **COVER** -- the depth profile is computed with the shared numpy event
  sweep (:func:`repro.store.depth_segments`) over block arrays, then
  shares the run-merging logic with the naive engine;
* **DIFFERENCE** -- vectorised overlap counting against the right side's
  union blocks keeps regions whose count is zero, pruning zone-disjoint
  partitions;
* **SELECT** -- region predicates over fixed coordinates and numeric
  variable attributes evaluate as boolean array expressions over
  memoised column arrays, and conjunctive coordinate bounds prune whole
  chromosomes via the zone map;
* **JOIN** -- candidate windows search block-sorted start arrays, and
  anchor chromosomes outside the experiment's zone window are skipped.

Everything else (metadata-centric operators, genometric joins with MD or
stream clauses, non-COUNT map aggregates) falls back to the naive kernels:
backends differ only where vectorisation pays, which is itself a faithful
reproduction of how the Spark/Flink encodings share their front end.
Setting ``use_store: False`` in the execution context config (or
``REPRO_STORE=0``) restores the block-free legacy paths; ``repro bench``
uses that switch to measure the store's contribution.
"""

from __future__ import annotations

import numpy as np

from repro.gdm import Dataset, GenomicRegion
from repro.intervals.coverage import (
    CoverageSegment,
    cover_intervals_from_segments,
    summit_intervals_from_segments,
)
from repro.engine.naive import NaiveBackend
from repro.gmql.aggregates import Count
from repro.gmql.operators.base import (
    build_result,
    group_samples,
    merged_metadata,
    sample_pairs,
    union_group_metadata,
)
from repro.gmql.predicates import (
    RegionAnd,
    RegionCompare,
    RegionNot,
    RegionOr,
)
from repro.store.columnar import (
    count_overlaps_blocks,
    depth_segments,
    point_feature_adjustment,
)


def _chrom_arrays(regions: list) -> dict:
    """Group regions by chromosome into sorted coordinate arrays.

    Returns ``{chrom: (sorted_lefts, sorted_rights, zero_positions)}``
    where the coordinate arrays are sorted independently (the counting
    kernel needs both orders) and ``zero_positions`` holds the sorted
    positions of zero-length regions (the kernel's point-feature
    correction needs them).
    """
    grouped: dict = {}
    for region in regions:
        grouped.setdefault(region.chrom, []).append(region)
    arrays = {}
    for chrom, chrom_regions in grouped.items():
        lefts = np.fromiter(
            (r.left for r in chrom_regions), dtype=np.int64, count=len(chrom_regions)
        )
        rights = np.fromiter(
            (r.right for r in chrom_regions), dtype=np.int64, count=len(chrom_regions)
        )
        zeros = np.sort(lefts[rights == lefts])
        lefts.sort()
        rights.sort()
        arrays[chrom] = (lefts, rights, zeros)
    return arrays


def count_overlaps_vectorised(references: list, probe_arrays: dict) -> np.ndarray:
    """Overlap counts for each reference region against probe arrays.

    ``count(ref) = |probes with left < ref.right| -
    |probes with right <= ref.left|`` -- every probe starting before the
    reference ends either overlaps it or has already ended -- plus
    :func:`repro.store.columnar.point_feature_adjustment` to keep
    zero-length references exact.
    """
    counts = np.zeros(len(references), dtype=np.int64)
    if not references:
        return counts
    by_chrom: dict = {}
    for index, region in enumerate(references):
        by_chrom.setdefault(region.chrom, []).append(index)
    for chrom, indices in by_chrom.items():
        probes = probe_arrays.get(chrom)
        if probes is None:
            continue
        probe_lefts, probe_rights, probe_zeros = probes
        ref_lefts = np.fromiter(
            (references[i].left for i in indices), dtype=np.int64, count=len(indices)
        )
        ref_rights = np.fromiter(
            (references[i].right for i in indices), dtype=np.int64, count=len(indices)
        )
        started = np.searchsorted(probe_lefts, ref_rights, side="left")
        ended = np.searchsorted(probe_rights, ref_lefts, side="right")
        counts[np.asarray(indices)] = (
            started - ended
            + point_feature_adjustment(probe_zeros, ref_lefts, ref_rights)
        )
    return counts


def coverage_segments_vectorised(regions: list):
    """Numpy event-sweep depth profile; yields :class:`CoverageSegment`."""
    grouped: dict = {}
    for region in regions:
        if region.right > region.left:
            grouped.setdefault(region.chrom, []).append(region)
    from repro.gdm import chromosome_sort_key

    for chrom in sorted(grouped, key=chromosome_sort_key):
        chrom_regions = grouped[chrom]
        n = len(chrom_regions)
        starts = np.fromiter(
            (r.left for r in chrom_regions), dtype=np.int64, count=n
        )
        stops = np.fromiter(
            (r.right for r in chrom_regions), dtype=np.int64, count=n
        )
        for left, right, depth in depth_segments(chrom, starts, stops):
            yield CoverageSegment(chrom, left, right, depth)


def coverage_segments_from_blocks(blocks_list: list):
    """Depth profile of a sample group straight from store blocks.

    Concatenates each chromosome's event arrays across the group's
    :class:`~repro.store.columnar.SampleBlocks` (dropping zero-length
    regions, which contribute no coverage) and sweeps them with the
    shared numpy kernel; yields :class:`CoverageSegment` in genome
    order, exactly like :func:`coverage_segments_vectorised`.
    """
    from repro.gdm import chromosome_sort_key

    events: dict = {}
    for blocks in blocks_list:
        for chrom, block in blocks.chroms.items():
            wide = block.stops > block.starts
            if not wide.any():
                continue
            bucket = events.setdefault(chrom, ([], []))
            bucket[0].append(block.starts[wide])
            bucket[1].append(block.stops[wide])
    for chrom in sorted(events, key=chromosome_sort_key):
        starts_list, stops_list = events[chrom]
        starts = np.concatenate(starts_list)
        stops = np.concatenate(stops_list)
        for left, right, depth in depth_segments(chrom, starts, stops):
            yield CoverageSegment(chrom, left, right, depth)


def _conjuncts(predicate) -> list:
    """Flatten a predicate's top-level AND tree into its conjuncts."""
    if isinstance(predicate, RegionAnd):
        return _conjuncts(predicate.left) + _conjuncts(predicate.right)
    return [predicate]


def _chrom_provably_empty(conjuncts: list, entry) -> bool:
    """True when a zone entry proves no region there can satisfy SELECT.

    Only simple comparisons on the fixed coordinates participate; every
    other conjunct is ignored (pruning stays conservative).  *entry* is
    a :class:`repro.store.columnar.ZoneEntry`.
    """
    for node in conjuncts:
        if not isinstance(node, RegionCompare):
            continue
        attribute, op = node.attribute, node.operator
        if attribute in ("chrom", "chr"):
            target = str(node.value)
            if op == "==" and target != entry.chrom:
                return True
            if op == "!=" and target == entry.chrom:
                return True
            continue
        if attribute in ("left", "start", "right", "stop"):
            try:
                value = float(node.value)
            except (TypeError, ValueError):
                continue
            if attribute in ("left", "start"):
                low, high = entry.min_start, entry.max_start
            else:
                low, high = entry.min_stop, entry.max_stop
            if op == "<" and low >= value:
                return True
            if op == "<=" and low > value:
                return True
            if op == ">" and high <= value:
                return True
            if op == ">=" and high < value:
                return True
    return False


def _vectorise_predicate(predicate, schema, regions: list,
                         column_cache: dict | None = None):
    """Evaluate a region predicate as a boolean numpy array, or ``None``.

    Handles conjunction/disjunction/negation over comparisons on fixed
    coordinates and numeric variable attributes; anything else returns
    ``None`` and the caller falls back to per-region evaluation.

    *column_cache* (usually a store block's ``column_cache``) memoises
    the materialised attribute columns across operator invocations, so
    repeated predicates over one sample never rebuild arrays.
    """
    if not regions:
        return np.zeros(0, dtype=bool)

    columns: dict = column_cache if column_cache is not None else {}

    def column(name: str):
        if name in columns:
            return columns[name]
        if name in ("left", "start"):
            values = np.fromiter((r.left for r in regions), dtype=np.int64,
                                 count=len(regions))
        elif name in ("right", "stop"):
            values = np.fromiter((r.right for r in regions), dtype=np.int64,
                                 count=len(regions))
        elif name in ("chrom", "chr"):
            values = np.array([r.chrom for r in regions])
        elif name == "strand":
            values = np.array([r.strand for r in regions])
        elif name in schema:
            index = schema.index_of(name)
            attr_type = schema[name].type.name
            if attr_type in ("INT", "FLOAT"):
                values = np.array(
                    [
                        np.nan if r.values[index] is None else float(r.values[index])
                        for r in regions
                    ],
                    dtype=np.float64,
                )
            else:
                values = np.array(
                    ["" if r.values[index] is None else str(r.values[index])
                     for r in regions]
                )
        else:
            return None
        columns[name] = values
        return values

    def walk(node):
        if isinstance(node, RegionAnd):
            left, right = walk(node.left), walk(node.right)
            return None if left is None or right is None else left & right
        if isinstance(node, RegionOr):
            left, right = walk(node.left), walk(node.right)
            return None if left is None or right is None else left | right
        if isinstance(node, RegionNot):
            inner = walk(node.inner)
            return None if inner is None else ~inner
        if isinstance(node, RegionCompare):
            values = column(node.attribute)
            if values is None:
                return None
            target = node.value
            if np.issubdtype(values.dtype, np.number):
                try:
                    target = float(target)
                except (TypeError, ValueError):
                    return None
            else:
                target = str(target)
            if node.operator == "==":
                return values == target
            if node.operator == "!=":
                return values != target
            if node.operator == "<":
                return values < target
            if node.operator == "<=":
                return values <= target
            if node.operator == ">":
                return values > target
            if node.operator == ">=":
                return values >= target
            return None
        return None

    return walk(predicate)


class ColumnarBackend(NaiveBackend):
    """Numpy-vectorised backend (falls back to naive where noted above)."""

    name = "columnar"

    # -- SELECT ----------------------------------------------------------------

    def run_select(self, plan, child: Dataset, semijoin_data):
        if plan.region_predicate is None:
            return super().run_select(plan, child, semijoin_data)

        def kernel():
            from repro.gmql.operators.select import SemiJoin

            semijoin = None
            if semijoin_data is not None:
                semijoin = SemiJoin(
                    plan.semijoin_attributes, semijoin_data, plan.semijoin_negated
                )
            use_store = self.use_store()
            store = child.store(self.store_bin_size()) if use_store else None
            conjuncts = _conjuncts(plan.region_predicate)

            def parts():
                for sample in child:
                    if plan.meta_predicate is not None and not plan.meta_predicate(
                        sample.meta
                    ):
                        continue
                    if semijoin is not None and not semijoin.admits(sample):
                        continue
                    blocks = store.blocks(sample) if store is not None else None
                    live = None
                    if blocks is not None and sample.regions:
                        dead_positions = []
                        pruned = 0
                        for chrom, entry in blocks.zone_map.entries.items():
                            if _chrom_provably_empty(conjuncts, entry):
                                pruned += entry.partitions
                                dead_positions.append(
                                    blocks.chroms[chrom].index
                                )
                        if dead_positions:
                            self.note_pruned(pruned)
                            live = np.ones(blocks.n_regions, dtype=bool)
                            live[np.concatenate(dead_positions)] = False
                            if not live.any():
                                yield ([], sample.meta,
                                       [(child.name, sample.id)])
                                continue
                    mask = _vectorise_predicate(
                        plan.region_predicate, child.schema, sample.regions,
                        column_cache=(
                            blocks.column_cache if blocks is not None else None
                        ),
                    )
                    if mask is None:
                        bound = plan.region_predicate.bind(child.schema)
                        if live is None:
                            regions = [r for r in sample.regions if bound(r)]
                        else:
                            regions = [
                                r
                                for r, keep in zip(sample.regions, live)
                                if keep and bound(r)
                            ]
                    else:
                        if live is not None:
                            mask = mask & live
                        regions = [
                            r for r, keep in zip(sample.regions, mask) if keep
                        ]
                    yield (regions, sample.meta, [(child.name, sample.id)])

            return build_result(
                "SELECT", f"SELECT({child.name})", child.schema, parts(),
                parameters="columnar",
            )

        return self.timed("SELECT", kernel)

    # -- MAP ---------------------------------------------------------------------

    def run_map(self, plan, reference: Dataset, experiment: Dataset):
        aggregates = plan.aggregates or {"count": (Count(), None)}
        only_counts = all(
            isinstance(aggregate, Count) and attribute is None
            for aggregate, attribute in aggregates.values()
        )
        if not only_counts:
            return super().run_map(plan, reference, experiment)

        def kernel():
            from repro.gdm import AttributeDef, INT

            schema = reference.schema.extend(
                *(AttributeDef(name, INT) for name in aggregates)
            )
            use_store = self.use_store()
            if use_store:
                bin_size = self.store_bin_size()
                ref_store = reference.store(bin_size)
                exp_store = experiment.store(bin_size)
                arrays = None
            else:
                arrays = {
                    sample.id: _chrom_arrays(sample.regions)
                    for sample in experiment
                }

            def parts():
                for ref_sample, exp_sample in sample_pairs(
                    reference, experiment, plan.joinby
                ):
                    if use_store:
                        counts, pruned = count_overlaps_blocks(
                            ref_store.blocks(ref_sample),
                            exp_store.blocks(exp_sample),
                        )
                        self.note_pruned(pruned)
                    else:
                        counts = count_overlaps_vectorised(
                            ref_sample.regions, arrays[exp_sample.id]
                        )
                    width = len(aggregates)
                    regions = [
                        region.with_values(
                            region.values + (int(count),) * width
                        )
                        for region, count in zip(ref_sample.regions, counts)
                    ]
                    yield (
                        regions,
                        merged_metadata(ref_sample, exp_sample),
                        [
                            (reference.name, ref_sample.id),
                            (experiment.name, exp_sample.id),
                        ],
                    )

            return build_result(
                "MAP",
                f"MAP({reference.name},{experiment.name})",
                schema,
                parts(),
                parameters="columnar-count",
            )

        return self.timed("MAP", kernel)

    # -- COVER --------------------------------------------------------------------

    def run_cover(self, plan, child: Dataset):
        if plan.variant == "FLAT":
            # FLAT needs the original regions anyway; reuse the naive kernel.
            return super().run_cover(plan, child)

        def kernel():
            from repro.gdm import AttributeDef, INT, RegionSchema

            schema = RegionSchema((AttributeDef("acc_index", INT),))
            use_store = self.use_store()
            store = child.store(self.store_bin_size()) if use_store else None

            def parts():
                for __, samples in group_samples(child, plan.groupby):
                    lo = plan.min_acc.resolve(len(samples), is_lower=True)
                    hi = plan.max_acc.resolve(len(samples), is_lower=False)
                    if store is not None:
                        segments = coverage_segments_from_blocks(
                            [store.blocks(sample) for sample in samples]
                        )
                    else:
                        regions = [
                            region
                            for sample in samples
                            for region in sample.regions
                        ]
                        segments = coverage_segments_vectorised(regions)
                    if plan.variant == "COVER":
                        rows = (
                            (chrom, left, right, depth)
                            for chrom, left, right, depth, __c
                            in cover_intervals_from_segments(segments, lo, hi)
                        )
                    elif plan.variant == "SUMMIT":
                        rows = summit_intervals_from_segments(segments, lo, hi)
                    else:  # HISTOGRAM
                        rows = (
                            (s.chrom, s.left, s.right, s.depth)
                            for s in segments
                            if lo <= s.depth <= hi
                        )
                    out = [
                        GenomicRegion(chrom, left, right, "*", (depth,))
                        for chrom, left, right, depth in rows
                    ]
                    yield (
                        out,
                        union_group_metadata(samples),
                        [(child.name, sample.id) for sample in samples],
                    )

            return build_result(
                plan.variant,
                f"{plan.variant}({child.name})",
                schema,
                parts(),
                parameters="columnar",
            )

        return self.timed("COVER", kernel)

    # -- JOIN -------------------------------------------------------------------------

    def run_join(self, plan, anchor: Dataset, experiment: Dataset):
        # Vectorised candidate windows need a finite DLE bound and no
        # MD(k) clause (MD requires global ordering per anchor).
        if (
            plan.condition.min_distance_k() is not None
            or plan.condition.max_distance() is None
        ):
            return super().run_join(plan, anchor, experiment)

        def kernel():
            from repro.gdm import AttributeDef, INT
            from repro.gmql.operators.base import (
                build_result,
                merged_metadata,
                sample_pairs,
            )
            from repro.gmql.operators.join import _combine_strand

            merged = anchor.schema.merge(experiment.schema)
            schema = merged.schema.extend(AttributeDef("dist", INT))
            max_distance = plan.condition.max_distance()

            # Per experiment sample: regions grouped by chromosome, sorted
            # by left end, with numpy left arrays for window search.
            use_store = self.use_store()
            bin_size = self.store_bin_size()
            exp_store = experiment.store(bin_size) if use_store else None
            anchor_store = anchor.store(bin_size) if use_store else None
            prepared: dict = {}
            zone_maps: dict = {}
            for sample in experiment:
                arrays = {}
                if use_store:
                    blocks = exp_store.blocks(sample)
                    for chrom, block in blocks.chroms.items():
                        order = block.left_order
                        chrom_regions = [
                            sample.regions[i] for i in block.index[order]
                        ]
                        arrays[chrom] = (
                            chrom_regions,
                            block.starts[order],
                            block.max_width,
                        )
                    zone_maps[sample.id] = blocks.zone_map
                else:
                    by_chrom: dict = {}
                    for exp_region in sample.regions:
                        by_chrom.setdefault(exp_region.chrom, []).append(
                            exp_region
                        )
                    for chrom, chrom_regions in by_chrom.items():
                        chrom_regions.sort(key=lambda r: (r.left, r.right))
                        lefts = np.fromiter(
                            (r.left for r in chrom_regions),
                            dtype=np.int64,
                            count=len(chrom_regions),
                        )
                        max_width = max(r.length for r in chrom_regions)
                        arrays[chrom] = (chrom_regions, lefts, max_width)
                prepared[sample.id] = arrays

            def emit(a, b, gap):
                values = merged.combine(a.values, b.values) + (gap,)
                if plan.output == "LEFT":
                    return GenomicRegion(a.chrom, a.left, a.right, a.strand,
                                         values)
                if plan.output == "RIGHT":
                    return GenomicRegion(b.chrom, b.left, b.right, b.strand,
                                         values)
                if plan.output == "INT":
                    left = max(a.left, b.left)
                    right = min(a.right, b.right)
                    if right <= left:
                        return None
                    return GenomicRegion(a.chrom, left, right,
                                         _combine_strand(a, b), values)
                return GenomicRegion(
                    a.chrom, min(a.left, b.left), max(a.right, b.right),
                    _combine_strand(a, b), values,
                )

            def parts():
                for anchor_sample, exp_sample in sample_pairs(
                    anchor, experiment, plan.joinby
                ):
                    arrays = prepared[exp_sample.id]
                    live_chroms = None
                    if use_store:
                        # Zone-map prune: anchor chromosomes whose
                        # distance-extended window misses every
                        # experiment region produce no pairs.
                        exp_zone = zone_maps[exp_sample.id]
                        anchor_blocks = anchor_store.blocks(anchor_sample)
                        live_chroms = set()
                        pruned = 0
                        for chrom, a_entry in (
                            anchor_blocks.zone_map.entries.items()
                        ):
                            exp_entry = exp_zone.entry(chrom)
                            # Widened by one on each side: DLE accepts
                            # gap == limit, window_overlaps is strict.
                            if exp_entry is None or not exp_entry.window_overlaps(
                                a_entry.min_start - max_distance - 1,
                                a_entry.max_stop + max_distance + 1,
                            ):
                                pruned += a_entry.partitions
                            else:
                                live_chroms.add(chrom)
                        self.note_pruned(pruned)
                    regions = []
                    for a_region in anchor_sample.regions:
                        if (
                            live_chroms is not None
                            and a_region.chrom not in live_chroms
                        ):
                            continue
                        entry = arrays.get(a_region.chrom)
                        if entry is None:
                            continue
                        chrom_regions, lefts, max_width = entry
                        lo = int(
                            np.searchsorted(
                                lefts,
                                a_region.left - max_distance - max_width,
                                side="left",
                            )
                        )
                        hi = int(
                            np.searchsorted(
                                lefts, a_region.right + max_distance,
                                side="right",
                            )
                        )
                        for b_region in chrom_regions[lo:hi]:
                            gap = a_region.distance(b_region)
                            if gap is None or not plan.condition.pair_matches(
                                a_region, b_region
                            ):
                                continue
                            out = emit(a_region, b_region, gap)
                            if out is not None:
                                regions.append(out)
                    regions.sort(key=GenomicRegion.sort_key)
                    yield (
                        regions,
                        merged_metadata(anchor_sample, exp_sample),
                        [
                            (anchor.name, anchor_sample.id),
                            (experiment.name, exp_sample.id),
                        ],
                    )

            return build_result(
                "JOIN",
                f"JOIN({anchor.name},{experiment.name})",
                schema,
                parts(),
                parameters="columnar-window",
            )

        return self.timed("JOIN", kernel)

    # -- DIFFERENCE ------------------------------------------------------------------

    def run_difference(self, plan, left: Dataset, right: Dataset):
        if plan.exact or plan.joinby:
            return super().run_difference(plan, left, right)

        def kernel():
            use_store = self.use_store()
            if use_store:
                bin_size = self.store_bin_size()
                left_store = left.store(bin_size)
                mask_blocks = right.store(bin_size).union_blocks()
            else:
                mask_arrays = _chrom_arrays(
                    [region for sample in right for region in sample.regions]
                )

            def parts():
                for sample in left:
                    if use_store:
                        counts, pruned = count_overlaps_blocks(
                            left_store.blocks(sample), mask_blocks
                        )
                        self.note_pruned(pruned)
                    else:
                        counts = count_overlaps_vectorised(
                            sample.regions, mask_arrays
                        )
                    kept = [
                        region
                        for region, count in zip(sample.regions, counts)
                        if count == 0
                    ]
                    yield (kept, sample.meta, [(left.name, sample.id)])

            return build_result(
                "DIFFERENCE",
                f"DIFFERENCE({left.name},{right.name})",
                left.schema,
                parts(),
                parameters="columnar",
            )

        return self.timed("DIFFERENCE", kernel)
