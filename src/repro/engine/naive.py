"""The naive backend: record-at-a-time reference implementation.

Delegates every kernel to the operator functions of
:mod:`repro.gmql.operators`, which iterate Python region objects.  This is
the semantics oracle the other backends are tested against (differential
tests in ``tests/engine``), playing the role the single-node reference
implementation plays for the Spark/Flink encodings in the paper.
"""

from __future__ import annotations

from repro.gdm import Dataset
from repro.engine.base import Backend
from repro.gmql import operators as ops
from repro.gmql.operators.select import SemiJoin


class NaiveBackend(Backend):
    """Reference backend built directly on the operator algebra."""

    name = "naive"

    def run_select(self, plan, child: Dataset, semijoin_data: Dataset | None):
        semijoin = None
        if semijoin_data is not None:
            semijoin = SemiJoin(
                plan.semijoin_attributes, semijoin_data, plan.semijoin_negated
            )
        return self.timed(
            "SELECT",
            ops.select,
            child,
            plan.meta_predicate,
            plan.region_predicate,
            semijoin,
        )

    def run_project(self, plan, child: Dataset):
        return self.timed(
            "PROJECT",
            ops.project,
            child,
            list(plan.region_attributes)
            if plan.region_attributes is not None
            else None,
            list(plan.metadata_attributes)
            if plan.metadata_attributes is not None
            else None,
            plan.new_region_attributes,
        )

    def run_extend(self, plan, child: Dataset):
        return self.timed("EXTEND", ops.extend, child, plan.assignments)

    def run_merge(self, plan, child: Dataset):
        return self.timed("MERGE", ops.merge, child, plan.groupby)

    def run_group(self, plan, child: Dataset):
        return self.timed(
            "GROUP",
            ops.group,
            child,
            plan.meta_keys,
            plan.meta_aggregates,
            plan.region_aggregates,
        )

    def run_order(self, plan, child: Dataset):
        return self.timed(
            "ORDER",
            ops.order,
            child,
            plan.meta_keys,
            plan.top,
            plan.region_keys,
            plan.region_top,
        )

    def run_union(self, plan, left: Dataset, right: Dataset):
        return self.timed("UNION", ops.union, left, right)

    def run_difference(self, plan, left: Dataset, right: Dataset):
        return self.timed(
            "DIFFERENCE", ops.difference, left, right, plan.joinby, plan.exact
        )

    def run_cover(self, plan, child: Dataset):
        return self.timed(
            "COVER",
            ops.cover,
            child,
            plan.min_acc,
            plan.max_acc,
            plan.variant,
            plan.groupby,
        )

    def run_map(self, plan, reference: Dataset, experiment: Dataset):
        return self.timed(
            "MAP",
            ops.map_regions,
            reference,
            experiment,
            plan.aggregates,
            plan.joinby,
        )

    def run_join(self, plan, anchor: Dataset, experiment: Dataset):
        return self.timed(
            "JOIN",
            ops.join,
            anchor,
            experiment,
            plan.condition,
            plan.output,
            plan.joinby,
        )
