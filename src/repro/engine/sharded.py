"""The ``sharded`` backend: chromosome-sharded kernel execution.

The single-process face of sharded cluster execution
(:mod:`repro.federation.shards`): genometric operators split their
operand datasets into chromosome-group shards, run the columnar kernels
per group, and interleave the partials with the same
:func:`~repro.federation.merge.merge_partials` the federated client
uses -- so the merge path that must be byte-identical to single-node
execution is exercised locally on every run, with no processes or
network involved.

Group count comes from ``REPRO_SHARD_GROUPS`` (the ``auto`` backend
routes region-heavy operators here only when that variable is set).
Which kernels shard is decided by the inferred effect annotations
(:mod:`repro.gmql.lang.effects`): chromosome-local region-matching
operators shard, while cross-chromosome aggregation (EXTEND/MERGE/
ORDER/GROUP) and per-sample bookkeeping operators delegate to the
inner backend unchanged.
"""

from __future__ import annotations

import os

from repro.engine.base import Backend
from repro.gdm import chromosome_sort_key


def shard_groups_from_env(default: int | None = None) -> int | None:
    """Shard group count from ``REPRO_SHARD_GROUPS`` (``None`` when unset).

    ``None``/*default* also for invalid or non-positive values, so an
    unset or broken environment never changes execution strategy.
    """
    raw = os.environ.get("REPRO_SHARD_GROUPS", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 1 else default


class ShardedBackend(Backend):
    """Chromosome-group sharding over an inner columnar backend."""

    name = "sharded"

    def __init__(self, groups: int | None = None) -> None:
        super().__init__()
        self._groups = groups
        self._inner = None

    def inner(self) -> Backend:
        """The delegate kernel backend (lazily built, shares stats)."""
        if self._inner is None:
            from repro.engine.dispatch import get_backend

            backend = get_backend("columnar")
            backend.stats = self.stats
            if self._context is not None:
                backend.bind_context(self._context)
            self._inner = backend
        return self._inner

    def bind_context(self, context):
        super().bind_context(context)
        if self._inner is not None:
            self._inner.bind_context(context)
        return self

    def close(self) -> None:
        if self._inner is not None:
            self._inner.close()

    # -- sharding ----------------------------------------------------------------

    def _split(self, *datasets) -> tuple | None:
        """Chromosome groups shared by the operand datasets, or ``None``.

        ``None`` -- run unsharded -- when any operand is not
        chromosome-clustered (merge order would not be reproducible) or
        when fewer than two non-empty groups exist (sharding would only
        add overhead).
        """
        from repro.federation.shards import (
            is_chromosome_clustered,
            partition_chromosomes,
        )

        group_count = (
            self._groups
            if self._groups is not None
            else shard_groups_from_env()
        )
        if group_count is not None and group_count < 2:
            return None
        weights: dict = {}
        for dataset in datasets:
            if dataset is None:
                continue
            if not is_chromosome_clustered(dataset):
                return None
            for sample in dataset:
                for region in sample.regions:
                    weights[region.chrom] = weights.get(region.chrom, 0) + 1
        if len(weights) < 2:
            return None
        if group_count is None:
            # Explicit ``--engine sharded`` with no configured count:
            # finest granularity, one group per chromosome.
            group_count = len(weights)
        groups = partition_chromosomes(weights, group_count)
        return groups if len(groups) >= 2 else None

    def _sharded(self, kernel: str, plan, *datasets):
        """Run one kernel per chromosome group and merge the partials.

        The gate is the node's inferred effect record, not an operator
        allowlist: only chromosome-local kernels doing per-region
        matching work shard; everything else (cross-chromosome
        aggregation, cheap bookkeeping) delegates to the inner backend
        unchanged.
        """
        from repro.federation.merge import merge_partials
        from repro.federation.shards import slice_dataset
        from repro.gmql.lang.effects import (
            SHARD_WORTHWHILE_KINDS,
            node_effects,
        )

        run = getattr(self.inner(), f"run_{kernel}")
        if (
            plan.kind not in SHARD_WORTHWHILE_KINDS
            or not node_effects(plan).chrom_local
        ):
            return run(plan, *datasets)
        groups = self._split(*datasets)
        if groups is None:
            return run(plan, *datasets)
        partials = []
        for group in sorted(groups, key=lambda g: chromosome_sort_key(g[0])):
            operands = tuple(
                None if dataset is None else slice_dataset(dataset, group)
                for dataset in datasets
            )
            partials.append(run(plan, *operands))
        if self._context is not None:
            self._context.metrics.increment(
                "federation.shards_placed", len(partials)
            )
        return merge_partials(partials)

    # -- operator kernels ---------------------------------------------------------

    def run_select(self, plan, child, semijoin_data):
        return self._sharded("select", plan, child, semijoin_data)

    def run_project(self, plan, child):
        return self._sharded("project", plan, child)

    def run_extend(self, plan, child):
        return self._sharded("extend", plan, child)

    def run_merge(self, plan, child):
        return self._sharded("merge", plan, child)

    def run_group(self, plan, child):
        return self._sharded("group", plan, child)

    def run_order(self, plan, child):
        return self._sharded("order", plan, child)

    def run_union(self, plan, left, right):
        return self._sharded("union", plan, left, right)

    def run_difference(self, plan, left, right):
        return self._sharded("difference", plan, left, right)

    def run_cover(self, plan, child):
        return self._sharded("cover", plan, child)

    def run_map(self, plan, reference, experiment):
        return self._sharded("map", plan, reference, experiment)

    def run_join(self, plan, anchor, experiment):
        return self._sharded("join", plan, anchor, experiment)
