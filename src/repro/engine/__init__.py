"""Execution engines: one logical plan, several backends.

* ``naive``    -- record-at-a-time reference implementation;
* ``columnar`` -- numpy columnar kernels (vectorised coordinates);
* ``parallel`` -- genome-binned partitioning over a process pool;
* ``auto``     -- per-operator routing between the three above, driven
  by the physical planner's cost estimates.

This mirrors the paper's section 4.2: only the ~20 operator encodings
differ between backends, everything above them is shared.  Execution is
observed through :class:`ExecutionContext` (span tracing, metrics,
deadline/cancellation) threaded from the interpreter into every kernel.
"""

from repro.engine.auto import AutoBackend, choose_backend
from repro.engine.base import Backend, EngineStats, NodeStat
from repro.engine.context import (
    ExecutionContext,
    MetricsRegistry,
    Span,
    SpanTracer,
)
from repro.engine.dispatch import (
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.naive import NaiveBackend

__all__ = [
    "AutoBackend",
    "Backend",
    "EngineStats",
    "ExecutionContext",
    "MetricsRegistry",
    "NaiveBackend",
    "NodeStat",
    "Span",
    "SpanTracer",
    "available_backends",
    "choose_backend",
    "get_backend",
    "register_backend",
]
