"""Execution engines: one logical plan, several backends.

* ``naive``    -- record-at-a-time reference implementation;
* ``columnar`` -- numpy columnar kernels (vectorised coordinates);
* ``parallel`` -- genome-binned partitioning over a process pool.

This mirrors the paper's section 4.2: only the ~20 operator encodings
differ between backends, everything above them is shared.
"""

from repro.engine.base import Backend, EngineStats
from repro.engine.dispatch import (
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.naive import NaiveBackend

__all__ = [
    "Backend",
    "EngineStats",
    "NaiveBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]
