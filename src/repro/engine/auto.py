"""The ``auto`` backend: per-operator kernel routing.

The paper's architecture keeps "one logical plan, several backends"; this
module adds the missing policy layer that picks a backend *per operator*
instead of per query.  Region-heavy operators (MAP, JOIN, COVER,
DIFFERENCE) go to the process-pool backend once inputs are large enough
to amortise pickling, mid-size work goes to the numpy columnar kernels,
and tiny inputs stay on the naive record-at-a-time reference where
per-call overhead dominates.

Two entry points share one policy, :func:`choose_backend`:

* the physical planner (:mod:`repro.gmql.lang.physical`) calls it with
  *estimated* cardinalities at plan time, annotating each node;
* :class:`AutoBackend` calls it with *actual* input sizes when its
  kernels are invoked directly (outside a physical plan).
"""

from __future__ import annotations

from repro.engine.base import Backend, EngineStats
from repro.store import shm_enabled

#: Input-region count above which region-heavy operators are worth
#: shipping to worker processes (pickling cost must be amortised).
PARALLEL_REGION_THRESHOLD = 50_000

#: Lower break-even point when block arrays travel through POSIX shared
#: memory instead of pickles: workers attach to segments instead of
#: deserialising region objects, so the fan-out pays off much earlier.
PARALLEL_REGION_THRESHOLD_SHM = 20_000

#: Lowest break-even point when a persistent store root is configured:
#: disk-resident blocks ship as ``(path, offset, shape, dtype)`` handles
#: (see :func:`repro.store.persist.mmap_descriptor`), so a morsel's
#: marginal shipping cost is a tuple pickle and fan-out pays off almost
#: immediately.
PARALLEL_REGION_THRESHOLD_MMAP = 10_000

#: Input-region count above which vectorised columnar kernels win over
#: the record-at-a-time reference implementation.
COLUMNAR_REGION_THRESHOLD = 2_000

#: Per-kind overrides of :data:`COLUMNAR_REGION_THRESHOLD`.  The
#: event-sweep kernels (:mod:`repro.store.cover_kernels`) do a constant
#: number of array passes per chromosome -- no per-pair or per-hit work
#: at all -- so their break-even against the naive per-region
#: accumulators sits far below the pair-kernel operators'.
COLUMNAR_KIND_THRESHOLDS = {"cover": 500, "difference": 1_000}

#: Operators with genome-partitionable kernels in the parallel backend.
PARALLEL_OPERATORS = frozenset({"map", "join", "cover", "difference"})

#: The plan-node kind executed by the interpreter itself (no kernel).
SOURCE_KIND = "scan"


def parallel_threshold() -> int:
    """Effective fan-out break-even for this host.

    Shared memory removes most serialisation cost, moving the break-even
    point down, and a persisted store root removes nearly all of it
    (workers re-map immutable segment files); hosts without ``/dev/shm``
    (or with shared memory gated off) keep the conservative pickle
    threshold.
    """
    from repro.store.persist import store_root

    if store_root() is not None:
        return PARALLEL_REGION_THRESHOLD_MMAP
    if shm_enabled():
        return PARALLEL_REGION_THRESHOLD_SHM
    return PARALLEL_REGION_THRESHOLD


def choose_backend(
    kind: str, input_regions: float, available: tuple, effects=None
) -> tuple:
    """Pick a backend for one operator; returns ``(name, reason)``.

    Parameters
    ----------
    kind:
        Plan-node kind (``map``, ``select``...), lower-case.
    input_regions:
        Total regions across the operator's inputs (estimated or actual).
    available:
        Registered backend names; choices degrade gracefully when the
        parallel or columnar backend is unavailable.
    effects:
        The node's inferred :class:`~repro.gmql.lang.effects.Effects`
        record, when the caller has one.  Replaces the hard-coded
        operator allowlists: sharding requires chromosome locality,
        fan-out requires morsel safety, and a finite ``input_bound``
        caps the bare row-count estimate (a provably small input never
        routes to a heavyweight backend on an inflated estimate).
    """
    kind = kind.lower()
    if kind == SOURCE_KIND:
        return "source", "scans read datasets directly"
    bound_note = ""
    if effects is not None and effects.input_bound is not None:
        if effects.input_bound < input_regions:
            bound_note = (
                f" (estimate capped by inferred bound "
                f"<={effects.input_bound})"
            )
            input_regions = effects.input_bound
    chrom_local = (
        effects.chrom_local if effects is not None
        else kind in PARALLEL_OPERATORS
    )
    morsel_safe = (
        effects.morsel_safe if effects is not None
        else kind in PARALLEL_OPERATORS
    )
    from repro.engine.sharded import shard_groups_from_env
    from repro.gmql.lang.effects import SHARD_WORTHWHILE_KINDS

    shard_groups = shard_groups_from_env()
    if (
        shard_groups is not None
        and chrom_local
        and kind in SHARD_WORTHWHILE_KINDS
        and kind in PARALLEL_OPERATORS
        and input_regions >= COLUMNAR_KIND_THRESHOLDS.get(
            kind, COLUMNAR_REGION_THRESHOLD
        )
        and "sharded" in available
    ):
        return (
            "sharded",
            f"{kind} over ~{int(input_regions)} regions: "
            f"REPRO_SHARD_GROUPS={shard_groups} chromosome groups"
            f"{bound_note}",
        )
    if (
        kind in PARALLEL_OPERATORS
        and morsel_safe
        and input_regions >= parallel_threshold()
        and "parallel" in available
    ):
        return (
            "parallel",
            f"{kind} over ~{int(input_regions)} regions: "
            f"partition across worker processes{bound_note}",
        )
    columnar_threshold = COLUMNAR_KIND_THRESHOLDS.get(
        kind, COLUMNAR_REGION_THRESHOLD
    )
    if input_regions >= columnar_threshold and "columnar" in available:
        return (
            "columnar",
            f"{kind} over ~{int(input_regions)} regions: vectorised kernels",
        )
    return (
        "naive",
        f"{kind} over ~{int(input_regions)} regions: "
        f"small input, per-call overhead dominates",
    )


class AutoBackend(Backend):
    """Routes every kernel call to the cheapest registered backend.

    Delegate backends are created lazily and share this backend's
    :class:`EngineStats` object, so per-invocation records carry the
    *executing* backend's name while aggregates stay in one place.
    """

    name = "auto"

    #: Interpreters use this flag to route physical plan nodes through
    #: :meth:`delegate` (per-node dispatch) instead of calling run_* here.
    per_node_dispatch = True

    def __init__(self, workers: int | None = None, pool=None) -> None:
        super().__init__()
        self._workers = workers
        self._pool = pool
        self._delegates: dict = {}

    def delegate(self, name: str) -> Backend:
        """The delegate backend for *name* (``auto``/``source`` -> naive)."""
        name = name.lower()
        if name in (self.name, SOURCE_KIND, "source", ""):
            name = "naive"
        backend = self._delegates.get(name)
        if backend is None:
            backend = self._make_delegate(name)
            backend.stats = self.stats
            if self._context is not None:
                backend.bind_context(self._context)
            self._delegates[name] = backend
        return backend

    def _make_delegate(self, name: str) -> Backend:
        if name == "parallel" and (
            self._workers is not None or self._pool is not None
        ):
            from repro.engine.parallel import ParallelBackend

            return ParallelBackend(
                max_workers=self._workers, pool=self._pool
            )
        from repro.engine.dispatch import get_backend

        return get_backend(name)

    def bind_context(self, context):
        super().bind_context(context)
        for backend in self._delegates.values():
            backend.bind_context(context)
        return self

    def reset_stats(self) -> None:
        self.stats = EngineStats()
        for backend in self._delegates.values():
            backend.stats = self.stats

    def close(self) -> None:
        """Release delegate resources (worker pools); idempotent."""
        for backend in self._delegates.values():
            close = getattr(backend, "close", None)
            if close is not None:
                close()

    # -- direct kernel dispatch (used outside physical plans) -------------------

    def _route(self, plan, *inputs) -> Backend:
        from repro.engine.dispatch import available_backends
        from repro.gmql.lang.effects import node_effects

        regions = sum(
            dataset.region_count() for dataset in inputs if dataset is not None
        )
        # Node-level effects: the inputs are materialised datasets, so
        # only the operator's own locality/morsel safety matters here.
        name, __ = choose_backend(
            plan.kind, regions, available_backends(),
            effects=node_effects(plan),
        )
        return self.delegate(name)

    def run_select(self, plan, child, semijoin_data):
        return self._route(plan, child, semijoin_data).run_select(
            plan, child, semijoin_data
        )

    def run_project(self, plan, child):
        return self._route(plan, child).run_project(plan, child)

    def run_extend(self, plan, child):
        return self._route(plan, child).run_extend(plan, child)

    def run_merge(self, plan, child):
        return self._route(plan, child).run_merge(plan, child)

    def run_group(self, plan, child):
        return self._route(plan, child).run_group(plan, child)

    def run_order(self, plan, child):
        return self._route(plan, child).run_order(plan, child)

    def run_union(self, plan, left, right):
        return self._route(plan, left, right).run_union(plan, left, right)

    def run_difference(self, plan, left, right):
        return self._route(plan, left, right).run_difference(
            plan, left, right
        )

    def run_cover(self, plan, child):
        return self._route(plan, child).run_cover(plan, child)

    def run_map(self, plan, reference, experiment):
        return self._route(plan, reference, experiment).run_map(
            plan, reference, experiment
        )

    def run_join(self, plan, anchor, experiment):
        return self._route(plan, anchor, experiment).run_join(
            plan, anchor, experiment
        )
