"""Backend registry: route queries to an execution engine by name."""

from __future__ import annotations

from repro.errors import EngineError
from repro.engine.base import Backend

_FACTORIES: dict = {}


def register_backend(name: str, factory) -> None:
    """Register a backend factory (a zero-argument callable)."""
    _FACTORIES[name.lower()] = factory


def get_backend(name: str) -> Backend:
    """Instantiate a registered backend by name."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise EngineError(
            f"unknown engine {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory()


def available_backends() -> tuple:
    """Sorted names of all registered backends."""
    return tuple(sorted(_FACTORIES))


def _register_builtins() -> None:
    from repro.engine.naive import NaiveBackend

    register_backend(NaiveBackend.name, NaiveBackend)
    try:
        from repro.engine.columnar import ColumnarBackend

        register_backend(ColumnarBackend.name, ColumnarBackend)
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    try:
        from repro.engine.parallel import ParallelBackend

        register_backend(ParallelBackend.name, ParallelBackend)
    except ImportError:  # pragma: no cover
        pass
    try:
        from repro.engine.sharded import ShardedBackend

        register_backend(ShardedBackend.name, ShardedBackend)
    except ImportError:  # pragma: no cover
        pass
    from repro.engine.auto import AutoBackend

    register_backend(AutoBackend.name, AutoBackend)


_register_builtins()
