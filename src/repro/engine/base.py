"""Execution backend interface.

"The two implementations differ only in the encoding of about twenty GMQL
language components, while the compiler, logical optimizer, and APIs/UIs
are independent from the adoption of either framework" (paper, section
4.2).  We reproduce exactly that architecture: one logical plan, several
:class:`Backend` implementations that differ only in their operator
kernels.  The interpreter (:mod:`repro.gmql.lang.interpreter`) calls the
``run_*`` methods and never looks inside.

Backends also collect :class:`EngineStats` (operator timings, rows
processed) so the framework-comparison benchmark (experiment E7) can
report per-operator breakdowns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.gdm import Dataset


@dataclass
class EngineStats:
    """Accumulated execution statistics for one query run."""

    operator_seconds: dict = field(default_factory=dict)
    operator_calls: dict = field(default_factory=dict)
    regions_produced: int = 0
    samples_produced: int = 0

    def record(self, operator: str, seconds: float, result: Dataset) -> None:
        """Account one operator invocation."""
        self.operator_seconds[operator] = (
            self.operator_seconds.get(operator, 0.0) + seconds
        )
        self.operator_calls[operator] = self.operator_calls.get(operator, 0) + 1
        self.regions_produced += result.region_count()
        self.samples_produced += len(result)

    def total_seconds(self) -> float:
        """Total time spent inside operator kernels."""
        return sum(self.operator_seconds.values())


class Backend:
    """Base class of execution backends.

    Subclasses implement the ``run_*`` kernels; the base class provides
    stats accounting via :meth:`timed`.
    """

    #: Backend name used by :func:`repro.engine.dispatch.get_backend`.
    name = "abstract"

    def __init__(self) -> None:
        self.stats = EngineStats()

    def reset_stats(self) -> None:
        """Clear accumulated statistics (e.g. between benchmark runs)."""
        self.stats = EngineStats()

    def timed(self, operator: str, fn, *args, **kwargs) -> Dataset:
        """Run an operator kernel and record its cost."""
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        self.stats.record(operator, time.perf_counter() - started, result)
        return result

    # -- operator kernels (one per logical plan node kind) ---------------------

    def run_select(self, plan, child: Dataset, semijoin_data: Dataset | None):
        raise NotImplementedError

    def run_project(self, plan, child: Dataset):
        raise NotImplementedError

    def run_extend(self, plan, child: Dataset):
        raise NotImplementedError

    def run_merge(self, plan, child: Dataset):
        raise NotImplementedError

    def run_group(self, plan, child: Dataset):
        raise NotImplementedError

    def run_order(self, plan, child: Dataset):
        raise NotImplementedError

    def run_union(self, plan, left: Dataset, right: Dataset):
        raise NotImplementedError

    def run_difference(self, plan, left: Dataset, right: Dataset):
        raise NotImplementedError

    def run_cover(self, plan, child: Dataset):
        raise NotImplementedError

    def run_map(self, plan, reference: Dataset, experiment: Dataset):
        raise NotImplementedError

    def run_join(self, plan, anchor: Dataset, experiment: Dataset):
        raise NotImplementedError
