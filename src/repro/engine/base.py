"""Execution backend interface.

"The two implementations differ only in the encoding of about twenty GMQL
language components, while the compiler, logical optimizer, and APIs/UIs
are independent from the adoption of either framework" (paper, section
4.2).  We reproduce exactly that architecture: one logical plan, several
:class:`Backend` implementations that differ only in their operator
kernels.  The interpreter (:mod:`repro.gmql.lang.interpreter`) calls the
``run_*`` methods and never looks inside.

Backends collect :class:`EngineStats`: one :class:`NodeStat` record per
kernel invocation (operator, executing backend, plan-node label, wall
time, output cardinalities), with aggregate views (``operator_seconds``,
``operator_calls``...) kept for the framework-comparison benchmark
(experiment E7) and other pre-existing consumers.

A backend may be bound to an :class:`~repro.engine.context.ExecutionContext`
(:meth:`Backend.bind_context`): every kernel then checks for
cancellation/deadline before running and accounts per-operator metrics
into the context's registry.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.gdm import Dataset
from repro.resilience.clock import perf_counter


def use_store_from_env() -> bool:
    """Whether ``REPRO_STORE`` leaves the columnar store enabled."""
    return os.environ.get("REPRO_STORE", "").strip() != "0"


@dataclass(frozen=True)
class NodeStat:
    """One kernel invocation: which operator ran where, on what, for how long."""

    operator: str
    backend: str
    seconds: float
    regions: int
    samples: int
    label: str = ""


class EngineStats:
    """Accumulated execution statistics for one query run.

    Stored as a flat list of per-invocation :class:`NodeStat` records;
    the dictionary views used by older callers (``operator_seconds``,
    ``operator_calls``) are derived on access.
    """

    def __init__(self) -> None:
        self.records: list = []

    def record(
        self,
        operator: str,
        seconds: float,
        result: Dataset,
        backend: str = "",
        label: str = "",
    ) -> None:
        """Account one operator invocation."""
        self.records.append(
            NodeStat(
                operator,
                backend,
                seconds,
                result.region_count(),
                len(result),
                label,
            )
        )

    # -- aggregate views (backwards compatible) ---------------------------------

    @property
    def operator_seconds(self) -> dict:
        """``{operator: total seconds}`` across all invocations."""
        out: dict = {}
        for stat in self.records:
            out[stat.operator] = out.get(stat.operator, 0.0) + stat.seconds
        return out

    @property
    def operator_calls(self) -> dict:
        """``{operator: number of invocations}``."""
        out: dict = {}
        for stat in self.records:
            out[stat.operator] = out.get(stat.operator, 0) + 1
        return out

    @property
    def regions_produced(self) -> int:
        return sum(stat.regions for stat in self.records)

    @property
    def samples_produced(self) -> int:
        return sum(stat.samples for stat in self.records)

    def total_seconds(self) -> float:
        """Total time spent inside operator kernels."""
        return sum(stat.seconds for stat in self.records)

    def by_backend(self) -> dict:
        """``{backend: total seconds}`` -- where time went under ``auto``."""
        out: dict = {}
        for stat in self.records:
            key = stat.backend or "?"
            out[key] = out.get(key, 0.0) + stat.seconds
        return out

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Fold another stats object's records into this one."""
        self.records.extend(other.records)
        return self


class Backend:
    """Base class of execution backends.

    Subclasses implement the ``run_*`` kernels; the base class provides
    stats accounting via :meth:`timed` and optional context binding.
    """

    #: Backend name used by :func:`repro.engine.dispatch.get_backend`.
    name = "abstract"

    def __init__(self) -> None:
        self.stats = EngineStats()
        self._context = None

    @property
    def context(self):
        """The bound :class:`ExecutionContext`, or ``None``."""
        return self._context

    def bind_context(self, context) -> "Backend":
        """Attach an execution context (cancellation, metrics, config)."""
        self._context = context
        return self

    # -- resource lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release backend resources (worker pools...); idempotent no-op here."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- columnar-store configuration -------------------------------------------

    def use_store(self) -> bool:
        """Whether kernels may use the columnar store and zone-map pruning.

        Disabled via the bound context (``config={"use_store": False}``)
        or the ``REPRO_STORE=0`` environment variable; the bench harness
        uses the former to measure the pre-store baseline.
        """
        if self._context is not None and not self._context.config.get(
            "use_store", True
        ):
            return False
        return use_store_from_env()

    def store_bin_size(self) -> int | None:
        """Zone-map bin size for this run (context, env, or store default)."""
        if self._context is not None and self._context.bin_size is not None:
            return self._context.bin_size
        from repro.engine.context import bin_size_from_env

        return bin_size_from_env()

    def store_root(self) -> str | None:
        """The persistent store root for this run (context, then process).

        Per-run override via ``config={"store_dir": ...}`` (the CLI
        ``--store-dir`` flag lands there); falls back to the process
        default (:func:`repro.store.persist.store_root`).  ``None``
        keeps the storage layer purely in-memory.
        """
        if self._context is not None:
            configured = self._context.config.get("store_dir")
            if configured is not None:
                return str(configured) or None
        from repro.store.persist import store_root

        return store_root()

    def store_sync(self) -> bool | None:
        """Persist mode override (``config={"store_sync": bool}``)."""
        if self._context is not None:
            configured = self._context.config.get("store_sync")
            if configured is not None:
                return bool(configured)
        return None

    def dataset_store(self, dataset: Dataset, bin_size: int | None = None):
        """The dataset's columnar store resolved through this backend.

        The one place run-scoped storage configuration (bin size, store
        root, persist mode) meets :meth:`Dataset.store`; every kernel
        obtains stores through here so a ``--store-dir`` flag reaches
        all of them without per-operator plumbing.
        """
        return dataset.store(
            bin_size if bin_size is not None else self.store_bin_size(),
            root=self.store_root(),
            sync=self.store_sync(),
        )

    def note_pruned(self, partitions: int) -> None:
        """Account zone-map-pruned partitions into the context metrics."""
        if partitions and self._context is not None:
            self._context.metrics.increment(
                "store.partitions_pruned", partitions
            )

    def note_kernel(self, name: str) -> None:
        """Annotate the current trace span with the kernel that ran.

        Shows up as ``kernel=<name>`` in ``repro trace`` output, so a
        plan's physical annotation reveals whether e.g. a JOIN hit the
        vectorised pair kernel or fell back to the per-region loop.
        """
        if self._context is None:
            return
        span = self._context.tracer.current
        if span is not None:
            span.annotate(kernel=name)

    def reset_stats(self) -> None:
        """Clear accumulated statistics (e.g. between benchmark runs)."""
        self.stats = EngineStats()

    def timed(self, operator: str, fn, *args, **kwargs) -> Dataset:
        """Run an operator kernel and record its cost."""
        context = self._context
        label = ""
        if context is not None:
            context.check()
            current = context.tracer.current
            if current is not None:
                label = current.label
        started = perf_counter()
        result = fn(*args, **kwargs)
        seconds = perf_counter() - started
        self.stats.record(
            operator, seconds, result, backend=self.name, label=label
        )
        if context is not None:
            context.metrics.increment(f"operator.{operator}.calls")
            context.metrics.observe(f"operator.{operator}.seconds", seconds)
        return result

    # -- operator kernels (one per logical plan node kind) ---------------------

    def run_select(self, plan, child: Dataset, semijoin_data: Dataset | None):
        raise NotImplementedError

    def run_project(self, plan, child: Dataset):
        raise NotImplementedError

    def run_extend(self, plan, child: Dataset):
        raise NotImplementedError

    def run_merge(self, plan, child: Dataset):
        raise NotImplementedError

    def run_group(self, plan, child: Dataset):
        raise NotImplementedError

    def run_order(self, plan, child: Dataset):
        raise NotImplementedError

    def run_union(self, plan, left: Dataset, right: Dataset):
        raise NotImplementedError

    def run_difference(self, plan, left: Dataset, right: Dataset):
        raise NotImplementedError

    def run_cover(self, plan, child: Dataset):
        raise NotImplementedError

    def run_map(self, plan, reference: Dataset, experiment: Dataset):
        raise NotImplementedError

    def run_join(self, plan, anchor: Dataset, experiment: Dataset):
        raise NotImplementedError
