"""The parallel backend: genome-partitioned kernels over a process pool.

Models the cluster execution of the paper's section 4.2 on a single
machine: region-heavy operators (MAP, JOIN, DIFFERENCE, COVER) are split
into independent tasks and executed by worker processes.  Everything
else inherits the columnar kernels.

When the columnar store is enabled (the default), work is **morselised
per (sample pair, chromosome)**: each morsel runs one vectorised store
kernel (:func:`repro.store.join_pairs`, :func:`repro.store.overlap_pairs`
or the counting identity) over block arrays, so a large chromosome no
longer serialises behind a whole-sample task, and zone maps prune
morsels before anything is submitted at all.  Block arrays travel
through ``multiprocessing.shared_memory`` segments managed by the
backend's :class:`~repro.store.ArrayShipper` (one segment per distinct
array, shared by every morsel that references it; pickle fallback when
shared memory is unavailable or disabled), and only the *results* --
count arrays, keep masks, index-pair arrays, coverage rows -- travel
back.  Region objects are rehydrated and aggregates materialised in the
parent with the exact same code the columnar backend runs, so results
are byte-identical by construction.

With the store disabled the legacy whole-sample tasks ship region-object
lists and evaluate the naive kernels in the workers.

Workers never see plan or engine objects; they receive resolved operator
parameters (aggregates, genometric clause scalars) and array handles
only.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.gdm import Dataset, GenomicRegion
from repro.intervals import GenomeIndex, NearestIndex
from repro.intervals.coverage import (
    cover_intervals,
    flat_intervals,
    histogram_intervals,
    summit_intervals,
)
from repro.engine.columnar import (
    ColumnarBackend,
    experiment_columns,
    join_emitter,
    pair_group_columns,
    resolve_map_aggregates,
)
from repro.gmql.aggregates import Count
from repro.gmql.operators.base import (
    build_result,
    group_samples,
    merged_metadata,
    sample_pairs,
    union_group_metadata,
)
from repro.store.columnar import point_feature_adjustment
from repro.store.cover_kernels import (
    block_cover_columns,
    chrom_cover_rows,
    mask_chrom_events,
    overlap_any_mask,
    prune_dead_bins,
)
from repro.store.join_kernels import join_pairs, overlap_pairs
from repro.store.shm import ArrayShipper, materialise, shm_enabled


def default_workers() -> int:
    """Worker count when unconfigured: ``REPRO_WORKERS`` env var when set,
    otherwise the CPU count with headroom left for the parent process."""
    from repro.engine.context import workers_from_env

    configured = workers_from_env()
    if configured is not None:
        return configured
    return max(2, min(8, (os.cpu_count() or 2) - 1))


# -- module-level task functions (must be picklable) ---------------------------


def _map_task(ref_regions, exp_regions, resolved):
    """Compute MAP output values for one (reference, experiment) pair.

    *resolved* is ``[(aggregate, attr_index_or_None), ...]``; returns the
    list of value tuples to append to each reference region.  Hits are
    reduced in the canonical ``(left, right, position)`` order shared
    with the naive operator and the columnar pair kernel.
    """
    index = GenomeIndex(exp_regions)
    positions = {id(region): i for i, region in enumerate(exp_regions)}
    out = []
    for region in ref_regions:
        hits = sorted(
            index.overlapping(region),
            key=lambda hit: (hit.left, hit.right, positions[id(hit)]),
        )
        extra = []
        for aggregate, attr_index in resolved:
            if attr_index is None:
                extra.append(aggregate.compute(hits))
            else:
                extra.append(
                    aggregate.compute([hit.values[attr_index] for hit in hits])
                )
        out.append(tuple(extra))
    return out


def _join_task(anchor_regions, exp_regions, condition, output, merged_schema):
    """Compute JOIN output regions for one (anchor, experiment) pair."""
    from repro.gmql.operators.join import _combine_strand

    index = NearestIndex(exp_regions)
    regions = []
    for region in anchor_regions:
        for hit, gap in condition.matches_for_anchor(region, index):
            values = merged_schema.combine(region.values, hit.values) + (gap,)
            if output == "LEFT":
                out = GenomicRegion(
                    region.chrom, region.left, region.right, region.strand, values
                )
            elif output == "RIGHT":
                out = GenomicRegion(hit.chrom, hit.left, hit.right, hit.strand,
                                    values)
            elif output == "INT":
                left = max(region.left, hit.left)
                right = min(region.right, hit.right)
                if right <= left:
                    continue
                out = GenomicRegion(
                    region.chrom, left, right, _combine_strand(region, hit), values
                )
            else:  # CAT / CONTIG
                out = GenomicRegion(
                    region.chrom,
                    min(region.left, hit.left),
                    max(region.right, hit.right),
                    _combine_strand(region, hit),
                    values,
                )
            regions.append(out)
    regions.sort(key=GenomicRegion.sort_key)
    return regions


def _cover_task(regions, lo, hi, variant):
    """Compute one COVER group's output rows (chrom, left, right, depth)."""
    if variant == "COVER":
        return [
            (chrom, left, right, depth)
            for chrom, left, right, depth, __ in cover_intervals(regions, lo, hi)
        ]
    if variant == "FLAT":
        return [
            (chrom, left, right, depth)
            for chrom, left, right, depth, __ in flat_intervals(regions, lo, hi)
        ]
    if variant == "SUMMIT":
        return list(summit_intervals(regions, lo, hi))
    return list(histogram_intervals(regions, lo, hi))


def _difference_task(left_regions, mask_regions, exact):
    """Compute the surviving regions of one DIFFERENCE sample."""
    if exact:
        coordinates = {r.coordinates() for r in mask_regions}
        return [r for r in left_regions if r.coordinates() not in coordinates]
    index = GenomeIndex(mask_regions)
    return [
        r
        for r in left_regions
        if next(iter(index.overlapping(r)), None) is None
    ]


# -- shared-memory morsel tasks (columnar-store fast paths) ---------------------
#
# Every task receives lists of array *handles* from the parent's
# ArrayShipper, attaches/releases them around the store kernel, and
# returns freshly allocated result arrays -- never views into segments.


def _count_morsel_task(handles):
    """Overlap counts for one reference chromosome block.

    *handles*: ``[ref_starts, ref_stops, probe_sorted_starts,
    probe_sorted_stops, probe_zero_positions]``.  Returns counts aligned
    with the reference block rows.
    """
    arrays, release = materialise(handles)
    try:
        starts, stops, p_starts, p_stops, p_zeros = arrays
        started = np.searchsorted(p_starts, stops, side="left")
        ended = np.searchsorted(p_stops, starts, side="right")
        return started - ended + point_feature_adjustment(
            p_zeros, starts, stops
        )
    finally:
        release()


def _overlap_morsel_task(handles):
    """Overlap pairs for one reference chromosome block.

    *handles*: ``[ref_starts, ref_stops, exp_sorted_starts,
    exp_left_stops]``.  Returns ``(ref_rows, e_positions)``.
    """
    arrays, release = materialise(handles)
    try:
        r_starts, r_stops, e_starts, e_stops = arrays
        return overlap_pairs(r_starts, r_stops, e_starts, e_stops)
    finally:
        release()


def _join_morsel_task(handles, spec):
    """Genometric join pairs for one anchor chromosome block.

    *handles*: ``[a_starts, a_stops, a_strands, e_sorted_starts,
    e_left_stops]`` plus ``e_sorted_stops`` when *spec* carries an MD
    clause; *spec* holds the resolved clause scalars.  Returns
    ``(a_rows, e_positions, gaps)``.
    """
    arrays, release = materialise(handles)
    try:
        a_starts, a_stops, a_strands, e_starts, e_stops = arrays[:5]
        e_sorted_stops = arrays[5] if len(arrays) > 5 else None
        return join_pairs(
            a_starts, a_stops, a_strands, e_starts, e_stops, e_sorted_stops,
            max_distance=spec["max_distance"],
            min_distance=spec["min_distance"],
            md_k=spec["md_k"],
            upstream=spec["upstream"],
            downstream=spec["downstream"],
        )
    finally:
        release()


def _difference_sweep_morsel_task(handles):
    """Keep-mask for one left chromosome block against the sweep mask.

    *handles*: ``[ref_starts, ref_stops]`` followed by the five
    :func:`repro.store.mask_chrom_events` arrays of the probe side's
    chromosome (wide events, merged coverage runs, zero positions).
    ``True`` where the reference overlaps nothing.
    """
    arrays, release = materialise(handles)
    try:
        return ~overlap_any_mask(*arrays)
    finally:
        release()


def _cover_sweep_morsel_task(handles, lo, hi, variant):
    """One COVER-family (group, chromosome) morsel's output rows.

    *handles* hold each contributing block's persisted sorted columns
    (:func:`repro.store.block_cover_columns` order: 3 per block, 4 for
    FLAT).  Returns ``(lefts, rights, depths)`` arrays -- sound per
    chromosome, since no COVER variant merges runs across chromosomes.
    """
    arrays, release = materialise(handles)
    try:
        per = 4 if variant == "FLAT" else 3
        parts = [
            tuple(arrays[i:i + per]) for i in range(0, len(arrays), per)
        ]
        return chrom_cover_rows(parts, lo, hi, variant)
    finally:
        release()


class ParallelBackend(ColumnarBackend):
    """Process-pool backend; inherits columnar kernels for the rest.

    With *pool*, the backend submits morsels to an externally owned
    ``ProcessPoolExecutor`` instead of creating its own: the query
    server keeps one warm pool resident and hands it to every backend
    slot, so concurrent queries multiplex onto the same worker
    processes and no request ever pays pool start-up.  ``close`` never
    shuts a borrowed pool down -- its owner decides when workers die.
    """

    name = "parallel"

    def __init__(
        self, max_workers: int | None = None, pool=None
    ) -> None:
        super().__init__()
        self._explicit_workers = max_workers is not None
        self._max_workers = max_workers or default_workers()
        self._pool: ProcessPoolExecutor | None = None
        self._borrowed_pool = pool
        self._shipper: ArrayShipper | None = None
        self._shm_reported = (0, 0, 0)

    @property
    def max_workers(self) -> int:
        """The worker count the (lazily created) pool will use."""
        return self._max_workers

    def bind_context(self, context):
        """Adopt the context's worker count unless explicitly configured.

        The pool is created lazily on first kernel call, so rebinding
        before execution re-sizes it; once the pool exists it is kept
        (one ``ProcessPoolExecutor`` per backend instance, reused across
        kernels).
        """
        super().bind_context(context)
        if (
            context is not None
            and context.workers is not None
            and not self._explicit_workers
            and self._pool is None
        ):
            self._max_workers = context.workers
        return self

    def _executor(self) -> ProcessPoolExecutor:
        if self._borrowed_pool is not None:
            return self._borrowed_pool
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def shipper(self) -> ArrayShipper:
        """The backend's (lazily created) shared-memory array shipper.

        Honours the execution-context config (``use_shm: False``) and
        the ``REPRO_SHM`` environment gate at creation time.
        """
        if self._shipper is None:
            flag = None
            if self._context is not None:
                flag = self._context.config.get("use_shm", True)
            self._shipper = ArrayShipper(enabled=shm_enabled(flag))
        return self._shipper

    def _note_shm(self) -> None:
        """Account shipping byte deltas into the context metrics."""
        if self._shipper is None or self._context is None:
            return
        shared, pickled, mapped = self._shm_reported
        new_shared = self._shipper.bytes_shared
        new_pickled = self._shipper.bytes_pickled
        new_mapped = self._shipper.bytes_mapped
        if new_shared > shared:
            self._context.metrics.increment(
                "shm.bytes_shared", new_shared - shared
            )
        if new_pickled > pickled:
            self._context.metrics.increment(
                "shm.bytes_pickled", new_pickled - pickled
            )
        if new_mapped > mapped:
            self._context.metrics.increment(
                "shm.bytes_mapped", new_mapped - mapped
            )
        self._shm_reported = (new_shared, new_pickled, new_mapped)

    def close(self) -> None:
        """Shut the worker pool down and unlink shared segments (idempotent).

        Order matters: workers drain first (``shutdown(wait=True)``), then
        the shipper unlinks -- a segment must never disappear under a
        still-running morsel.  A borrowed pool is left running: other
        backend slots may be mid-query on it, and its owner (the query
        server's warm state) shuts it down at server stop.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._shipper is not None:
            self._shipper.close()
            self._shipper = None
            self._shm_reported = (0, 0, 0)

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # -- MAP -------------------------------------------------------------------

    def run_map(self, plan, reference: Dataset, experiment: Dataset):
        aggregates = plan.aggregates or {"count": (Count(), None)}
        only_counts = all(
            isinstance(aggregate, Count) and attribute is None
            for aggregate, attribute in aggregates.values()
        )
        object_reduced = any(
            attribute is None and not isinstance(aggregate, Count)
            for aggregate, attribute in aggregates.values()
        )
        if self.use_store() and not object_reduced:
            if only_counts:
                return self._run_map_counts_morsels(
                    plan, reference, experiment, aggregates
                )
            return self._run_map_pairs_morsels(
                plan, reference, experiment, aggregates
            )
        return self._run_map_legacy(plan, reference, experiment, aggregates)

    def _run_map_counts_morsels(self, plan, reference, experiment, aggregates):
        def kernel():
            from repro.gdm import AttributeDef, INT

            self.note_kernel("map.count+shm")
            schema = reference.schema.extend(
                *(AttributeDef(name, INT) for name in aggregates)
            )
            bin_size = self.store_bin_size()
            ref_store = self.dataset_store(reference, bin_size)
            exp_store = self.dataset_store(experiment, bin_size)
            ship = self.shipper().ship
            pairs = list(sample_pairs(reference, experiment, plan.joinby))
            morsels = []  # per pair: [(block, future), ...]
            for ref, exp in pairs:
                ref_blocks = ref_store.blocks(ref)
                exp_blocks = exp_store.blocks(exp)
                tasks, pruned = [], 0
                for chrom, block in ref_blocks.chroms.items():
                    ref_entry = ref_blocks.zone_map.entry(chrom)
                    probe_entry = exp_blocks.zone_map.entry(chrom)
                    if probe_entry is None or not ref_entry.window_overlaps(
                        probe_entry.min_start, probe_entry.max_stop
                    ):
                        pruned += ref_entry.partitions
                        continue
                    probe = exp_blocks.chroms[chrom]
                    handles = [
                        ship(block.starts), ship(block.stops),
                        ship(probe.sorted_starts), ship(probe.sorted_stops),
                        ship(probe.zero_positions),
                    ]
                    tasks.append(
                        (
                            block,
                            self._executor().submit(
                                _count_morsel_task, handles
                            ),
                        )
                    )
                self.note_pruned(pruned)
                morsels.append(tasks)
            self._note_shm()
            width = len(aggregates)

            def parts():
                for (ref, exp), tasks in zip(pairs, morsels):
                    counts = np.zeros(len(ref.regions), dtype=np.int64)
                    for block, future in tasks:
                        counts[block.index] = future.result()
                    regions = [
                        region.with_values(
                            region.values + (int(count),) * width
                        )
                        for region, count in zip(ref.regions, counts)
                    ]
                    yield (
                        regions,
                        merged_metadata(ref, exp),
                        [
                            (reference.name, ref.id),
                            (experiment.name, exp.id),
                        ],
                    )

            return build_result(
                "MAP",
                f"MAP({reference.name},{experiment.name})",
                schema,
                parts(),
                parameters="parallel",
            )

        return self.timed("MAP", kernel)

    def _run_map_pairs_morsels(self, plan, reference, experiment, aggregates):
        def kernel():
            self.note_kernel("map.pairs+shm")
            schema, resolved = resolve_map_aggregates(
                aggregates, reference, experiment
            )
            bin_size = self.store_bin_size()
            ref_store = self.dataset_store(reference, bin_size)
            exp_store = self.dataset_store(experiment, bin_size)
            ship = self.shipper().ship
            pairs = list(sample_pairs(reference, experiment, plan.joinby))
            columns_by_sample: dict = {}
            empty_row = tuple(
                aggregate.compute([]) for aggregate, __, ___ in resolved
            )
            morsels = []  # per pair: [(ref_block, exp_block, future), ...]
            for ref, exp in pairs:
                ref_blocks = ref_store.blocks(ref)
                exp_blocks = exp_store.blocks(exp)
                if exp.id not in columns_by_sample:
                    columns_by_sample[exp.id] = experiment_columns(
                        exp.regions, resolved
                    )
                tasks, pruned = [], 0
                for chrom, block in ref_blocks.chroms.items():
                    exp_block = exp_blocks.block(chrom)
                    ref_entry = ref_blocks.zone_map.entry(chrom)
                    if exp_block is None:
                        pruned += ref_entry.partitions
                        continue
                    exp_entry = exp_blocks.zone_map.entry(chrom)
                    if not ref_entry.window_overlaps(
                        exp_entry.min_start, exp_entry.max_stop
                    ):
                        pruned += ref_entry.partitions
                        continue
                    handles = [
                        ship(block.starts), ship(block.stops),
                        ship(exp_block.sorted_starts),
                        ship(exp_block.left_stops),
                    ]
                    tasks.append(
                        (
                            block,
                            exp_block,
                            self._executor().submit(
                                _overlap_morsel_task, handles
                            ),
                        )
                    )
                self.note_pruned(pruned)
                morsels.append(tasks)
            self._note_shm()

            def parts():
                for (ref, exp), tasks in zip(pairs, morsels):
                    columns = columns_by_sample[exp.id]
                    rows = [empty_row] * len(ref.regions)
                    for block, exp_block, future in tasks:
                        ref_rows, e_pos = future.result()
                        columns_out = pair_group_columns(
                            block, exp_block, ref_rows, e_pos,
                            columns, resolved,
                        )
                        positions = block.index.tolist()
                        for local, values in enumerate(zip(*columns_out)):
                            rows[positions[local]] = values
                    regions = [
                        region.with_values(region.values + extras)
                        for region, extras in zip(ref.regions, rows)
                    ]
                    yield (
                        regions,
                        merged_metadata(ref, exp),
                        [
                            (reference.name, ref.id),
                            (experiment.name, exp.id),
                        ],
                    )

            return build_result(
                "MAP",
                f"MAP({reference.name},{experiment.name})",
                schema,
                parts(),
                parameters="parallel",
            )

        return self.timed("MAP", kernel)

    def _run_map_legacy(self, plan, reference, experiment, aggregates):
        def kernel():
            from repro.gdm import AttributeDef, INT

            resolved = []
            defs = []
            for out_name, (aggregate, attribute) in aggregates.items():
                if aggregate.requires_attribute:
                    attr_index = experiment.schema.index_of(attribute)
                    input_type = experiment.schema[attribute].type
                else:
                    attr_index, input_type = None, None
                resolved.append((aggregate, attr_index))
                defs.append(
                    AttributeDef(
                        out_name,
                        aggregate.result_type(input_type) if input_type else INT,
                    )
                )
            schema = reference.schema.extend(*defs)
            pairs = list(sample_pairs(reference, experiment, plan.joinby))
            futures = [
                self._executor().submit(
                    _map_task, ref.regions, exp.regions, resolved
                )
                for ref, exp in pairs
            ]

            def parts():
                for (ref, exp), future in zip(pairs, futures):
                    extras = future.result()
                    regions = [
                        region.with_values(region.values + extra)
                        for region, extra in zip(ref.regions, extras)
                    ]
                    yield (
                        regions,
                        merged_metadata(ref, exp),
                        [(reference.name, ref.id), (experiment.name, exp.id)],
                    )

            return build_result(
                "MAP",
                f"MAP({reference.name},{experiment.name})",
                schema,
                parts(),
                parameters="parallel",
            )

        return self.timed("MAP", kernel)

    # -- JOIN ------------------------------------------------------------------

    def run_join(self, plan, anchor: Dataset, experiment: Dataset):
        if not self.use_store():
            return self._run_join_legacy(plan, anchor, experiment)

        def kernel():
            from repro.gdm import AttributeDef, INT
            from repro.gmql.genometric import Downstream, Upstream

            condition = plan.condition
            spec = {
                "max_distance": condition.max_distance(),
                "min_distance": condition.min_distance(),
                "md_k": condition.min_distance_k(),
                "upstream": any(
                    isinstance(c, Upstream) for c in condition.clauses
                ),
                "downstream": any(
                    isinstance(c, Downstream) for c in condition.clauses
                ),
            }
            self.note_kernel(
                ("join.nearest" if spec["md_k"] is not None else "join.window")
                + "+shm"
            )
            merged = anchor.schema.merge(experiment.schema)
            schema = merged.schema.extend(AttributeDef("dist", INT))
            emit = join_emitter(merged, plan.output)
            max_distance = spec["max_distance"]
            bin_size = self.store_bin_size()
            anchor_store = self.dataset_store(anchor, bin_size)
            exp_store = self.dataset_store(experiment, bin_size)
            ship = self.shipper().ship
            pairs = list(sample_pairs(anchor, experiment, plan.joinby))
            morsels = []  # per pair: [(a_block, e_block, future), ...]
            for a, e in pairs:
                a_blocks = anchor_store.blocks(a)
                e_blocks = exp_store.blocks(e)
                tasks, pruned = [], 0
                for chrom, a_block in a_blocks.chroms.items():
                    e_block = e_blocks.block(chrom)
                    a_entry = a_blocks.zone_map.entry(chrom)
                    if e_block is None:
                        pruned += a_entry.partitions
                        continue
                    if max_distance is not None:
                        e_entry = e_blocks.zone_map.entry(chrom)
                        # Widened by one on each side: DLE accepts
                        # gap == limit, window_overlaps is strict.
                        if not e_entry.window_overlaps(
                            a_entry.min_start - max_distance - 1,
                            a_entry.max_stop + max_distance + 1,
                        ):
                            pruned += a_entry.partitions
                            continue
                    handles = [
                        ship(a_block.starts), ship(a_block.stops),
                        ship(a_block.strands),
                        ship(e_block.sorted_starts),
                        ship(e_block.left_stops),
                    ]
                    if spec["md_k"] is not None:
                        handles.append(ship(e_block.sorted_stops))
                    tasks.append(
                        (
                            a_block,
                            e_block,
                            self._executor().submit(
                                _join_morsel_task, handles, spec
                            ),
                        )
                    )
                self.note_pruned(pruned)
                morsels.append(tasks)
            self._note_shm()

            def parts():
                for (a, e), tasks in zip(pairs, morsels):
                    regions = []
                    for a_block, e_block, future in tasks:
                        a_rows, e_pos, gaps = future.result()
                        if a_rows.size == 0:
                            continue
                        a_index = a_block.index[a_rows]
                        e_index = e_block.index[e_block.left_order[e_pos]]
                        for a_i, e_i, gap in zip(
                            a_index.tolist(), e_index.tolist(), gaps.tolist()
                        ):
                            out = emit(a.regions[a_i], e.regions[e_i], gap)
                            if out is not None:
                                regions.append(out)
                    regions.sort(key=GenomicRegion.sort_key)
                    yield (
                        regions,
                        merged_metadata(a, e),
                        [(anchor.name, a.id), (experiment.name, e.id)],
                    )

            return build_result(
                "JOIN",
                f"JOIN({anchor.name},{experiment.name})",
                schema,
                parts(),
                parameters="parallel",
            )

        return self.timed("JOIN", kernel)

    def _run_join_legacy(self, plan, anchor, experiment):
        def kernel():
            from repro.gdm import AttributeDef, INT

            merged = anchor.schema.merge(experiment.schema)
            schema = merged.schema.extend(AttributeDef("dist", INT))
            pairs = list(sample_pairs(anchor, experiment, plan.joinby))
            futures = [
                self._executor().submit(
                    _join_task,
                    a.regions,
                    e.regions,
                    plan.condition,
                    plan.output,
                    merged,
                )
                for a, e in pairs
            ]

            def parts():
                for (a, e), future in zip(pairs, futures):
                    yield (
                        future.result(),
                        merged_metadata(a, e),
                        [(anchor.name, a.id), (experiment.name, e.id)],
                    )

            return build_result(
                "JOIN",
                f"JOIN({anchor.name},{experiment.name})",
                schema,
                parts(),
                parameters="parallel",
            )

        return self.timed("JOIN", kernel)

    # -- COVER -------------------------------------------------------------------

    def run_cover(self, plan, child: Dataset):
        def kernel():
            from repro.gdm import AttributeDef, INT, RegionSchema

            schema = RegionSchema((AttributeDef("acc_index", INT),))
            groups = group_samples(child, plan.groupby)
            use_arrays = self.use_store()
            store = self.dataset_store(child) if use_arrays else None
            ship = self.shipper().ship if use_arrays else None
            futures = []  # legacy: one future per group
            morsels = []  # arrays: per group, chrom-ordered (chrom, future)
            for __, samples in groups:
                lo = plan.min_acc.resolve(len(samples), is_lower=True)
                hi = plan.max_acc.resolve(len(samples), is_lower=False)
                if use_arrays:
                    # Morsel per chromosome: each ships the contributing
                    # blocks' *persisted* sorted columns (no re-sort, no
                    # concatenated copies -- the shipper memoises by
                    # array identity) and returns the sweep kernel's
                    # row arrays; no COVER variant merges runs across
                    # chromosomes, so the parent just concatenates in
                    # genome order.
                    from repro.gdm import chromosome_sort_key

                    prune = max(lo, 1) >= 2
                    per_chrom: dict = {}
                    for sample in samples:
                        for chrom, block in store.blocks(
                            sample
                        ).chroms.items():
                            per_chrom.setdefault(chrom, []).append(
                                block_cover_columns(
                                    block, plan.variant, with_pairs=prune
                                )
                            )
                    tasks = []
                    for chrom in sorted(per_chrom, key=chromosome_sort_key):
                        chrom_parts = per_chrom[chrom]
                        if prune:
                            # Dead bins are pruned in the parent, before
                            # shipping: workers then receive only the
                            # surviving columns.
                            chrom_parts, pruned = prune_dead_bins(
                                chrom_parts, lo, store.bin_size,
                                plan.variant,
                            )
                            self.note_pruned(pruned)
                        handles = [
                            ship(column)
                            for part in chrom_parts
                            for column in part
                        ]
                        tasks.append(
                            (
                                chrom,
                                self._executor().submit(
                                    _cover_sweep_morsel_task, handles,
                                    lo, hi, plan.variant,
                                ),
                            )
                        )
                    morsels.append(tasks)
                    continue
                regions = [r for sample in samples for r in sample.regions]
                futures.append(
                    self._executor().submit(
                        _cover_task, regions, lo, hi, plan.variant
                    )
                )
            if use_arrays:
                self._note_shm()

            def parts():
                per_group = morsels if use_arrays else futures
                for (__, samples), group_work in zip(groups, per_group):
                    if use_arrays:
                        out = []
                        for chrom, future in group_work:
                            lefts, rights, depths = future.result()
                            out.extend(
                                GenomicRegion(
                                    chrom, left, right, "*", (depth,)
                                )
                                for left, right, depth in zip(
                                    lefts.tolist(),
                                    rights.tolist(),
                                    depths.tolist(),
                                )
                            )
                    else:
                        out = [
                            GenomicRegion(chrom, left, right, "*", (depth,))
                            for chrom, left, right, depth
                            in group_work.result()
                        ]
                    yield (
                        out,
                        union_group_metadata(samples),
                        [(child.name, sample.id) for sample in samples],
                    )

            return build_result(
                plan.variant,
                f"{plan.variant}({child.name})",
                schema,
                parts(),
                parameters="parallel",
            )

        return self.timed("COVER", kernel)

    # -- DIFFERENCE -----------------------------------------------------------------

    def run_difference(self, plan, left: Dataset, right: Dataset):
        if plan.joinby:
            return super().run_difference(plan, left, right)

        def kernel():
            samples = list(left)
            if not plan.exact and self.use_store():
                # Morsel per (sample, chromosome): ship block handles,
                # get keep-masks back; zone-disjoint chromosomes never
                # leave the parent (kept wholesale).  The probe side's
                # sweep arrays are a per-chromosome constant, computed
                # lazily in the parent; the shipper memoises them by
                # array identity, so every sample's morsels share one
                # shipment.
                bin_size = self.store_bin_size()
                left_store = self.dataset_store(left, bin_size)
                mask_blocks = self.dataset_store(right, bin_size).union_blocks()
                ship = self.shipper().ship
                mask_events: dict = {}

                def chrom_events(chrom):
                    events = mask_events.get(chrom)
                    if events is None:
                        events = mask_chrom_events(mask_blocks.chroms[chrom])
                        mask_events[chrom] = events
                    return events

                morsels = []
                for sample in samples:
                    blocks = left_store.blocks(sample)
                    tasks, pruned = [], 0
                    for chrom, block in blocks.chroms.items():
                        entry = blocks.zone_map.entry(chrom)
                        mask_entry = mask_blocks.zone_map.entry(chrom)
                        if mask_entry is None or not entry.window_overlaps(
                            mask_entry.min_start, mask_entry.max_stop
                        ):
                            pruned += entry.partitions
                            continue
                        handles = [
                            ship(block.starts), ship(block.stops),
                        ] + [ship(array) for array in chrom_events(chrom)]
                        tasks.append(
                            (
                                block,
                                self._executor().submit(
                                    _difference_sweep_morsel_task, handles
                                ),
                            )
                        )
                    self.note_pruned(pruned)
                    morsels.append(tasks)
                self._note_shm()

                def parts():
                    for sample, tasks in zip(samples, morsels):
                        keep = np.ones(len(sample.regions), dtype=bool)
                        for block, future in tasks:
                            keep[block.index] = future.result()
                        kept = [
                            region
                            for region, ok in zip(sample.regions, keep)
                            if ok
                        ]
                        yield (kept, sample.meta, [(left.name, sample.id)])

                return build_result(
                    "DIFFERENCE",
                    f"DIFFERENCE({left.name},{right.name})",
                    left.schema,
                    parts(),
                    parameters="parallel",
                )
            mask = [r for sample in right for r in sample.regions]
            futures = [
                self._executor().submit(
                    _difference_task, sample.regions, mask, plan.exact
                )
                for sample in samples
            ]

            def parts():
                for sample, future in zip(samples, futures):
                    yield (future.result(), sample.meta, [(left.name, sample.id)])

            return build_result(
                "DIFFERENCE",
                f"DIFFERENCE({left.name},{right.name})",
                left.schema,
                parts(),
                parameters="parallel",
            )

        return self.timed("DIFFERENCE", kernel)
