"""The parallel backend: genome-partitioned kernels over a process pool.

Models the cluster execution of the paper's section 4.2 on a single
machine: region-heavy operators (MAP, JOIN, DIFFERENCE, COVER) are split
into independent tasks -- one per sample pair, plus per-chromosome
splitting for COVER -- and executed by worker processes.  Everything else
inherits the columnar kernels.

When the columnar store is enabled (the default), the count-only MAP,
DIFFERENCE and COVER kernels ship plain numpy coordinate arrays taken
from the memoised :meth:`Dataset.store` blocks -- orders of magnitude
cheaper to pickle than region-object lists -- and only the *results*
(count arrays, keep masks, coverage rows) travel back; region objects
are rehydrated in the parent.  Zone maps prune whole chromosomes before
anything is shipped at all.  JOIN and the remaining MAP aggregates still
ship region lists: their workers need strands and value tuples, and the
store keeps no per-region payload beyond coordinates.

Workers never see plan or engine objects; they receive resolved operator
parameters (aggregates, genometric conditions) only.  Task granularity
mirrors the bin/partition scheme of :mod:`repro.intervals.bins`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.gdm import Dataset, GenomicRegion
from repro.intervals import GenomeIndex, NearestIndex
from repro.intervals.coverage import (
    CoverageSegment,
    cover_intervals,
    cover_intervals_from_segments,
    flat_intervals,
    histogram_intervals,
    summit_intervals,
    summit_intervals_from_segments,
)
from repro.engine.columnar import ColumnarBackend
from repro.gmql.aggregates import Count
from repro.gmql.operators.base import (
    build_result,
    group_samples,
    merged_metadata,
    sample_pairs,
    union_group_metadata,
)
from repro.store.columnar import depth_segments, point_feature_adjustment

def default_workers() -> int:
    """Worker count when unconfigured: ``REPRO_WORKERS`` env var when set,
    otherwise the CPU count with headroom left for the parent process."""
    from repro.engine.context import workers_from_env

    configured = workers_from_env()
    if configured is not None:
        return configured
    return max(2, min(8, (os.cpu_count() or 2) - 1))


# -- module-level task functions (must be picklable) ---------------------------


def _map_task(ref_regions, exp_regions, resolved):
    """Compute MAP output values for one (reference, experiment) pair.

    *resolved* is ``[(aggregate, attr_index_or_None), ...]``; returns the
    list of value tuples to append to each reference region.
    """
    index = GenomeIndex(exp_regions)
    out = []
    for region in ref_regions:
        hits = list(index.overlapping(region))
        extra = []
        for aggregate, attr_index in resolved:
            if attr_index is None:
                extra.append(aggregate.compute(hits))
            else:
                extra.append(
                    aggregate.compute([hit.values[attr_index] for hit in hits])
                )
        out.append(tuple(extra))
    return out


def _join_task(anchor_regions, exp_regions, condition, output, merged_schema):
    """Compute JOIN output regions for one (anchor, experiment) pair."""
    from repro.gmql.operators.join import _combine_strand

    index = NearestIndex(exp_regions)
    regions = []
    for region in anchor_regions:
        for hit, gap in condition.matches_for_anchor(region, index):
            values = merged_schema.combine(region.values, hit.values) + (gap,)
            if output == "LEFT":
                out = GenomicRegion(
                    region.chrom, region.left, region.right, region.strand, values
                )
            elif output == "RIGHT":
                out = GenomicRegion(hit.chrom, hit.left, hit.right, hit.strand,
                                    values)
            elif output == "INT":
                left = max(region.left, hit.left)
                right = min(region.right, hit.right)
                if right <= left:
                    continue
                out = GenomicRegion(
                    region.chrom, left, right, _combine_strand(region, hit), values
                )
            else:  # CAT / CONTIG
                out = GenomicRegion(
                    region.chrom,
                    min(region.left, hit.left),
                    max(region.right, hit.right),
                    _combine_strand(region, hit),
                    values,
                )
            regions.append(out)
    regions.sort(key=GenomicRegion.sort_key)
    return regions


def _cover_task(regions, lo, hi, variant):
    """Compute one COVER group's output rows (chrom, left, right, depth)."""
    if variant == "COVER":
        return [
            (chrom, left, right, depth)
            for chrom, left, right, depth, __ in cover_intervals(regions, lo, hi)
        ]
    if variant == "FLAT":
        return [
            (chrom, left, right, depth)
            for chrom, left, right, depth, __ in flat_intervals(regions, lo, hi)
        ]
    if variant == "SUMMIT":
        return list(summit_intervals(regions, lo, hi))
    return list(histogram_intervals(regions, lo, hi))


def _difference_task(left_regions, mask_regions, exact):
    """Compute the surviving regions of one DIFFERENCE sample."""
    if exact:
        coordinates = {r.coordinates() for r in mask_regions}
        return [r for r in left_regions if r.coordinates() not in coordinates]
    index = GenomeIndex(mask_regions)
    return [
        r
        for r in left_regions
        if next(iter(index.overlapping(r)), None) is None
    ]


# -- array-shipping task functions (columnar-store fast paths) ------------------


def _overlap_counts_arrays(n_regions, ref_data, probe_data):
    """Overlap counts from shipped coordinate arrays.

    ``ref_data`` maps chrom to ``(starts, stops, index)`` (*index* gives
    each row's position in the sample's region order); ``probe_data``
    maps chrom to ``(sorted_starts, sorted_stops, zero_positions)``.
    Chromosomes the parent pruned via zone maps are simply absent from
    *probe_data* and keep their zero counts.
    """
    counts = np.zeros(n_regions, dtype=np.int64)
    for chrom, (starts, stops, index) in ref_data.items():
        probe = probe_data.get(chrom)
        if probe is None:
            continue
        sorted_starts, sorted_stops, zero_positions = probe
        started = np.searchsorted(sorted_starts, stops, side="left")
        ended = np.searchsorted(sorted_stops, starts, side="right")
        counts[index] = started - ended + point_feature_adjustment(
            zero_positions, starts, stops
        )
    return counts


def _map_count_task_arrays(n_regions, ref_data, probe_data):
    """Count-only MAP over shipped arrays: the per-region overlap counts."""
    return _overlap_counts_arrays(n_regions, ref_data, probe_data)


def _difference_mask_task(n_regions, left_data, mask_data):
    """DIFFERENCE keep-mask over shipped arrays: ``True`` where count is 0."""
    return _overlap_counts_arrays(n_regions, left_data, mask_data) == 0


def _cover_segments_task(chrom_events, lo, hi, variant):
    """One COVER group's output rows from shipped per-chromosome events.

    ``chrom_events`` is ``[(chrom, starts, stops), ...]`` already in
    chromosome sort order; the depth profile is computed with the shared
    numpy event sweep, then run through the same segment-merging helpers
    the columnar backend uses.
    """

    def segments():
        for chrom, starts, stops in chrom_events:
            for left, right, depth in depth_segments(chrom, starts, stops):
                yield CoverageSegment(chrom, left, right, depth)

    if variant == "COVER":
        return [
            (chrom, left, right, depth)
            for chrom, left, right, depth, __ in cover_intervals_from_segments(
                segments(), lo, hi
            )
        ]
    if variant == "SUMMIT":
        return list(summit_intervals_from_segments(segments(), lo, hi))
    return [  # HISTOGRAM
        (s.chrom, s.left, s.right, s.depth)
        for s in segments()
        if lo <= s.depth <= hi
    ]


class ParallelBackend(ColumnarBackend):
    """Process-pool backend; inherits columnar kernels for the rest."""

    name = "parallel"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        self._explicit_workers = max_workers is not None
        self._max_workers = max_workers or default_workers()
        self._pool: ProcessPoolExecutor | None = None

    @property
    def max_workers(self) -> int:
        """The worker count the (lazily created) pool will use."""
        return self._max_workers

    def bind_context(self, context):
        """Adopt the context's worker count unless explicitly configured.

        The pool is created lazily on first kernel call, so rebinding
        before execution re-sizes it; once the pool exists it is kept
        (one ``ProcessPoolExecutor`` per backend instance, reused across
        kernels).
        """
        super().bind_context(context)
        if (
            context is not None
            and context.workers is not None
            and not self._explicit_workers
            and self._pool is None
        ):
            self._max_workers = context.workers
        return self

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # -- MAP -------------------------------------------------------------------

    def run_map(self, plan, reference: Dataset, experiment: Dataset):
        aggregates = plan.aggregates or {"count": (Count(), None)}

        def kernel():
            from repro.gdm import AttributeDef, INT

            resolved = []
            defs = []
            for out_name, (aggregate, attribute) in aggregates.items():
                if aggregate.requires_attribute:
                    attr_index = experiment.schema.index_of(attribute)
                    input_type = experiment.schema[attribute].type
                else:
                    attr_index, input_type = None, None
                resolved.append((aggregate, attr_index))
                defs.append(
                    AttributeDef(
                        out_name,
                        aggregate.result_type(input_type) if input_type else INT,
                    )
                )
            schema = reference.schema.extend(*defs)
            pairs = list(sample_pairs(reference, experiment, plan.joinby))
            count_only = all(
                isinstance(aggregate, Count) and attr_index is None
                for aggregate, attr_index in resolved
            )
            if count_only and self.use_store():
                # Ship coordinate arrays, get count arrays back; regions
                # are rehydrated here.  Zone-disjoint chromosomes are
                # pruned before shipping (their counts stay zero).
                bin_size = self.store_bin_size()
                ref_store = reference.store(bin_size)
                exp_store = experiment.store(bin_size)
                futures = []
                for ref, exp in pairs:
                    ref_blocks = ref_store.blocks(ref)
                    exp_blocks = exp_store.blocks(exp)
                    ref_data, probe_data, pruned = {}, {}, 0
                    for chrom, block in ref_blocks.chroms.items():
                        ref_entry = ref_blocks.zone_map.entry(chrom)
                        probe_entry = exp_blocks.zone_map.entry(chrom)
                        if probe_entry is None or not ref_entry.window_overlaps(
                            probe_entry.min_start, probe_entry.max_stop
                        ):
                            pruned += ref_entry.partitions
                            continue
                        ref_data[chrom] = (
                            block.starts, block.stops, block.index,
                        )
                        probe_block = exp_blocks.chroms[chrom]
                        probe_data[chrom] = (
                            probe_block.sorted_starts,
                            probe_block.sorted_stops,
                            probe_block.zero_positions,
                        )
                    self.note_pruned(pruned)
                    futures.append(
                        self._executor().submit(
                            _map_count_task_arrays,
                            len(ref.regions),
                            ref_data,
                            probe_data,
                        )
                    )
                width = len(resolved)

                def parts():
                    for (ref, exp), future in zip(pairs, futures):
                        counts = future.result()
                        regions = [
                            region.with_values(
                                region.values + (int(count),) * width
                            )
                            for region, count in zip(ref.regions, counts)
                        ]
                        yield (
                            regions,
                            merged_metadata(ref, exp),
                            [
                                (reference.name, ref.id),
                                (experiment.name, exp.id),
                            ],
                        )

                return build_result(
                    "MAP",
                    f"MAP({reference.name},{experiment.name})",
                    schema,
                    parts(),
                    parameters="parallel",
                )
            futures = [
                self._executor().submit(
                    _map_task, ref.regions, exp.regions, resolved
                )
                for ref, exp in pairs
            ]

            def parts():
                for (ref, exp), future in zip(pairs, futures):
                    extras = future.result()
                    regions = [
                        region.with_values(region.values + extra)
                        for region, extra in zip(ref.regions, extras)
                    ]
                    yield (
                        regions,
                        merged_metadata(ref, exp),
                        [(reference.name, ref.id), (experiment.name, exp.id)],
                    )

            return build_result(
                "MAP",
                f"MAP({reference.name},{experiment.name})",
                schema,
                parts(),
                parameters="parallel",
            )

        return self.timed("MAP", kernel)

    # -- JOIN ------------------------------------------------------------------

    def run_join(self, plan, anchor: Dataset, experiment: Dataset):
        def kernel():
            from repro.gdm import AttributeDef, INT

            merged = anchor.schema.merge(experiment.schema)
            schema = merged.schema.extend(AttributeDef("dist", INT))
            pairs = list(sample_pairs(anchor, experiment, plan.joinby))
            futures = [
                self._executor().submit(
                    _join_task,
                    a.regions,
                    e.regions,
                    plan.condition,
                    plan.output,
                    merged,
                )
                for a, e in pairs
            ]

            def parts():
                for (a, e), future in zip(pairs, futures):
                    yield (
                        future.result(),
                        merged_metadata(a, e),
                        [(anchor.name, a.id), (experiment.name, e.id)],
                    )

            return build_result(
                "JOIN",
                f"JOIN({anchor.name},{experiment.name})",
                schema,
                parts(),
                parameters="parallel",
            )

        return self.timed("JOIN", kernel)

    # -- COVER -------------------------------------------------------------------

    def run_cover(self, plan, child: Dataset):
        def kernel():
            from repro.gdm import AttributeDef, INT, RegionSchema

            schema = RegionSchema((AttributeDef("acc_index", INT),))
            groups = group_samples(child, plan.groupby)
            use_arrays = plan.variant != "FLAT" and self.use_store()
            store = child.store(self.store_bin_size()) if use_arrays else None
            futures = []
            for __, samples in groups:
                lo = plan.min_acc.resolve(len(samples), is_lower=True)
                hi = plan.max_acc.resolve(len(samples), is_lower=False)
                if use_arrays:
                    # Ship each chromosome's concatenated event arrays
                    # (zero-length regions contribute no coverage);
                    # only the merged rows come back.
                    from repro.gdm import chromosome_sort_key

                    events: dict = {}
                    for sample in samples:
                        for chrom, block in store.blocks(
                            sample
                        ).chroms.items():
                            wide = block.stops > block.starts
                            if not wide.any():
                                continue
                            bucket = events.setdefault(chrom, ([], []))
                            bucket[0].append(block.starts[wide])
                            bucket[1].append(block.stops[wide])
                    chrom_events = [
                        (
                            chrom,
                            np.concatenate(events[chrom][0]),
                            np.concatenate(events[chrom][1]),
                        )
                        for chrom in sorted(events, key=chromosome_sort_key)
                    ]
                    futures.append(
                        self._executor().submit(
                            _cover_segments_task,
                            chrom_events,
                            lo,
                            hi,
                            plan.variant,
                        )
                    )
                    continue
                regions = [r for sample in samples for r in sample.regions]
                futures.append(
                    self._executor().submit(
                        _cover_task, regions, lo, hi, plan.variant
                    )
                )

            def parts():
                for (__, samples), future in zip(groups, futures):
                    rows = future.result()
                    out = [
                        GenomicRegion(chrom, left, right, "*", (depth,))
                        for chrom, left, right, depth in rows
                    ]
                    yield (
                        out,
                        union_group_metadata(samples),
                        [(child.name, sample.id) for sample in samples],
                    )

            return build_result(
                plan.variant,
                f"{plan.variant}({child.name})",
                schema,
                parts(),
                parameters="parallel",
            )

        return self.timed("COVER", kernel)

    # -- DIFFERENCE -----------------------------------------------------------------

    def run_difference(self, plan, left: Dataset, right: Dataset):
        if plan.joinby:
            return super().run_difference(plan, left, right)

        def kernel():
            samples = list(left)
            if not plan.exact and self.use_store():
                # Ship arrays, get keep-masks back; zone-disjoint
                # chromosomes never leave the parent (kept wholesale).
                bin_size = self.store_bin_size()
                left_store = left.store(bin_size)
                mask_blocks = right.store(bin_size).union_blocks()
                futures = []
                for sample in samples:
                    blocks = left_store.blocks(sample)
                    left_data, mask_data, pruned = {}, {}, 0
                    for chrom, block in blocks.chroms.items():
                        entry = blocks.zone_map.entry(chrom)
                        mask_entry = mask_blocks.zone_map.entry(chrom)
                        if mask_entry is None or not entry.window_overlaps(
                            mask_entry.min_start, mask_entry.max_stop
                        ):
                            pruned += entry.partitions
                            continue
                        left_data[chrom] = (
                            block.starts, block.stops, block.index,
                        )
                        mask_block = mask_blocks.chroms[chrom]
                        mask_data[chrom] = (
                            mask_block.sorted_starts,
                            mask_block.sorted_stops,
                            mask_block.zero_positions,
                        )
                    self.note_pruned(pruned)
                    futures.append(
                        self._executor().submit(
                            _difference_mask_task,
                            len(sample.regions),
                            left_data,
                            mask_data,
                        )
                    )

                def parts():
                    for sample, future in zip(samples, futures):
                        keep = future.result()
                        kept = [
                            region
                            for region, ok in zip(sample.regions, keep)
                            if ok
                        ]
                        yield (kept, sample.meta, [(left.name, sample.id)])

                return build_result(
                    "DIFFERENCE",
                    f"DIFFERENCE({left.name},{right.name})",
                    left.schema,
                    parts(),
                    parameters="parallel",
                )
            mask = [r for sample in right for r in sample.regions]
            futures = [
                self._executor().submit(
                    _difference_task, sample.regions, mask, plan.exact
                )
                for sample in samples
            ]

            def parts():
                for sample, future in zip(samples, futures):
                    yield (future.result(), sample.meta, [(left.name, sample.id)])

            return build_result(
                "DIFFERENCE",
                f"DIFFERENCE({left.name},{right.name})",
                left.schema,
                parts(),
                parameters="parallel",
            )

        return self.timed("DIFFERENCE", kernel)
