"""Clock abstraction: real time for production, virtual time for tests.

Every resilience primitive (backoff sleeps, breaker reset windows,
per-call timeouts) reads time through a :class:`Clock` so the chaos
harness can run entire outage-and-recovery scenarios in microseconds and
byte-for-byte deterministically.
"""

from __future__ import annotations

import time


def monotonic() -> float:
    """The process monotonic clock.

    The single sanctioned read point: repo lint (RL007) bans direct
    ``time.monotonic()`` calls everywhere else so timing stays
    patchable from one seam.
    """
    return time.monotonic()


def perf_counter() -> float:
    """The high-resolution performance counter (see :func:`monotonic`)."""
    return time.perf_counter()


def sleep(seconds: float) -> None:
    """Really block (see :func:`monotonic` for why this lives here)."""
    if seconds > 0:
        time.sleep(seconds)


class Clock:
    """Minimal clock interface: a monotonic reading plus a sleep."""

    def monotonic(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock time; sleeps really block."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class SimulatedClock(Clock):
    """Virtual time: sleeping advances a counter instantly.

    *sink*, when given, is any object with a ``simulated_seconds``
    attribute (e.g. a federation
    :class:`~repro.federation.transfer.TransferLog`); slept time is
    accounted there too, so retry backoff shows up in the same bill as
    simulated network latency.
    """

    def __init__(self, start: float = 0.0, sink=None) -> None:
        self.now = start
        self.sink = sink
        self.slept = 0.0

    def monotonic(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        self.now += seconds
        self.slept += seconds
        if self.sink is not None:
            self.sink.simulated_seconds += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without counting it as a backoff sleep."""
        self.now += seconds
