"""Resilience substrate for federated execution (paper, sections 5 and 7).

The paper's federated and "Internet of Genomes" visions assume genome
hosts that are slow, flaky, or gone.  This package supplies the
robustness primitives the distributed layers build on:

* :class:`RetryPolicy` / :func:`call_with_retry` -- exponential backoff
  with seeded jitter and retryable-error classification;
* :class:`Timeout` -- per-call budgets derived from the run deadline;
* :class:`CircuitBreaker` / :class:`BreakerRegistry` -- per-host
  fail-fast once a host keeps misbehaving;
* :class:`FaultInjector` -- a seeded, deterministic chaos layer armed
  from a small spec language (``repro run --chaos ...``);
* :class:`ResilientCaller` -- the composition the federation client and
  IoG crawler actually use.

See ``docs/RESILIENCE.md`` for policies, injection points and the chaos
spec format.
"""

from repro.resilience.breaker import BreakerRegistry, CircuitBreaker
from repro.resilience.caller import ResilientCaller
from repro.resilience.clock import Clock, SimulatedClock, SystemClock
from repro.resilience.faults import (
    FaultInjector,
    FaultRule,
    Injection,
    arm,
    armed,
    disarm,
)
from repro.resilience.policy import (
    DEFAULT_RETRYABLE,
    RetryPolicy,
    Timeout,
    call_with_retry,
)

__all__ = [
    "BreakerRegistry",
    "CircuitBreaker",
    "Clock",
    "DEFAULT_RETRYABLE",
    "FaultInjector",
    "FaultRule",
    "Injection",
    "ResilientCaller",
    "RetryPolicy",
    "SimulatedClock",
    "SystemClock",
    "Timeout",
    "arm",
    "armed",
    "call_with_retry",
    "disarm",
]
