"""Deterministic fault injection: the chaos layer.

A :class:`FaultInjector` is armed with a seed and a list of
:class:`FaultRule` entries and wired into the simulated network, hosts
and staging areas.  Instrumented code *fires* named injection points
(``federation.execute:milan``, ``iog.links:center2``, ...); matching
rules then inject latency, transient errors, permanent host death, or
payload corruption.  All randomness comes from one seeded RNG consumed
in call order, so a whole outage scenario replays byte-for-byte from its
seed.

Chaos spec mini-language (CLI ``--chaos`` and :meth:`from_spec`)::

    spec    := clause (";" clause)*
    clause  := "seed=" INT | KIND "@" POINT ["?" param ("," param)*]
    KIND    := "latency" | "transient" | "crash" | "corrupt"
    POINT   := glob pattern over injection-point names
    param   := "p=" FLOAT | "times=" INT | "ms=" FLOAT | "s=" FLOAT

Examples::

    seed=42;crash@*:h2                       # host h2 dies permanently
    transient@federation.execute:h1?times=2  # first two executes fail
    latency@iog.links:*?ms=250,p=0.5         # coin-flip 250ms slowdowns
    corrupt@federation.transfer:milan?times=1  # one corrupted chunk
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from repro.errors import (
    HostDownError,
    ResilienceError,
    TransientNetworkError,
)

KINDS = ("latency", "transient", "crash", "corrupt")


@dataclass(frozen=True)
class FaultRule:
    """One armed fault: what to inject, where, how often."""

    kind: str
    point: str                       # glob over injection-point names
    probability: float = 1.0
    times: int | None = None         # max injections; None = unlimited
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ResilienceError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if not 0 <= self.probability <= 1:
            raise ResilienceError("fault probability must be in [0, 1]")
        if self.times is not None and self.times < 1:
            raise ResilienceError("times must be at least 1 when given")

    def matches(self, point: str) -> bool:
        return fnmatchcase(point, self.point)


@dataclass(frozen=True)
class Injection:
    """A record of one injected fault (for reports and assertions)."""

    point: str
    kind: str


@dataclass
class FaultInjector:
    """Seeded, deterministic chaos: evaluates armed rules at fire time."""

    rules: list = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.rules = list(self.rules)
        self._rng = random.Random(self.seed)
        self._counts: dict = {}     # id(rule index) -> injections so far
        self.injected: list = []    # Injection records, in fire order
        self.fired_points = 0       # total fire() calls, hit or miss

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_spec(cls, text: str) -> "FaultInjector":
        """Parse the chaos mini-language (see module docstring)."""
        seed = 0
        rules = []
        for raw in text.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[len("seed="):])
                except ValueError:
                    raise ResilienceError(
                        f"bad chaos seed in clause {clause!r}"
                    ) from None
                continue
            kind, sep, rest = clause.partition("@")
            if not sep or not rest:
                raise ResilienceError(
                    f"bad chaos clause {clause!r}: expected KIND@POINT"
                )
            point, __, params = rest.partition("?")
            probability, times, latency = 1.0, None, 0.0
            for param in filter(None, params.split(",")):
                key, sep, value = param.partition("=")
                if not sep:
                    raise ResilienceError(
                        f"bad chaos parameter {param!r} in {clause!r}"
                    )
                try:
                    if key == "p":
                        probability = float(value)
                    elif key == "times":
                        times = int(value)
                    elif key == "ms":
                        latency = float(value) / 1000.0
                    elif key == "s":
                        latency = float(value)
                    else:
                        raise ResilienceError(
                            f"unknown chaos parameter {key!r} in {clause!r}"
                        )
                except ValueError:
                    raise ResilienceError(
                        f"bad value for {key!r} in chaos clause {clause!r}"
                    ) from None
            rules.append(
                FaultRule(kind.strip(), point.strip(),
                          probability=probability, times=times,
                          latency_seconds=latency)
            )
        return cls(rules=rules, seed=seed)

    # -- firing -------------------------------------------------------------------

    def fire(self, point: str, payload: bytes | None = None):
        """Evaluate every armed rule against *point*.

        Returns ``(payload, extra_latency_seconds)`` -- the payload
        possibly corrupted -- or raises the injected error.  Latency
        accumulated before an error rule fires is simply lost, like a
        connection that stalls and then drops.
        """
        self.fired_points += 1
        delay = 0.0
        for index, rule in enumerate(self.rules):
            if not rule.matches(point):
                continue
            if rule.times is not None and self._counts.get(index, 0) >= rule.times:
                continue
            if rule.probability < 1.0 and self._rng.random() > rule.probability:
                continue
            self._counts[index] = self._counts.get(index, 0) + 1
            self.injected.append(Injection(point, rule.kind))
            if rule.kind == "latency":
                delay += rule.latency_seconds
            elif rule.kind == "transient":
                raise TransientNetworkError(
                    f"injected transient fault at {point!r}"
                )
            elif rule.kind == "crash":
                raise HostDownError(f"injected crash at {point!r}")
            elif rule.kind == "corrupt" and payload:
                payload = self._corrupt(payload)
        return payload, delay

    def _corrupt(self, payload: bytes) -> bytes:
        """Flip one deterministic byte of *payload*."""
        index = self._rng.randrange(len(payload))
        flipped = payload[index] ^ 0xFF
        return payload[:index] + bytes([flipped]) + payload[index + 1:]

    # -- reporting ----------------------------------------------------------------

    def injected_by_kind(self) -> dict:
        out: dict = {}
        for injection in self.injected:
            out[injection.kind] = out.get(injection.kind, 0) + 1
        return out

    def summary(self) -> str:
        by_kind = self.injected_by_kind()
        if not by_kind:
            return "no faults injected"
        parts = [f"{kind}={count}" for kind, count in sorted(by_kind.items())]
        return f"{len(self.injected)} fault(s) injected: " + " ".join(parts)


# -- ambient injector (armed by `repro run --chaos`) -----------------------------

_ambient: FaultInjector | None = None


def arm(injector: FaultInjector) -> FaultInjector:
    """Install a process-wide injector; new Networks pick it up."""
    global _ambient
    _ambient = injector
    return injector


def disarm() -> None:
    global _ambient
    _ambient = None


def armed() -> FaultInjector | None:
    """The currently armed ambient injector, if any."""
    return _ambient
