"""Retry policies and per-call time budgets.

A :class:`RetryPolicy` classifies which errors are worth retrying and
produces an exponential-backoff-with-jitter delay schedule from a seeded
RNG, so a given (seed, failure sequence) always replays identically.
:class:`Timeout` derives a per-call budget from a policy default and the
surrounding :class:`~repro.engine.context.ExecutionContext` deadline --
a call never gets more time than the whole query has left.

:func:`call_with_retry` is the loop both the federation client and the
IoG crawler use.  Two deadline rules make it behave well under pressure:

* a backoff sleep is never longer than the context's remaining time --
  when the deadline would expire mid-sleep the call cancels *promptly*
  instead of finishing the nap;
* every attempt re-checks the context first, so cancellation between
  retries is honoured immediately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import (
    CallTimeoutError,
    ExecutionCancelled,
    HostDownError,
    RetryExhaustedError,
    TransientError,
)
from repro.resilience.clock import Clock, SystemClock

#: Errors retried by default: transient by contract, plus host-down
#: (which *might* be an outage) and per-call timeouts.
DEFAULT_RETRYABLE = (TransientError, HostDownError, CallTimeoutError)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter and bounded attempts."""

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1          # +/- fraction applied to each delay
    retryable: tuple = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def is_retryable(self, error: Exception) -> bool:
        return isinstance(error, tuple(self.retryable))

    def delay_for(self, attempt: int, rng: random.Random | None = None
                  ) -> float:
        """Backoff before retry number *attempt* (1-based), jittered."""
        delay = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if rng is not None and self.jitter:
            delay *= 1 + self.jitter * (2 * rng.random() - 1)
        return delay


@dataclass(frozen=True)
class Timeout:
    """A per-call time budget, capped by the run-wide deadline."""

    seconds: float | None = None

    def budget(self, context=None) -> float | None:
        """Effective budget for one call (``None`` = unbounded)."""
        remaining = context.remaining_seconds() if context else None
        if remaining is None:
            return self.seconds
        if self.seconds is None:
            return remaining
        return min(self.seconds, remaining)


def call_with_retry(
    fn,
    policy: RetryPolicy | None = None,
    *,
    clock: Clock | None = None,
    rng: random.Random | None = None,
    context=None,
    timeout: Timeout | None = None,
    on_attempt=None,
):
    """Run *fn* under *policy*; return its result or raise.

    Raises :class:`RetryExhaustedError` once attempts run out,
    re-raises non-retryable errors immediately, and raises
    :class:`~repro.errors.ExecutionCancelled` as soon as the *context*
    deadline cannot accommodate the next backoff sleep.  *on_attempt*,
    when given, is called as ``on_attempt(attempt, error)`` after each
    failed attempt (for metrics / reports).
    """
    policy = policy or RetryPolicy()
    clock = clock or SystemClock()
    timeout = timeout or Timeout()
    last_error: Exception | None = None
    for attempt in range(1, policy.max_attempts + 1):
        if context is not None:
            context.check()
        budget = timeout.budget(context)
        started = clock.monotonic()
        try:
            result = fn()
        except ExecutionCancelled:
            raise
        except Exception as exc:          # noqa: BLE001 - classified below
            if not policy.is_retryable(exc):
                raise
            last_error = exc
        else:
            elapsed = clock.monotonic() - started
            if budget is not None and elapsed > budget:
                last_error = CallTimeoutError(
                    f"call took {elapsed:.3f}s, budget was {budget:.3f}s"
                )
            else:
                return result
        if on_attempt is not None:
            on_attempt(attempt, last_error)
        if attempt == policy.max_attempts:
            break
        delay = policy.delay_for(attempt, rng)
        if context is not None:
            remaining = context.remaining_seconds()
            if remaining is not None and delay >= remaining:
                # Cancel promptly rather than sleeping into the deadline.
                raise ExecutionCancelled(
                    f"deadline expires in {max(remaining, 0):.3f}s, "
                    f"before the {delay:.3f}s retry backoff completes"
                )
        clock.sleep(delay)
    raise RetryExhaustedError(
        f"all {policy.max_attempts} attempt(s) failed: {last_error}",
        attempts=policy.max_attempts,
        last_error=last_error,
    )
