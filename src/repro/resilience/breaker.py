"""Per-host circuit breakers.

After enough consecutive failures a breaker *opens* and fails calls to
that host instantly (no retries, no backoff), giving it ``reset_seconds``
to heal.  The first call after the window *half-opens* the breaker: one
probe is let through, success closes the circuit, failure re-opens it.
Clocks are injectable so breaker timelines are fully testable.
"""

from __future__ import annotations

from repro.errors import CircuitOpenError
from repro.resilience.clock import Clock, SystemClock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One breaker guarding one remote host."""

    def __init__(
        self,
        host: str = "",
        failure_threshold: int = 5,
        reset_seconds: float = 30.0,
        clock: Clock | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.host = host
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.clock = clock or SystemClock()
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.trips = 0               # times the breaker opened
        self.rejections = 0          # calls refused while open

    def before_call(self) -> None:
        """Gate one call; raises :class:`CircuitOpenError` while open."""
        if self.state == OPEN:
            elapsed = self.clock.monotonic() - (self.opened_at or 0.0)
            if elapsed >= self.reset_seconds:
                self.state = HALF_OPEN      # let one probe through
            else:
                self.rejections += 1
                raise CircuitOpenError(
                    f"circuit for host {self.host!r} is open "
                    f"({self.reset_seconds - elapsed:.3f}s until probe)",
                    host=self.host,
                )

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = CLOSED
        self.opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (
            self.state == HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != OPEN:
                self.trips += 1
            self.state = OPEN
            self.opened_at = self.clock.monotonic()


class BreakerRegistry:
    """Lazily creates one :class:`CircuitBreaker` per host name."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_seconds: float = 30.0,
        clock: Clock | None = None,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.clock = clock or SystemClock()
        self._breakers: dict = {}

    def get(self, host: str) -> CircuitBreaker:
        breaker = self._breakers.get(host)
        if breaker is None:
            breaker = CircuitBreaker(
                host,
                failure_threshold=self.failure_threshold,
                reset_seconds=self.reset_seconds,
                clock=self.clock,
            )
            self._breakers[host] = breaker
        return breaker

    def states(self) -> dict:
        """``{host: state}`` for every breaker created so far."""
        return {host: b.state for host, b in self._breakers.items()}

    def open_hosts(self) -> list:
        return sorted(
            host for host, b in self._breakers.items() if b.state == OPEN
        )
