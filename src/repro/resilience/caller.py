"""The composed resilience runtime: breaker + retry + timeout + telemetry.

:class:`ResilientCaller` is what the federation client and crawler hold:
one retry policy, one breaker registry, one seeded RNG and one clock.
Each :meth:`call` gates on the host's circuit breaker, retries per the
policy with deadline-aware backoff, and surfaces counters in a
:class:`~repro.engine.context.MetricsRegistry` plus spans in the
context tracer when an :class:`ExecutionContext` is attached.
"""

from __future__ import annotations

import random

from repro.errors import CircuitOpenError, RetryExhaustedError
from repro.resilience.breaker import BreakerRegistry
from repro.resilience.clock import Clock, SystemClock
from repro.resilience.policy import RetryPolicy, Timeout, call_with_retry


class ResilientCaller:
    """Applies one resilience configuration to named remote calls."""

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        *,
        breakers: BreakerRegistry | None = None,
        clock: Clock | None = None,
        seed: int = 0,
        timeout: Timeout | None = None,
        context=None,
        metrics=None,
    ) -> None:
        self.policy = policy or RetryPolicy()
        self.clock = clock or SystemClock()
        self.breakers = breakers or BreakerRegistry(clock=self.clock)
        self.rng = random.Random(seed)
        self.timeout = timeout or Timeout()
        self.context = context
        self.metrics = metrics if metrics is not None else (
            context.metrics if context is not None else None
        )
        self.retries = 0             # failed attempts that were retried

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.increment(name, amount)

    def call(self, host: str, op: str, fn):
        """Run ``fn()`` against *host* with full resilience semantics.

        Raises :class:`~repro.errors.CircuitOpenError` instantly while
        the host's breaker is open and
        :class:`~repro.errors.RetryExhaustedError` when the policy gives
        up; both leave the breaker recording the failure so repeated
        trouble eventually short-circuits.
        """
        breaker = self.breakers.get(host)
        attempts_used = 0

        def on_attempt(attempt: int, error: Exception | None) -> None:
            nonlocal attempts_used
            attempts_used = attempt
            breaker.record_failure()
            self._count("resilience.attempts.failed")
            self._count(f"resilience.host.{host}.failures")
            if attempt < self.policy.max_attempts:
                self.retries += 1
                self._count("resilience.retries")

        def guarded():
            breaker.before_call()
            return fn()

        self._count("resilience.calls")
        try:
            if self.context is not None:
                with self.context.span(f"call {op}:{host}") as span:
                    result = call_with_retry(
                        guarded, self.policy, clock=self.clock, rng=self.rng,
                        context=self.context, timeout=self.timeout,
                        on_attempt=on_attempt,
                    )
                    span.annotate(attempts=attempts_used + 1, outcome="ok")
            else:
                result = call_with_retry(
                    guarded, self.policy, clock=self.clock, rng=self.rng,
                    timeout=self.timeout, on_attempt=on_attempt,
                )
        except CircuitOpenError:
            self._count("resilience.breaker.rejections")
            self._count(f"resilience.host.{host}.breaker_rejections")
            raise
        except RetryExhaustedError:
            self._count("resilience.exhausted")
            raise
        breaker.record_success()
        return result
