"""Genometric join conditions: DLE, DGE, MD(k), UPSTREAM, DOWNSTREAM.

"GENOMETRIC JOIN selects region pairs based upon distance properties"
(paper, section 2).  A :class:`GenometricCondition` is a conjunction of
atomic clauses evaluated between an *anchor* region (from the left operand)
and an *experiment* region (from the right operand):

* ``DLE(n)`` -- distance less than or equal to ``n`` (``DLE(0)`` admits
  touching or overlapping pairs; ``DLE(-1)`` requires true overlap);
* ``DGE(n)`` -- distance greater than or equal to ``n``;
* ``MD(k)`` -- the experiment region is among the ``k`` closest to the
  anchor (evaluated per anchor over the whole experiment sample);
* ``UP`` / ``DOWN`` -- the experiment region lies upstream/downstream of
  the anchor, relative to the anchor's strand.

Distances follow :meth:`GenomicRegion.distance`: negative inside overlaps,
``0`` when adjacent, gap size otherwise, undefined across chromosomes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.gdm import GenomicRegion
from repro.intervals import NearestIndex, is_downstream, is_upstream


@dataclass(frozen=True)
class DistLess:
    """``DLE(limit)``: genometric distance <= limit."""

    limit: int


@dataclass(frozen=True)
class DistGreater:
    """``DGE(limit)``: genometric distance >= limit."""

    limit: int


@dataclass(frozen=True)
class MinDistance:
    """``MD(k)``: among the k nearest experiment regions to the anchor."""

    k: int


@dataclass(frozen=True)
class Upstream:
    """``UP``: experiment region upstream of the anchor (strand-aware)."""


@dataclass(frozen=True)
class Downstream:
    """``DOWN``: experiment region downstream of the anchor (strand-aware)."""


_ATOMS = (DistLess, DistGreater, MinDistance, Upstream, Downstream)


class GenometricCondition:
    """Conjunction of atomic genometric clauses.

    >>> cond = GenometricCondition(DistLess(1000), Upstream())
    >>> cond.max_distance()
    1000
    """

    __slots__ = ("clauses",)

    def __init__(self, *clauses) -> None:
        if not clauses:
            raise EvaluationError("a genometric condition needs at least one clause")
        for clause in clauses:
            if not isinstance(clause, _ATOMS):
                raise EvaluationError(f"not a genometric clause: {clause!r}")
        if sum(isinstance(c, MinDistance) for c in clauses) > 1:
            raise EvaluationError("at most one MD(k) clause is allowed")
        self.clauses = tuple(clauses)

    def min_distance_k(self) -> int | None:
        """The MD(k) bound, or ``None`` when no MD clause is present."""
        for clause in self.clauses:
            if isinstance(clause, MinDistance):
                return clause.k
        return None

    def max_distance(self) -> int | None:
        """The tightest DLE limit, or ``None`` (unbounded)."""
        limits = [c.limit for c in self.clauses if isinstance(c, DistLess)]
        return min(limits) if limits else None

    def min_distance(self) -> int | None:
        """The tightest DGE limit, or ``None``."""
        limits = [c.limit for c in self.clauses if isinstance(c, DistGreater)]
        return max(limits) if limits else None

    def pair_matches(self, anchor: GenomicRegion, other: GenomicRegion) -> bool:
        """Evaluate all non-MD clauses on one pair."""
        gap = anchor.distance(other)
        if gap is None:
            return False
        for clause in self.clauses:
            if isinstance(clause, DistLess) and gap > clause.limit:
                return False
            if isinstance(clause, DistGreater) and gap < clause.limit:
                return False
            if isinstance(clause, Upstream) and not is_upstream(anchor, other):
                return False
            if isinstance(clause, Downstream) and not is_downstream(anchor, other):
                return False
        return True

    def matches_for_anchor(
        self,
        anchor: GenomicRegion,
        index: NearestIndex,
    ) -> list:
        """All ``(experiment_region, distance)`` pairs satisfying the condition.

        MD(k) is applied *after* the directional/stream clauses and
        *before* the distance bounds, matching GMQL semantics: the k
        nearest candidates are chosen among stream-compatible regions,
        then distance limits filter them.
        """
        k = self.min_distance_k()
        max_distance = self.max_distance()
        if k is None:
            if max_distance is not None:
                candidates = index.within(anchor, max_distance)
            else:
                candidates = (
                    (region, anchor.distance(region))
                    for region, __ in index.nearest(anchor, k=len(index))
                )
            return [
                (region, gap)
                for region, gap in candidates
                if self.pair_matches(anchor, region)
            ]
        directional = [
            clause
            for clause in self.clauses
            if isinstance(clause, (Upstream, Downstream))
        ]
        pool = [
            (region, gap)
            for region, gap in index.nearest(anchor, k=len(index))
            if all(
                (
                    is_upstream(anchor, region)
                    if isinstance(clause, Upstream)
                    else is_downstream(anchor, region)
                )
                for clause in directional
            )
        ]
        nearest_k = pool[:k]
        return [
            (region, gap)
            for region, gap in nearest_k
            if self.pair_matches(anchor, region)
        ]

    def describe(self) -> str:
        """Compact textual form, e.g. ``DLE(1000), UP``."""
        parts = []
        for clause in self.clauses:
            if isinstance(clause, DistLess):
                parts.append(f"DLE({clause.limit})")
            elif isinstance(clause, DistGreater):
                parts.append(f"DGE({clause.limit})")
            elif isinstance(clause, MinDistance):
                parts.append(f"MD({clause.k})")
            elif isinstance(clause, Upstream):
                parts.append("UP")
            else:
                parts.append("DOWN")
        return ", ".join(parts)

    def __repr__(self) -> str:
        return f"GenometricCondition({self.describe()})"
