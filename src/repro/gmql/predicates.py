"""Metadata and region predicates for GMQL SELECT (and friends).

Two predicate families share the comparison machinery:

* **metadata predicates** decide whether a *sample* is kept, by comparing
  its metadata attribute values (a multi-valued attribute satisfies a
  comparison when *any* of its values does);
* **region predicates** decide whether a *region* is kept, by comparing
  fixed coordinates (``chrom``/``left``/``right``/``strand``) or variable
  schema attributes.

Comparisons are weakly typed, like GMQL: numeric comparison is attempted
first, falling back to string comparison, so ``replicate == '2'`` matches
the integer 2.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import EvaluationError
from repro.gdm import GenomicRegion, Metadata, RegionSchema

_OPERATORS: dict = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compare(left: Any, operator: str, right: Any) -> bool:
    """Weakly-typed comparison: numeric first, then string.

    Missing values (``None``) satisfy only ``!=`` against non-missing
    values, mirroring SQL's null semantics loosely enough for metadata.
    """
    try:
        op = _OPERATORS[operator]
    except KeyError:
        raise EvaluationError(f"unknown comparison operator {operator!r}") from None
    if left is None or right is None:
        if operator == "==":
            return left is right
        if operator == "!=":
            return left is not right
        return False
    try:
        return op(float(left), float(right))
    except (TypeError, ValueError):
        return op(str(left), str(right))


# -- metadata predicates ------------------------------------------------------


class MetaPredicate:
    """Base class: decides whether a sample's metadata qualifies."""

    def __call__(self, meta: Metadata) -> bool:
        raise NotImplementedError

    def __and__(self, other: "MetaPredicate") -> "MetaPredicate":
        return MetaAnd(self, other)

    def __or__(self, other: "MetaPredicate") -> "MetaPredicate":
        return MetaOr(self, other)

    def __invert__(self) -> "MetaPredicate":
        return MetaNot(self)

    def attributes(self) -> set:
        """Metadata attribute names the predicate reads (for optimizers)."""
        return set()


class MetaCompare(MetaPredicate):
    """``attribute <op> constant``: true when any value satisfies it."""

    def __init__(self, attribute: str, operator: str, value: Any) -> None:
        if operator not in _OPERATORS:
            raise EvaluationError(f"unknown comparison operator {operator!r}")
        self.attribute = attribute
        self.operator = operator
        self.value = value

    def __call__(self, meta: Metadata) -> bool:
        values = meta.values(self.attribute)
        if not values:
            # An absent attribute satisfies only '!='.
            return self.operator == "!="
        return any(compare(v, self.operator, self.value) for v in values)

    def attributes(self) -> set:
        return {self.attribute}

    def __repr__(self) -> str:
        return f"MetaCompare({self.attribute} {self.operator} {self.value!r})"


class MetaExists(MetaPredicate):
    """True when the sample carries the attribute at all."""

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute

    def __call__(self, meta: Metadata) -> bool:
        return self.attribute in meta

    def attributes(self) -> set:
        return {self.attribute}


class MetaAnd(MetaPredicate):
    def __init__(self, left: MetaPredicate, right: MetaPredicate) -> None:
        self.left, self.right = left, right

    def __call__(self, meta: Metadata) -> bool:
        return self.left(meta) and self.right(meta)

    def attributes(self) -> set:
        return self.left.attributes() | self.right.attributes()


class MetaOr(MetaPredicate):
    def __init__(self, left: MetaPredicate, right: MetaPredicate) -> None:
        self.left, self.right = left, right

    def __call__(self, meta: Metadata) -> bool:
        return self.left(meta) or self.right(meta)

    def attributes(self) -> set:
        return self.left.attributes() | self.right.attributes()


class MetaNot(MetaPredicate):
    def __init__(self, inner: MetaPredicate) -> None:
        self.inner = inner

    def __call__(self, meta: Metadata) -> bool:
        return not self.inner(meta)

    def attributes(self) -> set:
        return self.inner.attributes()


class MetaAll(MetaPredicate):
    """The always-true predicate (SELECT with no metadata condition)."""

    def __call__(self, meta: Metadata) -> bool:
        return True


# -- region predicates --------------------------------------------------------


class RegionPredicate:
    """Base class: decides whether a region qualifies.

    Region predicates are *bound* to a schema before evaluation so
    variable attribute lookups become tuple indexing.
    """

    def bind(self, schema: RegionSchema) -> Callable[[GenomicRegion], bool]:
        raise NotImplementedError

    def __and__(self, other: "RegionPredicate") -> "RegionPredicate":
        return RegionAnd(self, other)

    def __or__(self, other: "RegionPredicate") -> "RegionPredicate":
        return RegionOr(self, other)

    def __invert__(self) -> "RegionPredicate":
        return RegionNot(self)

    def attributes(self) -> set:
        return set()


def _fixed_getter(name: str) -> Callable[[GenomicRegion], Any]:
    if name == "chrom" or name == "chr":
        return lambda r: r.chrom
    if name == "left" or name == "start":
        return lambda r: r.left
    if name == "right" or name == "stop":
        return lambda r: r.right
    if name == "strand":
        return lambda r: r.strand
    raise EvaluationError(f"not a fixed region attribute: {name!r}")


class RegionCompare(RegionPredicate):
    """``attribute <op> constant`` over fixed or variable attributes."""

    _FIXED_ALIASES = ("chrom", "chr", "left", "start", "right", "stop", "strand")

    def __init__(self, attribute: str, operator: str, value: Any) -> None:
        if operator not in _OPERATORS:
            raise EvaluationError(f"unknown comparison operator {operator!r}")
        self.attribute = attribute
        self.operator = operator
        self.value = value

    def bind(self, schema: RegionSchema) -> Callable[[GenomicRegion], bool]:
        operator, value = self.operator, self.value
        if self.attribute in self._FIXED_ALIASES:
            getter = _fixed_getter(self.attribute)
        else:
            index = schema.index_of(self.attribute)
            getter = lambda r: r.values[index]  # noqa: E731
        return lambda region: compare(getter(region), operator, value)

    def attributes(self) -> set:
        return {self.attribute}

    def __repr__(self) -> str:
        return f"RegionCompare({self.attribute} {self.operator} {self.value!r})"


class RegionAnd(RegionPredicate):
    def __init__(self, left: RegionPredicate, right: RegionPredicate) -> None:
        self.left, self.right = left, right

    def bind(self, schema: RegionSchema) -> Callable[[GenomicRegion], bool]:
        bound_left, bound_right = self.left.bind(schema), self.right.bind(schema)
        return lambda region: bound_left(region) and bound_right(region)

    def attributes(self) -> set:
        return self.left.attributes() | self.right.attributes()


class RegionOr(RegionPredicate):
    def __init__(self, left: RegionPredicate, right: RegionPredicate) -> None:
        self.left, self.right = left, right

    def bind(self, schema: RegionSchema) -> Callable[[GenomicRegion], bool]:
        bound_left, bound_right = self.left.bind(schema), self.right.bind(schema)
        return lambda region: bound_left(region) or bound_right(region)

    def attributes(self) -> set:
        return self.left.attributes() | self.right.attributes()


class RegionNot(RegionPredicate):
    def __init__(self, inner: RegionPredicate) -> None:
        self.inner = inner

    def bind(self, schema: RegionSchema) -> Callable[[GenomicRegion], bool]:
        bound = self.inner.bind(schema)
        return lambda region: not bound(region)

    def attributes(self) -> set:
        return self.inner.attributes()


class RegionAll(RegionPredicate):
    """The always-true region predicate."""

    def bind(self, schema: RegionSchema) -> Callable[[GenomicRegion], bool]:
        return lambda region: True
