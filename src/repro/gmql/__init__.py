"""GenoMetric Query Language (GMQL).

"A closed algebra over datasets: results are expressed as new datasets
derived from their operands" (paper, section 2).  The package has three
layers:

* :mod:`repro.gmql.operators` -- the algebra itself, as Python functions;
* :mod:`repro.gmql.lang` -- the textual language: lexer, parser, compiler
  to logical plans, optimizer and interpreter;
* support modules: predicates, aggregates, genometric conditions and
  provenance.

The one-call entry point for textual queries is :func:`repro.gmql.run`.
"""

from repro.gmql.aggregates import (
    Aggregate,
    Avg,
    Bag,
    Count,
    Max,
    Median,
    Min,
    Std,
    Sum,
    aggregate_named,
    available_aggregates,
    register_aggregate,
)
from repro.gmql.genometric import (
    Downstream,
    DistGreater,
    DistLess,
    GenometricCondition,
    MinDistance,
    Upstream,
)
from repro.gmql.operators import (
    SemiJoin,
    cover,
    difference,
    extend,
    group,
    join,
    map_regions,
    materialize,
    merge,
    order,
    project,
    select,
    union,
)
from repro.gmql.predicates import (
    MetaAll,
    MetaAnd,
    MetaCompare,
    MetaExists,
    MetaNot,
    MetaOr,
    MetaPredicate,
    RegionAll,
    RegionAnd,
    RegionCompare,
    RegionNot,
    RegionOr,
    RegionPredicate,
)
from repro.gmql.provenance import ProvenanceRecord, explain, lineage, record


def run(program: str, datasets: dict, engine: str = "naive") -> dict:
    """Parse, compile, optimize and execute a textual GMQL program.

    Parameters
    ----------
    program:
        GMQL text, e.g. the paper's three-operation example.
    datasets:
        Source datasets by the names the program refers to.
    engine:
        Execution backend name (see :mod:`repro.engine`).

    Returns the materialised variables as ``{name: Dataset}``; when the
    program has no MATERIALIZE statement, all assigned variables are
    returned.
    """
    from repro.gmql.lang import execute

    return execute(program, datasets, engine=engine)


def run_with_stats(
    program: str, datasets: dict, engine: str = "naive"
) -> tuple:
    """Like :func:`run`, but also returns the backend's
    :class:`~repro.engine.base.EngineStats` (per-operator timings and
    output volumes), for profiling and the framework-comparison benches.
    """
    from repro.engine.dispatch import get_backend
    from repro.gmql.lang import Interpreter, compile_program, optimize

    backend = get_backend(engine)
    compiled = optimize(compile_program(program))
    results = Interpreter(backend, datasets).run_program(compiled)
    return results, backend.stats


def run_analyzed(
    program: str, datasets: dict, engine: str = "auto", context=None
) -> tuple:
    """Run under EXPLAIN ANALYZE: ``(results, physical_program, context)``.

    The physical program carries per-node backend choices and estimated
    vs actual cardinalities/timings
    (:meth:`~repro.gmql.lang.physical.PhysicalProgram.explain` with
    ``analyze=True`` renders them); the context holds the span trace and
    metrics registry.
    """
    from repro.gmql.lang import explain_analyze

    return explain_analyze(program, datasets, engine=engine, context=context)


__all__ = [
    "Aggregate",
    "Avg",
    "Bag",
    "Count",
    "DistGreater",
    "DistLess",
    "Downstream",
    "GenometricCondition",
    "Max",
    "Median",
    "MetaAll",
    "MetaAnd",
    "MetaCompare",
    "MetaExists",
    "MetaNot",
    "MetaOr",
    "MetaPredicate",
    "Min",
    "MinDistance",
    "ProvenanceRecord",
    "RegionAll",
    "RegionAnd",
    "RegionCompare",
    "RegionNot",
    "RegionOr",
    "RegionPredicate",
    "SemiJoin",
    "Std",
    "Sum",
    "Upstream",
    "aggregate_named",
    "available_aggregates",
    "cover",
    "difference",
    "explain",
    "extend",
    "group",
    "join",
    "lineage",
    "map_regions",
    "materialize",
    "merge",
    "order",
    "project",
    "record",
    "register_aggregate",
    "run",
    "run_analyzed",
    "run_with_stats",
    "select",
    "union",
]
