"""GMQL aggregate functions.

Aggregates appear in MAP (``peak_count AS COUNT``), EXTEND, GROUP, COVER
and the genome-space builders.  Each aggregate reduces a list of region
attribute values to one value and declares its result type so result
schemas stay typed.  ``None`` inputs (missing values) are skipped, matching
SQL semantics; an aggregate over an empty or all-missing list returns
``None`` -- except COUNT, which returns 0.

Float reductions (SUM, AVG, STD) are defined against ``math.fsum``:
the correctly rounded value of the exact real sum.  fsum is
order-independent, which is what lets the columnar engine's exact
vectorised summation (:mod:`repro.store.exact_sum`) be bit-identical
to this reference implementation instead of merely close.  Integer
inputs keep Python's arbitrary-precision ``sum`` (and its ``int``
result type).
"""

from __future__ import annotations

import math
import statistics
from typing import Any, Sequence

from repro.errors import EvaluationError
from repro.gdm import AttributeType, FLOAT, INT, STR

#: Merge-exactness classes (ordered lattice, weakest guarantee last).
#: They answer one question for the effect analysis
#: (:mod:`repro.gmql.lang.effects`): if an aggregate's input bag is
#: split into partials, can the partial results be recombined exactly?
REORDERABLE = "reorderable"   # any regrouping/reordering is exact (MIN/MAX)
EXACT_INT = "exact-int"       # exact under re-association (integer arithmetic)
ORDERED = "ordered"           # fsum-order-sensitive: partials never re-merge


class Aggregate:
    """One aggregate function: a name, a result type, and a reducer.

    ``requires_attribute`` distinguishes COUNT-like aggregates (which
    reduce the bag of regions itself) from value aggregates (which reduce
    one attribute's values).
    """

    name = "ABSTRACT"
    requires_attribute = True

    def result_type(self, input_type: AttributeType) -> AttributeType:
        """Result type given the aggregated attribute's type."""
        return input_type

    def compute(self, values: Sequence[Any]) -> Any:
        """Reduce *values* (missing values not yet filtered).  Override."""
        raise NotImplementedError

    def merge_class(self, input_type: AttributeType | None = None) -> str:
        """Exactness class of recombining partial results of this
        aggregate: :data:`REORDERABLE`, :data:`EXACT_INT` or
        :data:`ORDERED`.  The conservative default (``ORDERED``) keeps
        custom registered aggregates safe: the effect analysis will
        never claim a partial merge is exact unless the aggregate
        declares it."""
        return ORDERED

    @staticmethod
    def present(values: Sequence[Any]) -> list:
        """The non-missing values."""
        return [v for v in values if v is not None]

    def __repr__(self) -> str:
        return f"Aggregate({self.name})"


class Count(Aggregate):
    """Number of regions (missing values still count: COUNT is per region)."""

    name = "COUNT"
    requires_attribute = False

    def result_type(self, input_type: AttributeType) -> AttributeType:
        return INT

    def compute(self, values: Sequence[Any]) -> int:
        return len(values)

    def merge_class(self, input_type: AttributeType | None = None) -> str:
        return EXACT_INT


def _exact_sum(present: list) -> Any:
    """``math.fsum`` for float inputs, exact ``int`` sum otherwise."""
    if any(isinstance(value, float) for value in present):
        return math.fsum(present)
    return sum(present)


class Sum(Aggregate):
    name = "SUM"

    def compute(self, values: Sequence[Any]) -> Any:
        present = self.present(values)
        return _exact_sum(present) if present else None

    def merge_class(self, input_type: AttributeType | None = None) -> str:
        # Integer sums re-associate exactly; float (or unknown-typed)
        # inputs are fsum-defined, and fsum-of-fsums is not fsum.
        return EXACT_INT if input_type is INT else ORDERED


class Avg(Aggregate):
    name = "AVG"

    def result_type(self, input_type: AttributeType) -> AttributeType:
        return FLOAT

    def compute(self, values: Sequence[Any]) -> Any:
        present = self.present(values)
        return _exact_sum(present) / len(present) if present else None

    def merge_class(self, input_type: AttributeType | None = None) -> str:
        # Over ints the numerator is an exact integer sum (one final
        # division); over floats it inherits fsum's order sensitivity.
        return EXACT_INT if input_type is INT else ORDERED


class Min(Aggregate):
    name = "MIN"

    def compute(self, values: Sequence[Any]) -> Any:
        present = self.present(values)
        return min(present) if present else None

    def merge_class(self, input_type: AttributeType | None = None) -> str:
        return REORDERABLE


class Max(Aggregate):
    name = "MAX"

    def compute(self, values: Sequence[Any]) -> Any:
        present = self.present(values)
        return max(present) if present else None

    def merge_class(self, input_type: AttributeType | None = None) -> str:
        return REORDERABLE


class Median(Aggregate):
    name = "MEDIAN"

    def result_type(self, input_type: AttributeType) -> AttributeType:
        return FLOAT

    def compute(self, values: Sequence[Any]) -> Any:
        present = self.present(values)
        return float(statistics.median(present)) if present else None


class Std(Aggregate):
    """Population standard deviation."""

    name = "STD"

    def result_type(self, input_type: AttributeType) -> AttributeType:
        return FLOAT

    def compute(self, values: Sequence[Any]) -> Any:
        present = self.present(values)
        if not present:
            return None
        if len(present) == 1:
            return 0.0
        mean = _exact_sum(present) / len(present)
        return math.sqrt(
            _exact_sum([(v - mean) * (v - mean) for v in present])
            / len(present)
        )


class Bag(Aggregate):
    """Space-joined sorted distinct values (GMQL's BAG)."""

    name = "BAG"

    def result_type(self, input_type: AttributeType) -> AttributeType:
        return STR

    def compute(self, values: Sequence[Any]) -> Any:
        present = self.present(values)
        if not present:
            return None
        return " ".join(sorted({str(v) for v in present}))


_REGISTRY: dict = {}


def register_aggregate(aggregate: Aggregate) -> None:
    """Register an aggregate under its name (upper-cased)."""
    _REGISTRY[aggregate.name.upper()] = aggregate


def aggregate_named(name: str) -> Aggregate:
    """Look up an aggregate by name (case-insensitive)."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise EvaluationError(
            f"unknown aggregate {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def available_aggregates() -> tuple:
    """Sorted names of all registered aggregates."""
    return tuple(sorted(_REGISTRY))


for _aggregate in (Count(), Sum(), Avg(), Min(), Max(), Median(), Std(), Bag()):
    register_aggregate(_aggregate)
