"""Lexer for the textual GMQL dialect.

Hand-written scanner producing :class:`~repro.gmql.lang.tokens.Token`
records with line/column positions for error reporting.  Comments run from
``#`` or ``//`` to end of line.  Numbers support integers, decimals and
scientific notation (``1e-5`` -- p-values are first-class citizens here).
Identifiers may contain dots (``left.cell``) so prefixed metadata
attributes parse naturally.
"""

from __future__ import annotations

from repro.errors import GmqlSyntaxError
from repro.gmql.lang.tokens import (
    EOF,
    IDENT,
    KEYWORD,
    KEYWORDS,
    NUMBER,
    STRING,
    SYMBOL,
    SYMBOLS,
    Token,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_BODY = _IDENT_START | frozenset("0123456789.")
_DIGITS = frozenset("0123456789")


def tokenize(text: str) -> list:
    """Tokenise a GMQL program; raises :class:`GmqlSyntaxError` on bad input."""
    tokens: list = []
    position = 0
    line = 1
    line_start = 0
    length = len(text)

    def column() -> int:
        return position - line_start + 1

    while position < length:
        ch = text[position]
        # Whitespace / newlines.
        if ch == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        if ch in " \t\r":
            position += 1
            continue
        # Comments.
        if ch == "#" or text.startswith("//", position):
            while position < length and text[position] != "\n":
                position += 1
            continue
        # Strings (single or double quoted).
        if ch in "'\"":
            quote = ch
            start_column = column()
            position += 1
            start = position
            while position < length and text[position] != quote:
                if text[position] == "\n":
                    raise GmqlSyntaxError(
                        "unterminated string literal", line, start_column
                    )
                position += 1
            if position >= length:
                raise GmqlSyntaxError(
                    "unterminated string literal", line, start_column
                )
            tokens.append(Token(STRING, text[start:position], line, start_column))
            position += 1
            continue
        # Numbers (integer, decimal, scientific).
        if ch in _DIGITS or (
            ch == "." and position + 1 < length and text[position + 1] in _DIGITS
        ):
            start = position
            start_column = column()
            position += 1
            while position < length and text[position] in _DIGITS:
                position += 1
            if position < length and text[position] == ".":
                position += 1
                while position < length and text[position] in _DIGITS:
                    position += 1
            if position < length and text[position] in "eE":
                mark = position
                position += 1
                if position < length and text[position] in "+-":
                    position += 1
                if position < length and text[position] in _DIGITS:
                    while position < length and text[position] in _DIGITS:
                        position += 1
                else:
                    position = mark  # not an exponent after all
            tokens.append(
                Token(NUMBER, text[start:position], line, start_column)
            )
            continue
        # Identifiers / keywords.
        if ch in _IDENT_START:
            start = position
            start_column = column()
            position += 1
            while position < length and text[position] in _IDENT_BODY:
                position += 1
            word = text[start:position]
            if word.upper() in KEYWORDS and "." not in word:
                tokens.append(Token(KEYWORD, word.upper(), line, start_column))
            else:
                tokens.append(Token(IDENT, word, line, start_column))
            continue
        # Symbols (longest first).
        for symbol in SYMBOLS:
            if text.startswith(symbol, position):
                tokens.append(Token(SYMBOL, symbol, line, column()))
                position += len(symbol)
                break
        else:
            raise GmqlSyntaxError(f"unexpected character {ch!r}", line, column())

    tokens.append(Token(EOF, "", line, column()))
    return tokens
