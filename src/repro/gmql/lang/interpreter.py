"""Plan interpreter: evaluate a logical plan DAG on an execution backend.

Shared sub-plans are computed once (memoised by node identity), then every
output plan is materialised under its output name.  The interpreter is the
only component that touches both plans and engines; it contains no
operator logic of its own.
"""

from __future__ import annotations

from repro.errors import GmqlCompileError
from repro.gdm import Dataset
from repro.gmql.lang.plan import (
    CompiledProgram,
    CoverPlan,
    DifferencePlan,
    ExtendPlan,
    GroupPlan,
    JoinPlan,
    MapPlan,
    MergePlan,
    OrderPlan,
    PlanNode,
    ProjectPlan,
    ScanPlan,
    SelectPlan,
    UnionPlan,
)


class Interpreter:
    """Evaluates plans against source datasets using one backend."""

    def __init__(self, backend, datasets: dict) -> None:
        self._backend = backend
        self._datasets = datasets
        self._memo: dict = {}

    def evaluate(self, node: PlanNode) -> Dataset:
        """Evaluate one plan node (memoised by identity)."""
        if id(node) in self._memo:
            return self._memo[id(node)]
        result = self._dispatch(node)
        if node.result_name:
            result = result.with_name(node.result_name)
        self._memo[id(node)] = result
        return result

    def _dispatch(self, node: PlanNode) -> Dataset:
        if isinstance(node, ScanPlan):
            try:
                return self._datasets[node.dataset_name]
            except KeyError:
                raise GmqlCompileError(
                    f"unknown source dataset {node.dataset_name!r}; "
                    f"available: {sorted(self._datasets)}"
                ) from None
        if isinstance(node, SelectPlan):
            semijoin_data = (
                self.evaluate(node.semijoin_plan)
                if node.semijoin_plan is not None
                else None
            )
            return self._backend.run_select(
                node, self.evaluate(node.child), semijoin_data
            )
        if isinstance(node, ProjectPlan):
            return self._backend.run_project(node, self.evaluate(node.child))
        if isinstance(node, ExtendPlan):
            return self._backend.run_extend(node, self.evaluate(node.child))
        if isinstance(node, MergePlan):
            return self._backend.run_merge(node, self.evaluate(node.child))
        if isinstance(node, GroupPlan):
            return self._backend.run_group(node, self.evaluate(node.child))
        if isinstance(node, OrderPlan):
            return self._backend.run_order(node, self.evaluate(node.child))
        if isinstance(node, UnionPlan):
            return self._backend.run_union(
                node, self.evaluate(node.left), self.evaluate(node.right)
            )
        if isinstance(node, DifferencePlan):
            return self._backend.run_difference(
                node, self.evaluate(node.left), self.evaluate(node.right)
            )
        if isinstance(node, CoverPlan):
            return self._backend.run_cover(node, self.evaluate(node.child))
        if isinstance(node, MapPlan):
            return self._backend.run_map(
                node,
                self.evaluate(node.reference),
                self.evaluate(node.experiment),
            )
        if isinstance(node, JoinPlan):
            return self._backend.run_join(
                node,
                self.evaluate(node.anchor),
                self.evaluate(node.experiment),
            )
        raise GmqlCompileError(f"cannot interpret plan node {node!r}")

    def run_program(self, compiled: CompiledProgram) -> dict:
        """Evaluate every output plan; returns ``{name: Dataset}``."""
        results = {}
        for output_name, node in compiled.outputs.items():
            results[output_name] = self.evaluate(node).with_name(output_name)
        return results
