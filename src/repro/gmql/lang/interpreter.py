"""Plan interpreter: evaluate plans on execution backends.

Programs are lowered to *physical* plans first
(:mod:`repro.gmql.lang.physical`): every node carries a cardinality
estimate and a chosen kernel backend.  Under the ``auto`` engine the
interpreter routes each node to its annotated backend; under a named
engine every node runs on the one backend it was constructed with, which
preserves the historical behaviour.

Shared sub-plans are computed once (memoised by logical-node identity),
then every output plan is materialised under its output name.  Execution
is observed through an :class:`~repro.engine.context.ExecutionContext`:
one nested span per plan node (wall time, input/output region and sample
counts, backend), cancellation checked before every kernel.  The
interpreter is the only component that touches both plans and engines;
it contains no operator logic of its own.
"""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.errors import GmqlCompileError
from repro.gdm import Dataset
from repro.gmql.lang.physical import PhysicalNode, PhysicalProgram, plan_program
from repro.gmql.lang.plan import (
    CompiledProgram,
    CoverPlan,
    DifferencePlan,
    EmptyPlan,
    ExtendPlan,
    GroupPlan,
    JoinPlan,
    MapPlan,
    MergePlan,
    OrderPlan,
    PlanNode,
    ProjectPlan,
    ScanPlan,
    SelectPlan,
    UnionPlan,
)


class Interpreter:
    """Evaluates plans against source datasets.

    Parameters
    ----------
    backend:
        The engine the query runs on.  Backends exposing
        ``per_node_dispatch`` (the ``auto`` backend) are asked for a
        delegate per physical node; others execute every node themselves.
    context:
        Execution context (tracing, metrics, deadline, worker config); a
        fresh one is created when omitted.
    """

    def __init__(self, backend, datasets: dict, context=None) -> None:
        self._backend = backend
        self._datasets = datasets
        self.context = context if context is not None else ExecutionContext()
        bind = getattr(backend, "bind_context", None)
        if bind is not None:
            bind(self.context)
        self._memo: dict = {}

    # -- logical evaluation (kept for direct plan-node callers) -----------------

    def evaluate(self, node: PlanNode) -> Dataset:
        """Evaluate one logical plan node (memoised by identity)."""
        if id(node) in self._memo:
            return self._memo[id(node)]
        result = self._invoke(
            self._backend, node, lambda index: self.evaluate(node.children[index])
        )
        if node.result_name:
            result = result.with_name(node.result_name)
        self._memo[id(node)] = result
        return result

    def _scan(self, node: ScanPlan) -> Dataset:
        try:
            return self._datasets[node.dataset_name]
        except KeyError:
            raise GmqlCompileError(
                f"unknown source dataset {node.dataset_name!r}; "
                f"available: {sorted(self._datasets)}"
            ) from None

    def _empty(self, node: EmptyPlan) -> Dataset:
        """Materialise a statically-proven-empty result: right schema,
        zero samples, no kernel involved."""
        return Dataset(node.result_name or "empty", node.schema, ())

    def _invoke(self, backend, node: PlanNode, operand) -> Dataset:
        """Run one node's kernel on *backend*.

        ``operand(i)`` evaluates the node's i-th operand (in ``children``
        order); the logical and physical paths supply their own
        evaluators, so both share this single dispatch table.
        """
        if isinstance(node, ScanPlan):
            return self._scan(node)
        if isinstance(node, EmptyPlan):
            return self._empty(node)
        if isinstance(node, SelectPlan):
            semijoin_data = operand(1) if len(node.children) > 1 else None
            return backend.run_select(node, operand(0), semijoin_data)
        if isinstance(node, ProjectPlan):
            return backend.run_project(node, operand(0))
        if isinstance(node, ExtendPlan):
            return backend.run_extend(node, operand(0))
        if isinstance(node, MergePlan):
            return backend.run_merge(node, operand(0))
        if isinstance(node, GroupPlan):
            return backend.run_group(node, operand(0))
        if isinstance(node, OrderPlan):
            return backend.run_order(node, operand(0))
        if isinstance(node, UnionPlan):
            return backend.run_union(node, operand(0), operand(1))
        if isinstance(node, DifferencePlan):
            return backend.run_difference(node, operand(0), operand(1))
        if isinstance(node, CoverPlan):
            return backend.run_cover(node, operand(0))
        if isinstance(node, MapPlan):
            return backend.run_map(node, operand(0), operand(1))
        if isinstance(node, JoinPlan):
            return backend.run_join(node, operand(0), operand(1))
        raise GmqlCompileError(f"cannot interpret plan node {node!r}")

    # -- physical evaluation ----------------------------------------------------

    def _kernel_backend(self, physical: PhysicalNode):
        """The backend instance that executes one physical node."""
        if getattr(self._backend, "per_node_dispatch", False):
            return self._backend.delegate(physical.backend)
        return self._backend

    def evaluate_physical(self, physical: PhysicalNode) -> Dataset:
        """Evaluate one physical node (memoised by logical identity).

        When the context enables the result cache and the node carries a
        content-based fingerprint, the process-wide
        :func:`repro.store.cache.result_cache` is consulted first; a hit
        skips the kernel (and the whole subtree) entirely.  Scans are
        never cached -- they are already just dictionary lookups.
        """
        node = physical.logical
        if id(node) in self._memo:
            return self._memo[id(node)]
        if isinstance(node, EmptyPlan):
            # No kernel, no cache: build the empty result directly (the
            # "empty" backend name never exists as a real delegate).
            with self.context.span(
                physical.label(), backend="empty", pruned_by=node.pruned_by
            ) as span:
                result = self._empty(node)
                span.annotate(output_regions=0, output_samples=0)
            physical.actual_seconds = span.seconds
            physical.actual_regions = 0
            physical.actual_samples = 0
            physical.executed_backend = "empty"
            self._memo[id(node)] = result
            return result
        cache = None
        if (
            self.context.result_cache
            and physical.fingerprint is not None
            and not isinstance(node, ScanPlan)
            # Effect analysis proves cache safety: a node whose subtree
            # holds computed attributes has no stable content key, so it
            # is neither looked up nor stored.
            and (physical.effects is None or physical.effects.cache_safe)
        ):
            from repro.store.cache import result_cache

            cache = result_cache()
            hit = cache.get(physical.fingerprint)
            if hit is not None:
                self.context.metrics.increment("result_cache.hits")
                with self.context.span(
                    physical.label(), backend="cache", cached=True
                ) as span:
                    span.annotate(
                        output_regions=hit.region_count(),
                        output_samples=len(hit),
                    )
                physical.actual_seconds = span.seconds
                physical.actual_regions = hit.region_count()
                physical.actual_samples = len(hit)
                physical.executed_backend = "cache"
                physical.cached = True
                result = hit
                if node.result_name:
                    result = result.with_name(node.result_name)
                self._memo[id(node)] = result
                return result
            self.context.metrics.increment("result_cache.misses")
        backend = self._kernel_backend(physical)
        with self.context.span(
            physical.label(),
            backend=backend.name if not isinstance(node, ScanPlan) else "source",
            est_regions=int(physical.estimate.regions)
            if physical.estimate is not None
            else None,
        ) as span:
            # Operands are evaluated inside the span, so child spans nest
            # under this node and shared operands appear where first used.
            inputs: list = []

            def operand(index: int) -> Dataset:
                dataset = self.evaluate_physical(physical.children[index])
                inputs.append(dataset)
                span.annotate(
                    input_regions=sum(d.region_count() for d in inputs),
                    input_samples=sum(len(d) for d in inputs),
                )
                return dataset

            result = self._invoke(backend, node, operand)
            span.annotate(
                output_regions=result.region_count(),
                output_samples=len(result),
            )
        physical.actual_seconds = span.seconds
        physical.actual_regions = result.region_count()
        physical.actual_samples = len(result)
        physical.executed_backend = (
            "source" if isinstance(node, ScanPlan) else backend.name
        )
        if cache is not None:
            # Stored before the rename: a hit re-applies its own name.
            cache.put(physical.fingerprint, result)
        if node.result_name:
            result = result.with_name(node.result_name)
        self._memo[id(node)] = result
        return result

    def run_physical(self, program: PhysicalProgram) -> dict:
        """Execute a physical program; returns ``{name: Dataset}``."""
        results = {}
        for output_name, node in program.outputs.items():
            results[output_name] = self.evaluate_physical(node).with_name(
                output_name
            )
        return results

    def run_program(self, compiled: CompiledProgram) -> dict:
        """Plan physically and evaluate every output; ``{name: Dataset}``."""
        physical = self.plan(compiled)
        return self.run_physical(physical)

    def plan(self, compiled: CompiledProgram) -> PhysicalProgram:
        """Lower *compiled* to a physical program for this interpreter's
        backend and source datasets (also used by EXPLAIN ANALYZE)."""
        return plan_program(
            compiled, engine=self._backend.name, datasets=self._datasets
        )
