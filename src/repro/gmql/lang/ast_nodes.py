"""Abstract syntax tree of the textual GMQL dialect.

The AST mirrors the surface syntax; name resolution and predicate/aggregate
construction happen later, in :mod:`repro.gmql.lang.compiler`.  GMQL
operations take *variables* as operands (no inline nesting), matching the
paper's statement-per-line style::

    PROMS  = SELECT(annType == 'promoter') ANNOTATIONS;
    PEAKS  = SELECT(dataType == 'ChipSeq') ENCODE;
    RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
    MATERIALIZE RESULT;

Every node carries an optional :class:`~repro.gmql.lang.span.Span`
pointing back into the program text.  Spans are excluded from equality
and repr -- two nodes with the same content compare equal no matter
where they were parsed from -- and exist purely so the semantic
analyzer's diagnostics and the compiler's errors can render caret
frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.gmql.lang.span import Span


def _span_field():
    return field(default=None, compare=False, repr=False)


# -- boolean / comparison expressions (metadata and region predicates) --------


@dataclass(frozen=True)
class Comparison:
    """``attribute <op> literal``."""

    attribute: str
    operator: str
    value: Any
    span: Span | None = _span_field()


@dataclass(frozen=True)
class BoolAnd:
    left: Any
    right: Any


@dataclass(frozen=True)
class BoolOr:
    left: Any
    right: Any


@dataclass(frozen=True)
class BoolNot:
    inner: Any


# -- arithmetic expressions (PROJECT's new region attributes) -----------------


@dataclass(frozen=True)
class Num:
    value: float


@dataclass(frozen=True)
class Attr:
    name: str
    span: Span | None = _span_field()


@dataclass(frozen=True)
class BinOp:
    operator: str
    left: Any
    right: Any


# -- clauses -------------------------------------------------------------------


@dataclass(frozen=True)
class AggregateCall:
    """``name AS AGG(attribute)`` (attribute ``None`` for COUNT)."""

    target: str
    function: str
    attribute: str | None
    span: Span | None = _span_field()           # the target name
    function_span: Span | None = _span_field()  # the aggregate name
    attribute_span: Span | None = _span_field()


@dataclass(frozen=True)
class SemiJoinClause:
    """``semijoin: attr1, attr2 IN VAR`` (or ``NOT IN``)."""

    attributes: tuple
    variable: str
    negated: bool
    span: Span | None = _span_field()
    attribute_spans: tuple = _span_field()


@dataclass(frozen=True)
class BoundExpr:
    """A COVER accumulation bound.

    ``kind`` is ``"INT"`` (use :attr:`value`), ``"ANY"``, or ``"ALL"``
    (use ``offset``/``divisor``: bound = (ALL + offset) / divisor).
    """

    kind: str
    value: int = 0
    offset: int = 0
    divisor: int = 1
    span: Span | None = _span_field()


@dataclass(frozen=True)
class GenometricClause:
    """One genometric atom: kind in DLE/DGE/MD/UP/DOWN, with its argument."""

    kind: str
    argument: int | None = None
    span: Span | None = _span_field()


# -- operations ----------------------------------------------------------------


@dataclass(frozen=True)
class OpSelect:
    operand: str
    meta: Any = None
    region: Any = None
    semijoin: SemiJoinClause | None = None
    span: Span | None = _span_field()


@dataclass(frozen=True)
class OpProject:
    operand: str
    region_attributes: tuple | None = None  # None = keep all
    metadata_attributes: tuple | None = None
    new_region_attributes: tuple = ()  # of (name, arith expr)
    span: Span | None = _span_field()
    #: Spans parallel to the three attribute tuples above.
    region_attribute_spans: tuple = _span_field()
    metadata_attribute_spans: tuple = _span_field()
    new_attribute_spans: tuple = _span_field()


@dataclass(frozen=True)
class OpExtend:
    operand: str
    assignments: tuple = ()  # of AggregateCall
    span: Span | None = _span_field()


@dataclass(frozen=True)
class OpMerge:
    operand: str
    groupby: tuple = ()
    span: Span | None = _span_field()


@dataclass(frozen=True)
class OpGroup:
    operand: str
    meta_keys: tuple | None = None
    meta_aggregates: tuple = ()  # of AggregateCall
    region_aggregates: tuple = ()  # of AggregateCall
    span: Span | None = _span_field()


@dataclass(frozen=True)
class OpOrder:
    operand: str
    meta_keys: tuple = ()  # of (attribute, "ASC"/"DESC")
    top: int | None = None
    region_keys: tuple = ()
    region_top: int | None = None
    span: Span | None = _span_field()
    region_key_spans: tuple = _span_field()


@dataclass(frozen=True)
class OpUnion:
    left: str
    right: str
    span: Span | None = _span_field()


@dataclass(frozen=True)
class OpDifference:
    left: str
    right: str
    joinby: tuple = ()
    exact: bool = False
    span: Span | None = _span_field()


@dataclass(frozen=True)
class OpCover:
    operand: str
    variant: str = "COVER"
    min_acc: BoundExpr = BoundExpr("INT", 1)
    max_acc: BoundExpr = BoundExpr("ANY")
    groupby: tuple = ()
    span: Span | None = _span_field()


@dataclass(frozen=True)
class OpMap:
    reference: str
    experiment: str
    assignments: tuple = ()  # of AggregateCall; empty = default count
    joinby: tuple = ()
    span: Span | None = _span_field()


@dataclass(frozen=True)
class OpJoin:
    anchor: str
    experiment: str
    clauses: tuple = ()  # of GenometricClause
    output: str = "CAT"
    joinby: tuple = ()
    span: Span | None = _span_field()


# -- statements ----------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    variable: str
    operation: Any
    line: int = 0
    span: Span | None = _span_field()  # the assigned variable name


@dataclass(frozen=True)
class MaterializeStmt:
    variable: str
    target: str | None = None
    line: int = 0
    span: Span | None = _span_field()  # the materialised variable name


@dataclass(frozen=True)
class Program:
    statements: tuple = ()

    def materialized(self) -> tuple:
        """Variables named by MATERIALIZE statements, in order."""
        return tuple(
            s.variable for s in self.statements if isinstance(s, MaterializeStmt)
        )

    def assigned(self) -> tuple:
        """Variables assigned by the program, in order."""
        return tuple(
            s.variable for s in self.statements if isinstance(s, Assign)
        )
