"""Static semantic analysis for GMQL: schema/type inference and plan lints.

GMQL is a *closed* algebra over typed datasets (paper, section 2): the
output schema of every operator is a function of its input schemas, so a
whole program can be type-checked -- and several classes of mistakes
proven -- before a single region is read.  This module implements that
front-end:

* **Schema/type inference.**  :class:`Analyzer` propagates a
  :class:`RegionInfo` (attribute name -> GDM type) and a
  :class:`MetaInfo` (possible metadata attribute set) through every
  operation, implementing the paper's schema-merge rules: UNION column
  unification (clashing types are suffixed ``_right``), MAP/EXTEND/GROUP
  aggregate columns with the aggregate's declared result type, JOIN
  left/right metadata prefixing plus the ``dist`` column.  Inference is
  *open-world* by default -- an unknown source contributes an open
  schema that never triggers unknown-attribute findings -- and turns
  closed (exact) as soon as source schemas or datasets are supplied.

* **Diagnostics.**  A rule engine emits :class:`Diagnostic` records with
  stable ``GQL1xx`` codes, a severity, and a source
  :class:`~repro.gmql.lang.span.Span` for caret rendering.  See
  :data:`RULES` for the catalogue.

* **Provable facts.**  SELECTs whose metadata predicate is statically
  false over a fully-known schema are recorded as *empty variables*; the
  optimizer replaces them with :class:`~repro.gmql.lang.plan.EmptyPlan`
  leaves annotated ``pruned_by=GQL107``.

Truth of predicates is decided by interval reasoning over numeric
comparisons: a conjunction's per-attribute satisfying sets are
intersected (with the coordinate domains ``left/right >= 0``), and an
empty intersection proves the predicate false.  The reasoning is
deliberately one-sided where data could disagree: *always true* is only
claimed for always-present fixed coordinates, and metadata atoms (which
are multi-valued) are only decided when the attribute provably cannot
exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EvaluationError
from repro.gdm import BOOL, FLOAT, INT, STR, RegionSchema
from repro.gmql.aggregates import ORDERED, aggregate_named
from repro.gmql.lang import ast_nodes as ast
from repro.gmql.lang.span import Span, caret_frame

ERROR = "error"
WARNING = "warning"

#: Rule catalogue: code -> one-line description (rendered by ``repro
#: check --rules`` and the docs table; keep in sync with docs/LANGUAGE.md).
RULES = {
    "GQL101": "unknown region attribute",
    "GQL102": "unknown metadata attribute",
    "GQL103": "aggregate over an incompatible type",
    "GQL104": "UNION operands have conflicting schemas",
    "GQL105": "unsatisfiable genometric condition",
    "GQL106": "COVER accumulation bounds are provably empty",
    "GQL107": "predicate is always false",
    "GQL108": "predicate is always true",
    "GQL109": "strand-dependent clause over unstranded data",
    "GQL110": "JOIN without a distance bound",
    "GQL111": "dead operator: result never materialised",
    "GQL112": "duplicate result attribute name",
    "GQL113": "unknown or misused aggregate function",
    "GQL114": "variable misuse (reassignment, unknown MATERIALIZE)",
    "GQL120": "output aggregates across chromosomes (cannot shard)",
    "GQL121": "aggregate forces an ordered merge",
    "GQL122": "computed attributes disable result caching",
    "GQL123": "DIFFERENCE options disable morsel parallelism",
    "GQL124": "output cardinality has no static bound",
}

#: Rules only emitted by effect analysis (``--effects``): they describe
#: execution-strategy consequences, not correctness problems.
EFFECT_RULES = frozenset({
    "GQL120", "GQL121", "GQL122", "GQL123", "GQL124",
})

#: Fixed GDM region attributes (and their aliases) with their types.
_FIXED_REGION_TYPES = {
    "chrom": STR,
    "chr": STR,
    "left": INT,
    "start": INT,
    "right": INT,
    "stop": INT,
    "strand": STR,
}

#: Canonical coordinate names: ``start`` is ``left``, ``stop`` is ``right``.
_COORD_ALIASES = {"start": "left", "stop": "right", "chr": "chrom"}

#: Names usable inside PROJECT arithmetic expressions besides the schema.
_ARITH_ENV_NAMES = frozenset({"chrom", "left", "right", "strand", "length"})

#: Aggregates whose reducer needs numeric inputs.
_NUMERIC_AGGREGATES = frozenset({"SUM", "AVG", "MEDIAN", "STD"})

#: How many regions to inspect when probing a dataset for strandedness.
_STRAND_PROBE_LIMIT = 10_000

#: Sentinel: an attribute that provably cannot exist.
_MISSING = object()


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding: rule code, severity, message, source span."""

    code: str
    severity: str
    message: str
    span: Span | None = None
    variable: str | None = None

    def format(self, source: str | None = None) -> str:
        """Human-readable rendering; with *source*, adds a caret frame."""
        location = f" ({self.span.location()})" if self.span else ""
        text = f"{self.code} {self.severity}: {self.message}{location}"
        if source is not None and self.span is not None:
            frame = caret_frame(source, self.span)
            if frame:
                text = f"{text}\n{frame}"
        return text

    def to_dict(self) -> dict:
        """JSON form used by ``repro check --format json``."""
        out = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "rule": RULES.get(self.code, ""),
        }
        if self.span is not None:
            out["span"] = self.span.to_dict()
        if self.variable is not None:
            out["variable"] = self.variable
        return out


# -- inferred shapes -----------------------------------------------------------


@dataclass(frozen=True)
class RegionInfo:
    """What is statically known about a region schema.

    ``attrs`` is an ordered tuple of ``(name, AttributeType | None)``;
    ``None`` means the attribute exists but its type is unknown.  A
    *closed* info is exact: attributes not listed provably do not exist.
    An open info only promises that the listed attributes are present.
    """

    attrs: tuple = ()
    closed: bool = False

    def names(self) -> tuple:
        return tuple(name for name, __ in self.attrs)

    def get(self, name: str):
        """The attribute's type (``None`` = unknown type), or the
        :data:`_MISSING` sentinel when it provably cannot exist."""
        for attr, attr_type in self.attrs:
            if attr == name:
                return attr_type
        return _MISSING if self.closed else None

    def render(self) -> str:
        inner = ", ".join(
            f"{name}:{attr_type.name if attr_type else '?'}"
            for name, attr_type in self.attrs
        )
        if not self.closed:
            inner = f"{inner}, ..." if inner else "..."
        return "{" + inner + "}"

    def to_schema(self) -> RegionSchema | None:
        """A concrete :class:`RegionSchema`, when fully known."""
        if not self.closed:
            return None
        if any(attr_type is None for __, attr_type in self.attrs):
            return None
        return RegionSchema.of(*self.attrs)

    @classmethod
    def from_schema(cls, schema: RegionSchema) -> "RegionInfo":
        return cls(tuple((d.name, d.type) for d in schema), True)


@dataclass(frozen=True)
class MetaInfo:
    """The *possible* metadata attribute set of a variable.

    Metadata is open-world (any sample may carry any attribute) until an
    operation bounds it: PROJECT's ``metadata:`` list, GROUP's key+
    aggregate output, or a source dataset's observed attributes.  A
    closed set is an upper bound: attributes outside it cannot exist.
    """

    attrs: frozenset = frozenset()
    closed: bool = False

    def possible(self, name: str) -> bool:
        return (not self.closed) or name in self.attrs


@dataclass(frozen=True)
class VarInfo:
    """Everything inferred about one variable (or source operand)."""

    region: RegionInfo = field(default_factory=RegionInfo)
    meta: MetaInfo = field(default_factory=MetaInfo)
    #: ``True`` = some regions carry ``+``/``-``; ``False`` = provably
    #: all unstranded; ``None`` = unknown.
    stranded: bool | None = None

    def render(self) -> str:
        parts = [self.region.render()]
        if self.stranded is False:
            parts.append("unstranded")
        return " ".join(parts)


@dataclass
class Analysis:
    """The analyzer's output for one program."""

    diagnostics: tuple
    variables: dict            # variable -> VarInfo
    empty_variables: dict      # variable -> rule code proving emptiness
    sources: dict = field(default_factory=dict)  # source dataset -> VarInfo
    source: str | None = None  # program text, when analyzed from text

    def errors(self) -> tuple:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    def warnings(self) -> tuple:
        return tuple(d for d in self.diagnostics if d.severity == WARNING)

    @property
    def ok(self) -> bool:
        return not self.errors()

    def render(self, with_frames: bool = True) -> str:
        source = self.source if with_frames else None
        return "\n".join(d.format(source) for d in self.diagnostics)


# -- predicate truth: interval reasoning ---------------------------------------

TRUTH_TRUE = "true"
TRUTH_FALSE = "false"
TRUTH_UNKNOWN = "unknown"


class _Constraint:
    """Satisfying-value set of conjoined atoms over one attribute.

    A numeric interval (``lo``/``hi``, ``None`` = unbounded) plus a set
    of excluded values plus at most one non-numeric equality.  Only ever
    refined (conjunction); disjunction drops constraints entirely.
    """

    __slots__ = ("lo", "hi", "lo_open", "hi_open", "eq", "has_eq", "excluded")

    def __init__(self) -> None:
        self.lo = None
        self.hi = None
        self.lo_open = False
        self.hi_open = False
        self.eq = None
        self.has_eq = False
        self.excluded: set = set()

    def narrow_low(self, value, open_: bool) -> None:
        if self.lo is None or value > self.lo or (
            value == self.lo and open_ and not self.lo_open
        ):
            self.lo, self.lo_open = value, open_

    def narrow_high(self, value, open_: bool) -> None:
        if self.hi is None or value < self.hi or (
            value == self.hi and open_ and not self.hi_open
        ):
            self.hi, self.hi_open = value, open_

    def merge(self, other: "_Constraint") -> "_Constraint":
        merged = _Constraint()
        merged.lo, merged.lo_open = self.lo, self.lo_open
        merged.hi, merged.hi_open = self.hi, self.hi_open
        if other.lo is not None:
            merged.narrow_low(other.lo, other.lo_open)
        if other.hi is not None:
            merged.narrow_high(other.hi, other.hi_open)
        merged.excluded = self.excluded | other.excluded
        merged.eq, merged.has_eq = self.eq, self.has_eq
        if other.has_eq:
            if merged.has_eq and merged.eq != other.eq:
                # Two different non-numeric equalities: mark empty via an
                # impossible interval.
                merged.lo, merged.hi = 1, 0
            merged.eq, merged.has_eq = other.eq, True
        return merged

    def empty(self) -> bool:
        """True when no value can satisfy the constraint."""
        if self.has_eq and self.eq in self.excluded:
            return True
        if self.lo is None or self.hi is None:
            return False
        if self.lo > self.hi:
            return True
        if self.lo == self.hi:
            if self.lo_open or self.hi_open:
                return True
            if self.lo in self.excluded:
                return True
        return False

    def covers_all_from_zero(self) -> bool:
        """True when every value in ``[0, inf)`` satisfies the constraint."""
        if self.has_eq:
            return False
        if self.hi is not None:
            return False
        if self.lo is not None and (self.lo > 0 or (self.lo == 0 and self.lo_open)):
            return False
        return all(
            isinstance(v, (int, float)) and not isinstance(v, bool) and v < 0
            for v in self.excluded
        )


def _atom_constraint(operator: str, value) -> _Constraint | None:
    """The satisfying set of one comparison, or ``None`` when undecidable."""
    if value is None:
        return None  # bare existence test
    constraint = _Constraint()
    numeric = isinstance(value, (int, float)) and not isinstance(value, bool)
    if numeric:
        if operator == "==":
            constraint.narrow_low(value, False)
            constraint.narrow_high(value, False)
        elif operator == "<":
            constraint.narrow_high(value, True)
        elif operator == "<=":
            constraint.narrow_high(value, False)
        elif operator == ">":
            constraint.narrow_low(value, True)
        elif operator == ">=":
            constraint.narrow_low(value, False)
        elif operator == "!=":
            constraint.excluded.add(value)
        else:
            return None
        return constraint
    if operator == "==":
        constraint.eq, constraint.has_eq = value, True
        return constraint
    if operator == "!=":
        constraint.excluded.add(value)
        return constraint
    return None  # ordered comparison over strings: no reasoning


def _coordinate_domain(name: str) -> _Constraint | None:
    """The value domain of always-present numeric coordinates."""
    if name in ("left", "right"):
        domain = _Constraint()
        domain.narrow_low(0, False)
        return domain
    return None


def region_predicate_truth(node, info: RegionInfo) -> str:
    """Three-valued truth of a region predicate over schema *info*.

    Sound in both decided directions: ``false`` means no region can
    satisfy the predicate; ``true`` means every region does (only
    claimed for fixed, always-present coordinates).
    """
    truth, __ = _region_truth(node, info)
    return truth


def _region_truth(node, info: RegionInfo) -> tuple:
    """``(truth, constraints_by_attribute)``; constraints are only valid
    when the node sits in a positive conjunction context."""
    if isinstance(node, ast.Comparison):
        name = _COORD_ALIASES.get(node.attribute, node.attribute)
        constraint = _atom_constraint(node.operator, node.value)
        if constraint is None:
            return TRUTH_UNKNOWN, {}
        domain = _coordinate_domain(name)
        effective = constraint.merge(domain) if domain is not None else constraint
        if effective.empty():
            return TRUTH_FALSE, {}
        if domain is not None and constraint.covers_all_from_zero():
            return TRUTH_TRUE, {name: constraint}
        return TRUTH_UNKNOWN, {name: constraint}
    if isinstance(node, ast.BoolAnd):
        left_truth, left_cons = _region_truth(node.left, info)
        right_truth, right_cons = _region_truth(node.right, info)
        if TRUTH_FALSE in (left_truth, right_truth):
            return TRUTH_FALSE, {}
        merged = dict(left_cons)
        for name, constraint in right_cons.items():
            merged[name] = (
                merged[name].merge(constraint) if name in merged else constraint
            )
            effective = merged[name]
            domain = _coordinate_domain(name)
            if domain is not None:
                effective = effective.merge(domain)
            if effective.empty():
                return TRUTH_FALSE, {}
        if left_truth == right_truth == TRUTH_TRUE:
            return TRUTH_TRUE, merged
        return TRUTH_UNKNOWN, merged
    if isinstance(node, ast.BoolOr):
        left_truth, __ = _region_truth(node.left, info)
        right_truth, __ = _region_truth(node.right, info)
        if TRUTH_TRUE in (left_truth, right_truth):
            return TRUTH_TRUE, {}
        if left_truth == right_truth == TRUTH_FALSE:
            return TRUTH_FALSE, {}
        return TRUTH_UNKNOWN, {}
    if isinstance(node, ast.BoolNot):
        inner_truth, __ = _region_truth(node.inner, info)
        if inner_truth == TRUTH_TRUE:
            return TRUTH_FALSE, {}
        if inner_truth == TRUTH_FALSE:
            return TRUTH_TRUE, {}
        return TRUTH_UNKNOWN, {}
    return TRUTH_UNKNOWN, {}


def meta_predicate_truth(node, meta: MetaInfo) -> str:
    """Three-valued truth of a metadata predicate.

    Metadata attributes are multi-valued, so value constraints do not
    conjoin; atoms are decided only when the attribute provably cannot
    exist (an absent attribute satisfies only ``!=``).
    """
    if isinstance(node, ast.Comparison):
        if meta.possible(node.attribute):
            return TRUTH_UNKNOWN
        return TRUTH_TRUE if node.operator == "!=" else TRUTH_FALSE
    if isinstance(node, ast.BoolAnd):
        left = meta_predicate_truth(node.left, meta)
        right = meta_predicate_truth(node.right, meta)
        if TRUTH_FALSE in (left, right):
            return TRUTH_FALSE
        if left == right == TRUTH_TRUE:
            return TRUTH_TRUE
        return TRUTH_UNKNOWN
    if isinstance(node, ast.BoolOr):
        left = meta_predicate_truth(node.left, meta)
        right = meta_predicate_truth(node.right, meta)
        if TRUTH_TRUE in (left, right):
            return TRUTH_TRUE
        if left == right == TRUTH_FALSE:
            return TRUTH_FALSE
        return TRUTH_UNKNOWN
    if isinstance(node, ast.BoolNot):
        inner = meta_predicate_truth(node.inner, meta)
        if inner == TRUTH_TRUE:
            return TRUTH_FALSE
        if inner == TRUTH_FALSE:
            return TRUTH_TRUE
        return TRUTH_UNKNOWN
    return TRUTH_UNKNOWN


def _predicate_span(node) -> Span | None:
    """The span of the first positioned atom inside a predicate."""
    if isinstance(node, ast.Comparison):
        return node.span
    if isinstance(node, (ast.BoolAnd, ast.BoolOr)):
        return _predicate_span(node.left) or _predicate_span(node.right)
    if isinstance(node, ast.BoolNot):
        return _predicate_span(node.inner)
    return None


def _predicate_attributes(node):
    """``(attribute, span)`` pairs of every comparison in a predicate."""
    if isinstance(node, ast.Comparison):
        yield node.attribute, node.span
    elif isinstance(node, (ast.BoolAnd, ast.BoolOr)):
        yield from _predicate_attributes(node.left)
        yield from _predicate_attributes(node.right)
    elif isinstance(node, ast.BoolNot):
        yield from _predicate_attributes(node.inner)


# -- dataset probing -----------------------------------------------------------


def _dataset_var_info(dataset) -> VarInfo:
    """Exact :class:`VarInfo` for an in-memory dataset."""
    meta_attrs: set = set()
    for sample in dataset:
        meta_attrs.update(sample.meta.attributes())
    stranded: bool | None = False
    probed = 0
    for sample in dataset:
        for region in sample.regions:
            if region.strand in ("+", "-"):
                stranded = True
                break
            probed += 1
            if probed >= _STRAND_PROBE_LIMIT:
                stranded = None  # too big to prove unstranded
                break
        if stranded is not False:
            break
    return VarInfo(
        RegionInfo.from_schema(dataset.schema),
        MetaInfo(frozenset(meta_attrs), True),
        stranded,
    )


# -- the analyzer --------------------------------------------------------------


def _operand_names(op) -> tuple:
    """The variable/source names an operation reads, in operand order."""
    if isinstance(op, ast.OpSelect):
        names = [op.operand]
        if op.semijoin is not None:
            names.append(op.semijoin.variable)
        return tuple(names)
    if isinstance(op, (ast.OpUnion, ast.OpDifference)):
        return (op.left, op.right)
    if isinstance(op, ast.OpMap):
        return (op.reference, op.experiment)
    if isinstance(op, ast.OpJoin):
        return (op.anchor, op.experiment)
    return (op.operand,)


@dataclass(frozen=True)
class _EffectFacts:
    """Effect-relevant lineage facts of one variable (``--effects``).

    Each field records the *first* offending operator in the variable's
    lineage as ``(operator name, span)``, mirroring what
    :mod:`repro.gmql.lang.effects` infers over compiled plans -- but at
    the source level, where diagnostics can point at a line.
    """

    breaker: tuple | None = None        # cross-chromosome aggregation
    unbounded_join: tuple | None = None  # JOIN with no DLE/MD clause


class Analyzer:
    """One-program semantic analyzer.

    Parameters
    ----------
    schemas:
        ``{source_name: RegionSchema}`` -- known source schemas (e.g.
        published by federation hosts).  Metadata stays open.
    datasets:
        ``{source_name: Dataset}`` -- in-memory sources; provides exact
        region schemas, the observed metadata attribute set, and
        strandedness.  Takes precedence over *schemas*.
    effects:
        Enable the GQL120-124 effect diagnostics: findings about
        execution strategy (shardability, merge exactness, cache
        safety, cardinality bounds) rather than correctness.
    """

    def __init__(
        self,
        schemas: dict | None = None,
        datasets: dict | None = None,
        effects: bool = False,
    ):
        self._sources: dict = {}
        for name, schema in (schemas or {}).items():
            self._sources[name] = VarInfo(RegionInfo.from_schema(schema))
        for name, dataset in (datasets or {}).items():
            self._sources[name] = _dataset_var_info(dataset)
        self._vars: dict = {}
        self._used_sources: set = set()
        self._empty: dict = {}
        self._diagnostics: list = []
        self._variable: str | None = None  # statement being analyzed
        self._effects = effects
        self._facts: dict = {}  # variable -> _EffectFacts

    # -- plumbing -------------------------------------------------------------

    def _emit(
        self, code: str, severity: str, message: str, span: Span | None
    ) -> None:
        self._diagnostics.append(
            Diagnostic(code, severity, message, span, self._variable)
        )

    def _operand(self, name: str) -> VarInfo:
        if name in self._vars:
            return self._vars[name]
        self._used_sources.add(name)
        if name in self._sources:
            return self._sources[name]
        return VarInfo()  # unknown source: fully open

    # -- entry point ----------------------------------------------------------

    def analyze(self, program: ast.Program) -> Analysis:
        for statement in program.statements:
            if not isinstance(statement, ast.Assign):
                continue
            self._variable = statement.variable
            if statement.variable in self._vars:
                self._emit(
                    "GQL114",
                    ERROR,
                    f"variable {statement.variable!r} assigned twice",
                    statement.span,
                )
                continue
            if statement.variable in self._used_sources:
                self._emit(
                    "GQL114",
                    ERROR,
                    f"variable {statement.variable!r} was already used as a "
                    f"source dataset",
                    statement.span,
                )
                continue
            self._vars[statement.variable] = self._operation(statement.operation)
            if self._effects:
                self._facts[statement.variable] = self._operation_facts(
                    statement.operation
                )
        self._variable = None
        self._check_materialize(program)
        sources = {
            name: self._sources.get(name, VarInfo())
            for name in self._used_sources
        }
        return Analysis(
            tuple(self._diagnostics), dict(self._vars), dict(self._empty),
            sources,
        )

    def _operation_facts(self, op) -> _EffectFacts:
        """Effect facts of one assignment: operand lineage plus the
        operation's own contribution (the *first* offender wins, so the
        diagnostic points at the root cause)."""
        breaker = None
        unbounded = None
        for name in _operand_names(op):
            facts = self._facts.get(name)
            if facts is None:
                continue
            breaker = breaker or facts.breaker
            unbounded = unbounded or facts.unbounded_join
        if breaker is None and isinstance(
            op, (ast.OpExtend, ast.OpMerge, ast.OpOrder, ast.OpGroup)
        ):
            breaker = (type(op).__name__[2:].upper(), op.span)
        if unbounded is None and isinstance(op, ast.OpJoin):
            if op.clauses and not any(
                c.kind in ("DLE", "MD") for c in op.clauses
            ):
                unbounded = ("JOIN", op.span)
        return _EffectFacts(breaker, unbounded)

    def _check_materialize(self, program: ast.Program) -> None:
        materialized = []
        for statement in program.statements:
            if not isinstance(statement, ast.MaterializeStmt):
                continue
            if statement.variable not in self._vars:
                self._emit(
                    "GQL114",
                    ERROR,
                    f"MATERIALIZE of unknown variable {statement.variable!r}",
                    statement.span,
                )
                continue
            materialized.append(statement.variable)
            self._check_output_effects(statement)
        if not materialized:
            return
        # Reachability from the materialised roots through operand edges.
        dependencies = {}
        spans = {}
        for statement in program.statements:
            if isinstance(statement, ast.Assign):
                dependencies.setdefault(
                    statement.variable, _operand_names(statement.operation)
                )
                spans.setdefault(statement.variable, statement.span)
        reachable: set = set()
        frontier = [v for v in materialized]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            frontier.extend(
                n for n in dependencies.get(name, ()) if n in dependencies
            )
        for name in dependencies:
            if name not in reachable:
                self._emit(
                    "GQL111",
                    WARNING,
                    f"variable {name!r} never reaches a MATERIALIZE; "
                    f"the operator is dead code",
                    spans.get(name),
                )

    def _check_output_effects(self, statement) -> None:
        """GQL120/GQL124: per-output shardability and bound findings."""
        if not self._effects:
            return
        facts = self._facts.get(statement.variable)
        if facts is None:
            return
        self._variable = statement.variable
        if facts.breaker is not None:
            operator, span = facts.breaker
            where = f" at line {span.line}" if span is not None else ""
            self._emit(
                "GQL120",
                WARNING,
                f"output {statement.variable!r} cannot shard by chromosome: "
                f"{operator}{where} aggregates across chromosomes, so it "
                f"runs as one whole-genome unit",
                statement.span,
            )
        if facts.unbounded_join is not None:
            operator, span = facts.unbounded_join
            where = f" at line {span.line}" if span is not None else ""
            self._emit(
                "GQL124",
                WARNING,
                f"output {statement.variable!r} has no static cardinality "
                f"bound: {operator}{where} has no distance upper bound "
                f"(DLE or MD), so its result can grow with "
                f"|anchor| x |experiment|",
                statement.span,
            )
        self._variable = None

    # -- operation dispatch ----------------------------------------------------

    def _operation(self, op) -> VarInfo:
        handler = getattr(self, f"_op_{type(op).__name__[2:].lower()}", None)
        if handler is None:
            return VarInfo()
        return handler(op)

    # -- shared checks ---------------------------------------------------------

    def _check_region_attribute(
        self, info: RegionInfo, name: str, span: Span | None, where: str
    ) -> None:
        """GQL101 when *name* is not a usable region attribute."""
        if name in _FIXED_REGION_TYPES:
            return
        if info.get(name) is _MISSING:
            known = ", ".join(info.names()) or "(none)"
            self._emit(
                "GQL101",
                ERROR,
                f"{where}: unknown region attribute {name!r}; "
                f"schema has: {known}",
                span,
            )

    def _check_meta_attribute(
        self, meta: MetaInfo, name: str, span: Span | None, where: str
    ) -> None:
        """GQL102 when *name* provably cannot exist in the metadata."""
        if not meta.possible(name):
            self._emit(
                "GQL102",
                WARNING,
                f"{where}: metadata attribute {name!r} cannot exist here "
                f"(possible attributes: {', '.join(sorted(meta.attrs)) or '(none)'})",
                span,
            )

    def _aggregate_outputs(
        self, calls, region: RegionInfo, meta: MetaInfo, where: str,
        over: str = "region",
    ) -> list:
        """Validate aggregate calls; returns ordered ``(target, type)``.

        ``over`` selects the attribute space the aggregate reads from:
        region attributes (typed) or metadata attributes (untyped).
        Result types mirror the runtime kernels:
        ``aggregate.result_type(input_type) if input_type else INT``.
        """
        outputs = []
        seen: set = set()
        for call in calls:
            if call.target in seen:
                self._emit(
                    "GQL112",
                    ERROR,
                    f"{where}: duplicate target {call.target!r}",
                    call.span,
                )
                continue
            seen.add(call.target)
            try:
                aggregate = aggregate_named(call.function)
            except EvaluationError:
                self._emit(
                    "GQL113",
                    ERROR,
                    f"{where}: unknown aggregate {call.function!r}",
                    call.function_span,
                )
                outputs.append((call.target, None))
                continue
            if aggregate.requires_attribute and call.attribute is None:
                self._emit(
                    "GQL113",
                    ERROR,
                    f"{where}: {call.function} needs an attribute argument",
                    call.function_span,
                )
                outputs.append((call.target, None))
                continue
            input_type = None
            if call.attribute is not None:
                if over == "region":
                    if call.attribute in _FIXED_REGION_TYPES:
                        self._emit(
                            "GQL101",
                            ERROR,
                            f"{where}: {call.attribute!r} is a fixed coordinate; "
                            f"aggregates read variable region attributes",
                            call.attribute_span,
                        )
                    else:
                        found = region.get(call.attribute)
                        if found is _MISSING:
                            known = ", ".join(region.names()) or "(none)"
                            self._emit(
                                "GQL101",
                                ERROR,
                                f"{where}: unknown region attribute "
                                f"{call.attribute!r}; schema has: {known}",
                                call.attribute_span,
                            )
                        else:
                            input_type = found
                else:
                    self._check_meta_attribute(
                        meta, call.attribute, call.attribute_span, where
                    )
            if (
                call.function in _NUMERIC_AGGREGATES
                and input_type in (STR, BOOL)
            ):
                self._emit(
                    "GQL103",
                    ERROR,
                    f"{where}: {call.function} needs a numeric attribute, but "
                    f"{call.attribute!r} is {input_type.name}",
                    call.attribute_span or call.function_span,
                )
            if (
                self._effects
                and input_type is not None
                and aggregate.merge_class(input_type) == ORDERED
            ):
                self._emit(
                    "GQL121",
                    WARNING,
                    f"{where}: {call.function}({call.attribute}) over "
                    f"{input_type.name} values forces an ordered merge; "
                    f"sharded partials cannot be re-aggregated exactly",
                    call.function_span or call.span,
                )
            result_type = (
                aggregate.result_type(input_type) if input_type else INT
            )
            if over == "meta":
                # Metadata values are untyped at rest; only aggregates
                # with a fixed result type are known.
                result_type = aggregate.result_type(None)
            outputs.append((call.target, result_type))
        return outputs

    def _check_select_predicates(self, op: ast.OpSelect, info: VarInfo) -> bool:
        """All SELECT predicate rules; returns provable meta-emptiness."""
        empty = False
        if op.meta is not None:
            for attribute, span in _predicate_attributes(op.meta):
                self._check_meta_attribute(
                    info.meta, attribute, span, "SELECT"
                )
            truth = meta_predicate_truth(op.meta, info.meta)
            if truth == TRUTH_FALSE:
                self._emit(
                    "GQL107",
                    WARNING,
                    "SELECT metadata predicate is always false: "
                    "the result is statically empty",
                    _predicate_span(op.meta) or op.span,
                )
                empty = True
            elif truth == TRUTH_TRUE:
                self._emit(
                    "GQL108",
                    WARNING,
                    "SELECT metadata predicate is always true: "
                    "it never filters anything",
                    _predicate_span(op.meta) or op.span,
                )
        if op.region is not None:
            for attribute, span in _predicate_attributes(op.region):
                self._check_region_attribute(
                    info.region, attribute, span, "SELECT region"
                )
            truth = region_predicate_truth(op.region, info.region)
            if truth == TRUTH_FALSE:
                self._emit(
                    "GQL107",
                    WARNING,
                    "SELECT region predicate is always false: "
                    "every sample keeps zero regions",
                    _predicate_span(op.region) or op.span,
                )
            elif truth == TRUTH_TRUE:
                self._emit(
                    "GQL108",
                    WARNING,
                    "SELECT region predicate is always true: "
                    "it never filters anything",
                    _predicate_span(op.region) or op.span,
                )
        return empty

    # -- per-operation inference ------------------------------------------------

    def _op_select(self, op: ast.OpSelect) -> VarInfo:
        info = self._operand(op.operand)
        empty = self._check_select_predicates(op, info)
        if op.semijoin is not None:
            other = self._operand(op.semijoin.variable)
            for attribute, span in zip(
                op.semijoin.attributes, op.semijoin.attribute_spans or ()
            ):
                self._check_meta_attribute(
                    info.meta, attribute, span, "SELECT semijoin"
                )
                self._check_meta_attribute(
                    other.meta, attribute, span,
                    f"SELECT semijoin against {op.semijoin.variable!r}",
                )
        if empty and self._variable is not None:
            if info.region.to_schema() is not None:
                self._empty[self._variable] = "GQL107"
        return info

    def _op_project(self, op: ast.OpProject) -> VarInfo:
        info = self._operand(op.operand)
        child = info.region
        if op.region_attributes is None:
            kept = list(child.attrs)
            closed = child.closed
        else:
            kept = []
            spans = op.region_attribute_spans or ()
            for index, name in enumerate(op.region_attributes):
                span = spans[index] if index < len(spans) else op.span
                if name in _FIXED_REGION_TYPES:
                    # Fixed coordinates are implicit in every schema; the
                    # runtime rejects keeping them explicitly.
                    self._emit(
                        "GQL101",
                        ERROR,
                        f"PROJECT: {name!r} is a fixed coordinate and is "
                        f"always kept; list only variable attributes",
                        span,
                    )
                    continue
                if any(existing == name for existing, __ in kept):
                    self._emit(
                        "GQL112",
                        ERROR,
                        f"PROJECT: attribute {name!r} kept twice",
                        span,
                    )
                    continue
                found = child.get(name)
                if found is _MISSING:
                    known = ", ".join(child.names()) or "(none)"
                    self._emit(
                        "GQL101",
                        ERROR,
                        f"PROJECT: unknown region attribute {name!r}; "
                        f"schema has: {known}",
                        span,
                    )
                    continue
                kept.append((name, found))
            closed = True  # an explicit list closes the schema
        new_spans = op.new_attribute_spans or ()
        if self._effects and op.new_region_attributes:
            first_name, __ = op.new_region_attributes[0]
            self._emit(
                "GQL122",
                WARNING,
                f"PROJECT: computed attribute {first_name!r} has no stable "
                f"content fingerprint; this operator and everything above "
                f"it bypass the result cache",
                new_spans[0] if new_spans else op.span,
            )
        for index, (name, expression) in enumerate(op.new_region_attributes):
            span = new_spans[index] if index < len(new_spans) else op.span
            if name in _FIXED_REGION_TYPES or name == "id":
                self._emit(
                    "GQL112",
                    ERROR,
                    f"PROJECT: new attribute {name!r} collides with a fixed "
                    f"GDM attribute",
                    span,
                )
                continue
            if any(existing == name for existing, __ in kept):
                self._emit(
                    "GQL112",
                    ERROR,
                    f"PROJECT: duplicate result attribute {name!r}",
                    span,
                )
                continue
            kept.append((name, self._arith_type(expression, child)))
        region = RegionInfo(tuple(kept), closed)
        meta = info.meta
        if op.metadata_attributes is not None:
            meta_spans = op.metadata_attribute_spans or ()
            possible = set()
            for index, name in enumerate(op.metadata_attributes):
                span = meta_spans[index] if index < len(meta_spans) else op.span
                self._check_meta_attribute(
                    info.meta, name, span, "PROJECT metadata"
                )
                if info.meta.possible(name):
                    possible.add(name)
            meta = MetaInfo(frozenset(possible), True)
        return VarInfo(region, meta, info.stranded)

    def _arith_type(self, expression, child: RegionInfo):
        """Result type of a PROJECT expression, mirroring the compiler:
        INT for integer literals/coordinates combined with ``+ - *``,
        FLOAT for everything else (division, float literals, variable
        attributes).  Also checks attribute references (GQL101)."""

        def walk(node) -> bool:
            if isinstance(node, ast.Num):
                return isinstance(node.value, int)
            if isinstance(node, ast.Attr):
                if node.name not in _ARITH_ENV_NAMES:
                    if child.get(node.name) is _MISSING:
                        known = ", ".join(
                            sorted(set(child.names()) | _ARITH_ENV_NAMES)
                        )
                        self._emit(
                            "GQL101",
                            ERROR,
                            f"PROJECT: unknown attribute {node.name!r} in "
                            f"expression; in scope: {known}",
                            node.span,
                        )
                return node.name in ("left", "right", "length")
            if isinstance(node, ast.BinOp):
                left_int = walk(node.left)
                right_int = walk(node.right)
                return left_int and right_int and node.operator != "/"
            return False

        return INT if walk(expression) else FLOAT

    def _op_extend(self, op: ast.OpExtend) -> VarInfo:
        info = self._operand(op.operand)
        outputs = self._aggregate_outputs(
            op.assignments, info.region, info.meta, "EXTEND"
        )
        meta = MetaInfo(
            info.meta.attrs | {target for target, __ in outputs},
            info.meta.closed,
        )
        return VarInfo(info.region, meta, info.stranded)

    def _op_merge(self, op: ast.OpMerge) -> VarInfo:
        info = self._operand(op.operand)
        for name in op.groupby:
            self._check_meta_attribute(info.meta, name, op.span, "MERGE groupby")
        return info

    def _op_group(self, op: ast.OpGroup) -> VarInfo:
        info = self._operand(op.operand)
        for name in op.meta_keys or ():
            self._check_meta_attribute(info.meta, name, op.span, "GROUP groupby")
        meta_outputs = self._aggregate_outputs(
            op.meta_aggregates, info.region, info.meta, "GROUP metadata",
            over="meta",
        )
        region_outputs = self._aggregate_outputs(
            op.region_aggregates, info.region, info.meta, "GROUP region"
        )
        region = info.region
        if region_outputs:
            # Region aggregates *replace* the schema (one region per
            # group of duplicates, values = the aggregates).
            region = RegionInfo(tuple(region_outputs), True)
        if op.meta_keys is not None:
            attrs = set(op.meta_keys) | {t for t, __ in meta_outputs}
            meta = MetaInfo(frozenset(attrs), True)
        else:
            meta = info.meta
        return VarInfo(region, meta, info.stranded)

    def _op_order(self, op: ast.OpOrder) -> VarInfo:
        info = self._operand(op.operand)
        for attribute, __ in op.meta_keys:
            self._check_meta_attribute(info.meta, attribute, op.span, "ORDER")
        spans = op.region_key_spans or ()
        for index, (attribute, __) in enumerate(op.region_keys):
            span = spans[index] if index < len(spans) else op.span
            # The ORDER kernel resolves left/right plus variable attributes.
            if attribute in ("left", "right"):
                continue
            if info.region.get(attribute) is _MISSING:
                known = ", ".join(info.region.names()) or "(none)"
                self._emit(
                    "GQL101",
                    ERROR,
                    f"ORDER region: unknown region attribute {attribute!r}; "
                    f"schema has: left, right, {known}",
                    span,
                )
        return info

    def _op_union(self, op: ast.OpUnion) -> VarInfo:
        left = self._operand(op.left)
        right = self._operand(op.right)
        attrs = list(left.region.attrs)
        names = {name for name, __ in attrs}
        for name, right_type in right.region.attrs:
            left_type = dict(left.region.attrs).get(name)
            if name in names:
                if (
                    left_type is not None
                    and right_type is not None
                    and left_type != right_type
                ):
                    self._emit(
                        "GQL104",
                        WARNING,
                        f"UNION: attribute {name!r} is {left_type.name} in "
                        f"{op.left!r} but {right_type.name} in {op.right!r}; "
                        f"the right column is renamed {name + '_right'!r}",
                        op.span,
                    )
                    renamed = name + "_right"
                    while renamed in names:
                        renamed += "_"
                    attrs.append((renamed, right_type))
                    names.add(renamed)
                # Same name, same (or unknown) type: unified.
                continue
            attrs.append((name, right_type))
            names.add(name)
        region = RegionInfo(
            tuple(attrs), left.region.closed and right.region.closed
        )
        meta = MetaInfo(
            left.meta.attrs | right.meta.attrs,
            left.meta.closed and right.meta.closed,
        )
        stranded = _either_stranded(left.stranded, right.stranded)
        return VarInfo(region, meta, stranded)

    def _op_difference(self, op: ast.OpDifference) -> VarInfo:
        left = self._operand(op.left)
        right = self._operand(op.right)
        if self._effects and (op.exact or op.joinby):
            mode = (
                "exact region matching" if op.exact
                else "metadata joinby grouping"
            )
            self._emit(
                "GQL123",
                WARNING,
                f"DIFFERENCE: {mode} falls back to the per-region kernel; "
                f"morsel parallelism is disabled for this operator",
                op.span,
            )
        for name in op.joinby:
            self._check_meta_attribute(
                left.meta, name, op.span, "DIFFERENCE joinby"
            )
            self._check_meta_attribute(
                right.meta, name, op.span, f"DIFFERENCE joinby in {op.right!r}"
            )
        return left

    def _op_cover(self, op: ast.OpCover) -> VarInfo:
        info = self._operand(op.operand)
        low = op.min_acc
        high = op.max_acc
        if low.kind == "INT" and low.value < 0:
            self._emit(
                "GQL106",
                ERROR,
                f"{op.variant}: accumulation bound must be non-negative, "
                f"got {low.value}",
                low.span or op.span,
            )
        if high.kind == "INT" and high.value < 0:
            self._emit(
                "GQL106",
                ERROR,
                f"{op.variant}: accumulation bound must be non-negative, "
                f"got {high.value}",
                high.span or op.span,
            )
        if (
            low.kind == "INT"
            and high.kind == "INT"
            and low.value > high.value >= 0
        ):
            self._emit(
                "GQL106",
                ERROR,
                f"{op.variant}: minAcc={low.value} exceeds maxAcc="
                f"{high.value}; no interval can accumulate in that range",
                low.span or op.span,
            )
        for name in op.groupby:
            self._check_meta_attribute(
                info.meta, name, op.span, f"{op.variant} groupby"
            )
        region = RegionInfo((("acc_index", INT),), True)
        # COVER regions are built unstranded; group metadata is the
        # members' union, so the attribute bound carries over.
        return VarInfo(region, info.meta, False)

    def _op_map(self, op: ast.OpMap) -> VarInfo:
        reference = self._operand(op.reference)
        experiment = self._operand(op.experiment)
        calls = op.assignments or (
            ast.AggregateCall("count", "COUNT", None, span=op.span),
        )
        outputs = self._aggregate_outputs(
            calls, experiment.region, experiment.meta, "MAP"
        )
        attrs = list(reference.region.attrs)
        names = {name for name, __ in attrs}
        for target, result_type in outputs:
            if target in names or target in _FIXED_REGION_TYPES:
                self._emit(
                    "GQL112",
                    ERROR,
                    f"MAP: result attribute {target!r} collides with the "
                    f"reference schema",
                    _call_span(calls, target) or op.span,
                )
                continue
            attrs.append((target, result_type))
            names.add(target)
        for name in op.joinby:
            self._check_meta_attribute(
                reference.meta, name, op.span, "MAP joinby"
            )
            self._check_meta_attribute(
                experiment.meta, name, op.span,
                f"MAP joinby in {op.experiment!r}",
            )
        region = RegionInfo(tuple(attrs), reference.region.closed)
        meta = _prefixed_meta(reference.meta, experiment.meta)
        return VarInfo(region, meta, reference.stranded)

    def _op_join(self, op: ast.OpJoin) -> VarInfo:
        anchor = self._operand(op.anchor)
        experiment = self._operand(op.experiment)
        self._check_join_condition(op, anchor)
        for name in op.joinby:
            self._check_meta_attribute(anchor.meta, name, op.span, "JOIN joinby")
            self._check_meta_attribute(
                experiment.meta, name, op.span, f"JOIN joinby in {op.experiment!r}"
            )
        # Merged schema (paper section 2): same name+type unify, clashes
        # rename the right attribute `_right`; plus the `dist` column.
        attrs = list(anchor.region.attrs)
        names = {name for name, __ in attrs}
        left_types = dict(anchor.region.attrs)
        for name, right_type in experiment.region.attrs:
            if name in names:
                left_type = left_types.get(name)
                if (
                    left_type is not None
                    and right_type is not None
                    and left_type == right_type
                ):
                    continue  # unified
                if left_type is None or right_type is None:
                    continue  # unknown: assume unified
                renamed = name + "_right"
                while renamed in names:
                    renamed += "_"
                attrs.append((renamed, right_type))
                names.add(renamed)
                continue
            attrs.append((name, right_type))
            names.add(name)
        closed = anchor.region.closed and experiment.region.closed
        if "dist" in names and closed:
            self._emit(
                "GQL112",
                ERROR,
                "JOIN: the result carries a 'dist' attribute, but an operand "
                "already has one; rename it (e.g. with PROJECT) before joining",
                op.span,
            )
        elif "dist" not in names:
            attrs.append(("dist", INT))
        region = RegionInfo(tuple(attrs), closed)
        meta = _prefixed_meta(anchor.meta, experiment.meta)
        stranded = _either_stranded(anchor.stranded, experiment.stranded)
        return VarInfo(region, meta, stranded)

    def _check_join_condition(self, op: ast.OpJoin, anchor: VarInfo) -> None:
        if not op.clauses:
            self._emit(
                "GQL110",
                ERROR,
                "JOIN needs at least one genometric clause "
                "(DLE/DGE/MD/UP/DOWN)",
                op.span,
            )
            return
        dle = [c for c in op.clauses if c.kind == "DLE"]
        dge = [c for c in op.clauses if c.kind == "DGE"]
        md = [c for c in op.clauses if c.kind == "MD"]
        up = [c for c in op.clauses if c.kind == "UP"]
        down = [c for c in op.clauses if c.kind == "DOWN"]
        for clause in md:
            if clause.argument is None or clause.argument < 1:
                self._emit(
                    "GQL105",
                    ERROR,
                    f"MD({clause.argument}) is unsatisfiable: minimum-distance "
                    f"neighbourhoods need k >= 1",
                    clause.span or op.span,
                )
        if len(md) > 1:
            self._emit(
                "GQL105",
                ERROR,
                "JOIN accepts at most one MD clause",
                md[1].span or op.span,
            )
        if dle and dge:
            tightest = min(c.argument for c in dle)
            loosest = max(c.argument for c in dge)
            if loosest > tightest:
                self._emit(
                    "GQL105",
                    ERROR,
                    f"genometric condition is unsatisfiable: DLE({tightest}) "
                    f"requires distance <= {tightest} but DGE({loosest}) "
                    f"requires distance >= {loosest}",
                    dge[0].span or op.span,
                )
        if up and down:
            self._emit(
                "GQL105",
                ERROR,
                "UP and DOWN together are unsatisfiable: a region cannot be "
                "both upstream and downstream of its anchor",
                down[0].span or op.span,
            )
        if not dle and not md:
            self._emit(
                "GQL110",
                WARNING,
                "JOIN has no distance upper bound (DLE or MD): candidate "
                "pairs grow with |anchor| x |experiment| per chromosome",
                op.span,
            )
        if (up or down) and anchor.stranded is False:
            clause = (up or down)[0]
            self._emit(
                "GQL109",
                WARNING,
                f"{clause.kind} is strand-relative, but the anchor "
                f"{op.anchor!r} is provably unstranded (every strand is "
                f"'*'), so it degenerates to plain before/after",
                clause.span or op.span,
            )


def _call_span(calls, target: str) -> Span | None:
    for call in calls:
        if call.target == target:
            return call.span
    return None


def _prefixed_meta(left: MetaInfo, right: MetaInfo) -> MetaInfo:
    """Binary-operator result metadata: ``left.``/``right.`` prefixed."""
    attrs = {f"left.{name}" for name in left.attrs} | {
        f"right.{name}" for name in right.attrs
    }
    return MetaInfo(frozenset(attrs), left.closed and right.closed)


def _either_stranded(a: bool | None, b: bool | None) -> bool | None:
    if a is True or b is True:
        return True
    if a is False and b is False:
        return False
    return None


def analyze_program(
    program,
    schemas: dict | None = None,
    datasets: dict | None = None,
    effects: bool = False,
) -> Analysis:
    """Analyze a GMQL program (text or parsed
    :class:`~repro.gmql.lang.ast_nodes.Program`).

    With ``effects=True`` the GQL120-124 effect diagnostics are emitted
    alongside the correctness rules (see :data:`EFFECT_RULES`).

    Returns an :class:`Analysis`; never raises for semantic problems --
    callers decide what severity gates what (the compiler raises
    :class:`~repro.errors.GmqlCompileError` on error-severity findings,
    ``repro check --strict`` also fails on warnings).
    """
    source = None
    if isinstance(program, str):
        from repro.gmql.lang.parser import parse

        source = program
        program = parse(program)
    analysis = Analyzer(
        schemas=schemas, datasets=datasets, effects=effects
    ).analyze(program)
    analysis.source = source
    return analysis
