"""Token kinds and the token record for the GMQL lexer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gmql.lang.span import Span

#: Token kinds.
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
SYMBOL = "SYMBOL"
KEYWORD = "KEYWORD"
EOF = "EOF"

#: Reserved words (matched case-insensitively; stored upper-case).
KEYWORDS = frozenset(
    {
        "SELECT",
        "PROJECT",
        "EXTEND",
        "MERGE",
        "GROUP",
        "ORDER",
        "UNION",
        "DIFFERENCE",
        "COVER",
        "FLAT",
        "SUMMIT",
        "HISTOGRAM",
        "MAP",
        "JOIN",
        "MATERIALIZE",
        "INTO",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "ANY",
        "ALL",
        "ASC",
        "DESC",
        "TOP",
        "UP",
        "DOWN",
        "DLE",
        "DGE",
        "MD",
        "LEFT",
        "RIGHT",
        "INT",
        "CAT",
        "CONTIG",
        "REGION",
        "METADATA",
        "JOINBY",
        "GROUPBY",
        "SEMIJOIN",
        "OUTPUT",
        "EXACT",
        "TRUE",
        "FALSE",
    }
)

#: Multi-character symbols, longest first so the lexer can greedily match.
SYMBOLS = ("==", "!=", "<=", ">=", "=", ";", ",", "(", ")", "<", ">",
           "+", "-", "*", "/", ":")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    value: str
    line: int
    column: int

    def span(self) -> Span:
        """The source span this token covers (quotes included for strings)."""
        if self.kind == STRING:
            length = len(self.value) + 2
        else:
            length = max(len(self.value), 1)
        return Span(self.line, self.column, length)

    def is_keyword(self, word: str) -> bool:
        """True when this token is the given keyword."""
        return self.kind == KEYWORD and self.value == word.upper()

    def is_symbol(self, symbol: str) -> bool:
        """True when this token is the given symbol."""
        return self.kind == SYMBOL and self.value == symbol

    def __str__(self) -> str:
        if self.kind == EOF:
            return "end of input"
        return f"{self.value!r}"
