"""Compiler: GMQL AST -> logical plan DAG.

Performs name resolution (variables vs source datasets), builds predicate,
aggregate and genometric-condition objects, type-checks what can be checked
without data (aggregate names, join options, MD arguments), and shares
sub-plans between uses of the same variable.
"""

from __future__ import annotations

from repro.errors import EvaluationError, GmqlCompileError
from repro.gdm import FLOAT, INT
from repro.gmql.aggregates import aggregate_named
from repro.gmql.genometric import (
    DistGreater,
    DistLess,
    Downstream,
    GenometricCondition,
    MinDistance,
    Upstream,
)
from repro.gmql.lang import ast_nodes as ast
from repro.gmql.lang.parser import parse
from repro.gmql.lang.plan import (
    CompiledProgram,
    CoverPlan,
    DifferencePlan,
    ExtendPlan,
    GroupPlan,
    JoinPlan,
    MapPlan,
    MergePlan,
    OrderPlan,
    PlanNode,
    ProjectPlan,
    ScanPlan,
    SelectPlan,
    UnionPlan,
)
from repro.gmql.operators.join import OUTPUT_OPTIONS
from repro.gmql.predicates import (
    MetaAnd,
    MetaCompare,
    MetaNot,
    MetaOr,
    MetaPredicate,
    RegionAnd,
    RegionCompare,
    RegionNot,
    RegionOr,
    RegionPredicate,
)
from repro.intervals import AccumulationBound

#: Names usable in arithmetic expressions that are always integers.
_INT_ENV_NAMES = frozenset({"left", "right", "length"})


def _meta_predicate(node) -> MetaPredicate:
    if isinstance(node, ast.Comparison):
        return MetaCompare(node.attribute, node.operator, node.value)
    if isinstance(node, ast.BoolAnd):
        return MetaAnd(_meta_predicate(node.left), _meta_predicate(node.right))
    if isinstance(node, ast.BoolOr):
        return MetaOr(_meta_predicate(node.left), _meta_predicate(node.right))
    if isinstance(node, ast.BoolNot):
        return MetaNot(_meta_predicate(node.inner))
    raise GmqlCompileError(f"not a metadata predicate: {node!r}")


def _region_predicate(node) -> RegionPredicate:
    if isinstance(node, ast.Comparison):
        return RegionCompare(node.attribute, node.operator, node.value)
    if isinstance(node, ast.BoolAnd):
        return RegionAnd(_region_predicate(node.left), _region_predicate(node.right))
    if isinstance(node, ast.BoolOr):
        return RegionOr(_region_predicate(node.left), _region_predicate(node.right))
    if isinstance(node, ast.BoolNot):
        return RegionNot(_region_predicate(node.inner))
    raise GmqlCompileError(f"not a region predicate: {node!r}")


def _compile_arith(node):
    """Compile an arithmetic AST to ``(type, fn(env))``.

    The result type is INT when the expression uses only integer literals,
    coordinate names (left/right/length) and the operators ``+ - *``;
    anything else (division, float literals, variable attributes) is FLOAT.
    """

    def walk(n):
        if isinstance(n, ast.Num):
            is_int = isinstance(n.value, int)
            return (lambda env, v=n.value: v), is_int
        if isinstance(n, ast.Attr):
            name = n.name
            is_int = name in _INT_ENV_NAMES

            def getter(env, name=name):
                if name not in env:
                    raise EvaluationError(f"unknown attribute {name!r} in expression")
                return env[name]

            return getter, is_int
        if isinstance(n, ast.BinOp):
            left_fn, left_int = walk(n.left)
            right_fn, right_int = walk(n.right)
            operator = n.operator
            if operator == "+":
                fn = lambda env: left_fn(env) + right_fn(env)  # noqa: E731
            elif operator == "-":
                fn = lambda env: left_fn(env) - right_fn(env)  # noqa: E731
            elif operator == "*":
                fn = lambda env: left_fn(env) * right_fn(env)  # noqa: E731
            elif operator == "/":
                fn = lambda env: left_fn(env) / right_fn(env)  # noqa: E731
            else:
                raise GmqlCompileError(f"unknown operator {operator!r}")
            return fn, left_int and right_int and operator != "/"
        raise GmqlCompileError(f"not an arithmetic expression: {n!r}")

    fn, is_int = walk(node)
    return (INT if is_int else FLOAT), fn


def _aggregate_assignments(calls, where: str) -> dict:
    assignments = {}
    for call in calls:
        try:
            aggregate = aggregate_named(call.function)
        except EvaluationError as exc:
            raise GmqlCompileError(f"{where}: {exc}") from exc
        if aggregate.requires_attribute and call.attribute is None:
            raise GmqlCompileError(
                f"{where}: {call.function} needs an attribute argument"
            )
        if call.target in assignments:
            raise GmqlCompileError(
                f"{where}: duplicate target {call.target!r}"
            )
        assignments[call.target] = (aggregate, call.attribute)
    return assignments


def _bound(expr: ast.BoundExpr) -> AccumulationBound:
    if expr.kind == "INT":
        if expr.value < 0:
            raise GmqlCompileError(
                f"accumulation bound must be non-negative, got {expr.value}"
            )
        return AccumulationBound.exact(expr.value)
    if expr.kind == "ANY":
        return AccumulationBound.any()
    if expr.divisor == 0:
        raise GmqlCompileError("accumulation bound divisor cannot be zero")
    return AccumulationBound.all(offset=expr.offset, scale=1.0 / expr.divisor)


def _condition(clauses) -> GenometricCondition:
    atoms = []
    for clause in clauses:
        if clause.kind == "DLE":
            atoms.append(DistLess(clause.argument))
        elif clause.kind == "DGE":
            atoms.append(DistGreater(clause.argument))
        elif clause.kind == "MD":
            if clause.argument is None or clause.argument < 1:
                raise GmqlCompileError("MD(k) requires k >= 1")
            atoms.append(MinDistance(clause.argument))
        elif clause.kind == "UP":
            atoms.append(Upstream())
        elif clause.kind == "DOWN":
            atoms.append(Downstream())
        else:
            raise GmqlCompileError(f"unknown genometric clause {clause.kind!r}")
    try:
        return GenometricCondition(*atoms)
    except EvaluationError as exc:
        raise GmqlCompileError(str(exc)) from exc


class Compiler:
    """Compiles one program; collects variable bindings and scanned sources."""

    def __init__(self) -> None:
        self._variables: dict = {}
        self._scans: dict = {}

    def _operand(self, name: str) -> PlanNode:
        if name in self._variables:
            return self._variables[name]
        if name not in self._scans:
            self._scans[name] = ScanPlan(name)
        return self._scans[name]

    def compile(self, program: ast.Program) -> CompiledProgram:
        for statement in program.statements:
            if isinstance(statement, ast.Assign):
                if statement.variable in self._variables:
                    raise GmqlCompileError(
                        f"variable {statement.variable!r} assigned twice "
                        f"(line {statement.line})"
                    )
                if statement.variable in self._scans:
                    raise GmqlCompileError(
                        f"variable {statement.variable!r} was already used as a "
                        f"source dataset (line {statement.line})"
                    )
                node = self._compile_operation(statement.operation)
                node.result_name = statement.variable
                self._variables[statement.variable] = node
        outputs: dict = {}
        for statement in program.statements:
            if isinstance(statement, ast.MaterializeStmt):
                if statement.variable not in self._variables:
                    raise GmqlCompileError(
                        f"MATERIALIZE of unknown variable "
                        f"{statement.variable!r} (line {statement.line})"
                    )
                outputs[statement.target or statement.variable] = (
                    self._variables[statement.variable]
                )
        if not outputs:
            outputs = dict(self._variables)
        return CompiledProgram(
            dict(self._variables), outputs, tuple(sorted(self._scans))
        )

    def _compile_operation(self, op) -> PlanNode:
        if isinstance(op, ast.OpSelect):
            semijoin_plan = None
            semijoin_attributes: tuple = ()
            semijoin_negated = False
            if op.semijoin is not None:
                semijoin_plan = self._operand(op.semijoin.variable)
                semijoin_attributes = op.semijoin.attributes
                semijoin_negated = op.semijoin.negated
            return SelectPlan(
                self._operand(op.operand),
                _meta_predicate(op.meta) if op.meta is not None else None,
                _region_predicate(op.region) if op.region is not None else None,
                semijoin_attributes,
                semijoin_plan,
                semijoin_negated,
            )
        if isinstance(op, ast.OpProject):
            new_attributes = {
                name: _compile_arith(expr)
                for name, expr in op.new_region_attributes
            }
            return ProjectPlan(
                self._operand(op.operand),
                op.region_attributes,
                op.metadata_attributes,
                new_attributes,
            )
        if isinstance(op, ast.OpExtend):
            return ExtendPlan(
                self._operand(op.operand),
                _aggregate_assignments(op.assignments, "EXTEND"),
            )
        if isinstance(op, ast.OpMerge):
            return MergePlan(self._operand(op.operand), op.groupby)
        if isinstance(op, ast.OpGroup):
            return GroupPlan(
                self._operand(op.operand),
                op.meta_keys,
                _aggregate_assignments(op.meta_aggregates, "GROUP metadata"),
                _aggregate_assignments(op.region_aggregates, "GROUP region"),
            )
        if isinstance(op, ast.OpOrder):
            return OrderPlan(
                self._operand(op.operand),
                op.meta_keys,
                op.top,
                op.region_keys,
                op.region_top,
            )
        if isinstance(op, ast.OpUnion):
            return UnionPlan(self._operand(op.left), self._operand(op.right))
        if isinstance(op, ast.OpDifference):
            return DifferencePlan(
                self._operand(op.left),
                self._operand(op.right),
                op.joinby,
                op.exact,
            )
        if isinstance(op, ast.OpCover):
            return CoverPlan(
                self._operand(op.operand),
                op.variant,
                _bound(op.min_acc),
                _bound(op.max_acc),
                op.groupby,
            )
        if isinstance(op, ast.OpMap):
            return MapPlan(
                self._operand(op.reference),
                self._operand(op.experiment),
                _aggregate_assignments(op.assignments, "MAP"),
                op.joinby,
            )
        if isinstance(op, ast.OpJoin):
            if op.output not in OUTPUT_OPTIONS:
                raise GmqlCompileError(
                    f"JOIN output must be one of {OUTPUT_OPTIONS}, got {op.output!r}"
                )
            return JoinPlan(
                self._operand(op.anchor),
                self._operand(op.experiment),
                _condition(op.clauses),
                op.output,
                op.joinby,
            )
        raise GmqlCompileError(f"unknown operation node {op!r}")


def compile_program(
    source,
    schemas: dict | None = None,
    datasets: dict | None = None,
) -> CompiledProgram:
    """Compile GMQL text (or an already-parsed Program) to plans.

    Semantic analysis always runs first: error-severity findings raise
    :class:`GmqlCompileError` carrying the full diagnostic list, *before*
    any plan is built, so nothing downstream ever executes an invalid
    program.  *schemas* (``{source: RegionSchema}``) and *datasets*
    (``{source: Dataset}``) sharpen the analysis from open-world to
    exact; with neither, only data-independent rules can fire.

    On success each variable's plan node carries the analyzer's verdicts:
    ``node.inferred`` (the :class:`~repro.gmql.lang.semantics.VarInfo`)
    and ``node.prunable_empty`` (a rule code proving emptiness, consumed
    by the optimizer), and the returned program carries ``.analysis``.
    """
    from repro.gmql.lang.semantics import analyze_program

    source_text = source if isinstance(source, str) else None
    program = parse(source) if isinstance(source, str) else source
    analysis = analyze_program(program, schemas=schemas, datasets=datasets)
    analysis.source = source_text
    errors = analysis.errors()
    if errors:
        rendered = "\n".join(d.format(source_text) for d in errors)
        raise GmqlCompileError(
            f"semantic analysis found {len(errors)} error(s):\n{rendered}",
            analysis.diagnostics,
        )
    compiled = Compiler().compile(program)
    for name, node in compiled.variables.items():
        info = analysis.variables.get(name)
        if info is not None:
            node.inferred = info
        code = analysis.empty_variables.get(name)
        if code is not None:
            node.prunable_empty = code
    for root in compiled.outputs.values():
        for node in root.walk():
            if isinstance(node, ScanPlan) and node.inferred is None:
                info = analysis.sources.get(node.dataset_name)
                if info is not None:
                    node.inferred = info
    compiled.analysis = analysis
    return compiled
