"""Plan-effect analysis: static shardability, exactness and cache-safety.

The paper's section 4 cloud implementation rests on knowing -- before
execution -- which operators distribute safely.  This module derives
that knowledge from the plans themselves instead of hand-maintained
allowlists: a bottom-up dataflow pass annotates every plan node with an
:class:`Effects` record, and the consumers (federation planner, sharded
backend, auto router, result cache) gate on the inferred facts.

The effect lattice per node:

* **chromosome locality** (``chrom_local``): does any operator in the
  node's subtree match or aggregate *across* chromosomes?  A
  per-chromosome COVER is local; EXTEND/MERGE/ORDER/GROUP reduce whole
  samples, so one anywhere in the subtree makes the output global --
  its per-shard partials cannot be interleaved into the single-node
  answer.  ``locality_breaker`` names the first breaking operator.
* **aggregate exactness** (``exactness``): the weakest merge class of
  any aggregate in the subtree -- ``reorderable`` < ``exact-int`` <
  ``ordered`` -- derived from the aggregate registry's own
  :meth:`~repro.gmql.aggregates.Aggregate.merge_class` declarations
  (custom aggregates default to the conservative ``ordered``).
* **cache safety** (``cache_safe``): is the node's output a pure
  function of its content fingerprint?  PROJECT's computed attributes
  carry compiled lambdas whose fallback fingerprint token embeds a
  memory address, so such nodes (and everything above them) must not
  be stored in the result cache.
* **morsel safety** (``morsel_safe``): may the *node's own* kernel be
  split into genome morsels by the parallel backend?  Node-local (the
  inputs are materialised data by kernel time): true for the
  pair/sweep kernels, false for exact/joinby DIFFERENCE which falls
  back to the per-region naive kernel.
* **cardinality/byte bounds** (``bound_regions``/``bound_bytes``):
  sound upper bounds on the node's output, from source summaries and
  per-operator bounding rules (MD(k) JOIN emits at most ``k`` rows per
  anchor; an unbounded JOIN has no finite bound).  ``input_bound`` is
  the children's summed region bound -- what the auto router uses to
  cap bare row-count estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gdm import AttributeType
from repro.gmql.aggregates import EXACT_INT, ORDERED, REORDERABLE

#: Operator kinds whose kernels never look across a chromosome
#: boundary: slicing every operand to one chromosome group changes
#: nothing about the kernel's input, so per-shard outputs are final.
LOCAL_KINDS = frozenset({
    "scan", "empty", "select", "project", "union", "difference",
    "cover", "map", "join",
})

#: Operator kinds that reduce whole samples (across chromosomes):
#: per-shard partials of these cannot be interleaved into the exact
#: single-node answer (an fsum of per-shard fsums is not one fsum).
CROSS_CHROMOSOME_KINDS = frozenset({"extend", "merge", "order", "group"})

#: Kinds whose kernels do per-region matching work worth sharding; the
#: sharded backend leaves the cheap bookkeeping operators alone even
#: when they are chromosome-local.
SHARD_WORTHWHILE_KINDS = frozenset({
    "map", "join", "cover", "difference", "union",
})

_EXACTNESS_RANK = {REORDERABLE: 0, EXACT_INT: 1, ORDERED: 2}


def weakest_exactness(*classes: str) -> str:
    """The weakest (most order-sensitive) of the given merge classes."""
    weakest = REORDERABLE
    for cls in classes:
        if _EXACTNESS_RANK.get(cls, 2) > _EXACTNESS_RANK.get(weakest, 2):
            weakest = cls
    return weakest


@dataclass(frozen=True)
class Effects:
    """Derived effect record of one plan node (over its whole subtree,
    except ``morsel_safe`` which is node-local by construction)."""

    chrom_local: bool = True
    locality_breaker: str | None = None
    exactness: str = REORDERABLE
    cache_safe: bool = True
    cache_breaker: str | None = None
    morsel_safe: bool = False
    bound_regions: int | None = None
    bound_bytes: int | None = None
    #: Summed region bound of the node's children (``None`` =
    #: unbounded/unknown); caps the router's input-size estimates.
    input_bound: int | None = None

    def render(self) -> str:
        """Compact one-line form for EXPLAIN output."""
        parts = [
            "local" if self.chrom_local
            else f"global({self.locality_breaker})",
            self.exactness,
        ]
        parts.append(
            "cacheable" if self.cache_safe
            else f"nocache({self.cache_breaker})"
        )
        if self.morsel_safe:
            parts.append("morsel")
        if self.bound_regions is not None:
            parts.append(f"bound<={self.bound_regions}")
        return " ".join(parts)


def _plan_aggregates(node) -> list:
    """``(aggregate, attribute)`` pairs a plan node applies, with the
    operand node whose schema types the attribute."""
    kind = node.kind
    if kind == "extend":
        return [(node.child, agg, attr) for agg, attr in
                node.assignments.values()]
    if kind == "map":
        return [(node.experiment, agg, attr) for agg, attr in
                node.aggregates.values()]
    if kind == "group":
        pairs = [(node.child, agg, attr) for agg, attr in
                 node.meta_aggregates.values()]
        pairs += [(node.child, agg, attr) for agg, attr in
                  node.region_aggregates.values()]
        return pairs
    return []


def _attribute_type(operand, attribute):
    """The inferred GDM type of a region attribute, when analysis ran."""
    if attribute is None:
        return None
    inferred = getattr(operand, "inferred", None)
    if inferred is None:
        return None
    found = inferred.region.get(attribute)
    # RegionInfo.get returns a sentinel for provably-missing attributes
    # and None for unknown; either way the type is not usable.
    return found if isinstance(found, AttributeType) else None


def _node_exactness(node) -> str:
    """The weakest merge class among the node's own aggregates."""
    classes = [
        aggregate.merge_class(_attribute_type(operand, attribute))
        for operand, aggregate, attribute in _plan_aggregates(node)
    ]
    return weakest_exactness(*classes)


def _scan_summary(node, summaries: dict | None) -> dict | None:
    if not summaries:
        return None
    summary = summaries.get(node.dataset_name)
    return summary if isinstance(summary, dict) else None


def _node_bounds(node, child_fx: list, summaries: dict | None) -> tuple:
    """``(bound_regions, bound_bytes)`` -- sound output upper bounds."""
    kind = node.kind
    if kind == "scan":
        summary = _scan_summary(node, summaries)
        if summary is None:
            return None, None
        return summary.get("regions"), summary.get("size_bytes")
    if kind == "empty":
        return 0, 0
    regions = [fx.bound_regions for fx in child_fx]
    sizes = [fx.bound_bytes for fx in child_fx]
    first_r = regions[0] if regions else None
    first_b = sizes[0] if sizes else None
    if kind in ("select", "order", "merge"):
        # Filters, reorders and sample merges never add regions.
        return first_r, first_b
    if kind == "project":
        # Computed attributes widen rows; a plain keep-list only narrows.
        return first_r, (None if node.new_region_attributes else first_b)
    if kind in ("extend", "group"):
        # Region count never grows; new aggregate columns break the
        # byte bound.
        return first_r, None
    if kind == "union":
        if any(r is None for r in regions):
            return None, None
        return sum(regions), (
            sum(sizes) if all(b is not None for b in sizes) else None
        )
    if kind == "difference":
        return first_r, first_b
    if kind == "cover":
        if first_r is None:
            return None, None
        # Merged accumulation intervals consume at least one event
        # each; HISTOGRAM splits at every boundary (< 2n segments).
        factor = 2 if getattr(node, "variant", "") == "HISTOGRAM" else 1
        return first_r * factor, None
    if kind == "map":
        # One output region per reference region, new value columns.
        return first_r, None
    if kind == "join":
        anchor_bound = first_r
        experiment_bound = regions[1] if len(regions) > 1 else None
        k = node.condition.min_distance_k()
        if k is not None and anchor_bound is not None:
            return anchor_bound * k, None
        if node.condition.max_distance() is None:
            return None, None  # no distance bound: |A| x |E| worst case
        if anchor_bound is None or experiment_bound is None:
            return None, None
        return anchor_bound * experiment_bound, None
    return None, None


def node_effects(node, child_effects: list | tuple = (),
                 summaries: dict | None = None) -> Effects:
    """The :class:`Effects` of one plan node given its children's.

    With ``child_effects`` omitted the record describes the node in
    isolation -- which is exactly what kernel-time gating needs, since
    by then the inputs are materialised datasets whose provenance no
    longer matters.
    """
    kind = node.kind
    child_fx = list(child_effects)

    breaker = next(
        (fx.locality_breaker for fx in child_fx
         if fx.locality_breaker is not None),
        None,
    )
    if breaker is None and kind in CROSS_CHROMOSOME_KINDS:
        breaker = node.label()

    exactness = weakest_exactness(
        _node_exactness(node), *(fx.exactness for fx in child_fx)
    )

    cache_breaker = next(
        (fx.cache_breaker for fx in child_fx
         if fx.cache_breaker is not None),
        None,
    )
    if cache_breaker is None and kind == "project" and getattr(
        node, "new_region_attributes", None
    ):
        # Computed attributes hold compiled lambdas; their fingerprint
        # token falls back to repr(), which embeds a memory address --
        # the node's output is not a pure function of a stable key.
        cache_breaker = node.label() + " computed attributes"

    morsel_safe = kind in ("map", "join", "cover") or (
        kind == "difference"
        and not getattr(node, "exact", False)
        and not getattr(node, "joinby", None)
    )

    bound_regions, bound_bytes = _node_bounds(node, child_fx, summaries)
    input_regions = [fx.bound_regions for fx in child_fx]
    input_bound = (
        sum(input_regions)
        if input_regions and all(r is not None for r in input_regions)
        else None
    )

    return Effects(
        chrom_local=breaker is None,
        locality_breaker=breaker,
        exactness=exactness,
        cache_safe=cache_breaker is None,
        cache_breaker=cache_breaker,
        morsel_safe=morsel_safe,
        bound_regions=bound_regions,
        bound_bytes=bound_bytes,
        input_bound=input_bound,
    )


def annotate_effects(program_or_plans, summaries: dict | None = None) -> dict:
    """Annotate every node of a compiled program (or plan iterable)
    bottom-up; returns ``{id(node): Effects}``.

    The walk memoises by node identity, so shared sub-plans of a
    multi-output program (a DAG, not a tree) are visited exactly once.
    Each node also gets the record stored as ``node.effects``.
    """
    outputs = getattr(program_or_plans, "outputs", None)
    plans = list(outputs.values()) if outputs is not None else list(
        program_or_plans
    )
    memo: dict = {}

    def visit(node) -> Effects:
        if id(node) in memo:
            return memo[id(node)]
        child_fx = [visit(child) for child in node.children]
        fx = node_effects(node, child_fx, summaries)
        memo[id(node)] = fx
        node.effects = fx
        return fx

    for plan in plans:
        visit(plan)
    return memo


def subtree_effects(node, summaries: dict | None = None) -> Effects:
    """The node's subtree-level effects, computing them if not yet
    annotated (results are cached on the nodes either way)."""
    existing = getattr(node, "effects", None)
    if existing is not None:
        return existing
    return annotate_effects([node], summaries)[id(node)]
