"""Source spans: 1-based line/column locations with caret rendering.

Every token knows where it starts; the parser threads those positions
onto AST nodes as :class:`Span` records, and both syntax errors and the
semantic analyzer's diagnostics render them as the same caret frame::

    2 | PEAKS = SELECT(region: pvalue < 0.05) ENCODE;
      |                        ^^^^^^

Spans are advisory: a missing span (``None``) simply suppresses the
frame, so positions can be threaded incrementally without breaking
anything downstream.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """A half-open source region: ``length`` characters from line/column.

    Lines and columns are 1-based, matching editor conventions and the
    lexer's token positions.  Multi-line spans are clamped to their first
    line when rendered.
    """

    line: int
    column: int
    length: int = 1

    def location(self) -> str:
        """``"line L, column C"`` -- the phrasing used by error messages."""
        return f"line {self.line}, column {self.column}"

    def to_dict(self) -> dict:
        """JSON-friendly form (used by ``repro check --format json``)."""
        return {"line": self.line, "column": self.column, "length": self.length}


def caret_frame(source: str, span: Span | None, indent: str = "  ") -> str:
    """The two-line source excerpt with carets under *span*.

    Returns ``""`` when the span is missing or falls outside *source*
    (e.g. a program assembled from AST nodes rather than parsed text).
    """
    if span is None or span.line < 1:
        return ""
    lines = source.splitlines()
    if span.line > len(lines):
        return ""
    text = lines[span.line - 1]
    gutter = str(span.line)
    pad = " " * len(gutter)
    start = max(span.column - 1, 0)
    width = max(1, min(span.length, max(len(text) - start, 1)))
    underline = " " * start + "^" * width
    return (
        f"{indent}{gutter} | {text}\n"
        f"{indent}{pad} | {underline}"
    )
