"""Logical query plans: the compiler's output, the engines' input.

A plan is a DAG of :class:`PlanNode` instances; shared sub-plans (one
variable used by several operations) appear once and are memoised at
execution time.  Plans carry *resolved* objects -- predicate instances,
aggregate instances, genometric conditions -- so the interpreter and the
engine backends never see surface syntax.  This is the layer the paper's
section 4.2 describes as framework-independent: "the compiler, logical
optimizer, and APIs/UIs are independent from the adoption of either
framework".
"""

from __future__ import annotations

from typing import Iterator

from repro.gmql.genometric import GenometricCondition
from repro.intervals import AccumulationBound


class PlanNode:
    """Base class of logical plan nodes.

    Attributes
    ----------
    children:
        Operand plan nodes, in operand order.
    result_name:
        The variable name this node was assigned to (used for result
        dataset naming and provenance); set by the compiler.
    """

    kind = "abstract"

    #: Inferred output shape (:class:`~repro.gmql.lang.semantics.VarInfo`),
    #: attached by the compiler when semantic analysis ran.  Class-level
    #: defaults keep these out of ``vars(node)`` -- and therefore out of
    #: plan fingerprints -- unless analysis actually set them.
    inferred = None
    #: Rule code (e.g. ``"GQL107"``) proving this node's result is empty.
    prunable_empty = None
    #: Derived :class:`~repro.gmql.lang.effects.Effects` record, attached
    #: by :func:`~repro.gmql.lang.effects.annotate_effects`.
    effects = None

    def __init__(self, *children: "PlanNode") -> None:
        self.children = list(children)
        self.result_name: str | None = None

    def label(self) -> str:
        """One-line description used by EXPLAIN output."""
        return self.kind.upper()

    def walk(self) -> Iterator["PlanNode"]:
        """Depth-first post-order walk (each node once)."""
        seen: set = set()

        def visit(node: "PlanNode"):
            if id(node) in seen:
                return
            seen.add(id(node))
            for child in node.children:
                yield from visit(child)
            yield node

        yield from visit(self)

    def explain(self, indent: int = 0, seen: set | None = None) -> str:
        """Indented textual plan tree."""
        seen = seen if seen is not None else set()
        prefix = "  " * indent
        if id(self) in seen:
            return f"{prefix}{self.label()} (shared)"
        seen.add(id(self))
        line = f"{prefix}{self.label()}"
        if self.inferred is not None:
            line = f"{line}  :: {self.inferred.render()}"
        if self.effects is not None:
            line = f"{line}  !! {self.effects.render()}"
        lines = [line]
        for child in self.children:
            lines.append(child.explain(indent + 1, seen))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.label()}>"


class ScanPlan(PlanNode):
    """Leaf: read a source dataset by name."""

    kind = "scan"

    def __init__(self, dataset_name: str) -> None:
        super().__init__()
        self.dataset_name = dataset_name

    def label(self) -> str:
        return f"SCAN {self.dataset_name}"


class EmptyPlan(PlanNode):
    """Leaf: a statically-proven-empty result.

    Produced by the optimizer when the semantic analyzer proves an
    operator's output empty (e.g. a SELECT whose metadata predicate is
    always false); ``pruned_by`` records the rule code that proved it.
    The schema is the one inference assigned to the pruned subtree, so
    downstream operators still see the right columns.
    """

    kind = "empty"

    def __init__(self, schema, pruned_by: str) -> None:
        super().__init__()
        self.schema = schema
        self.pruned_by = pruned_by

    def label(self) -> str:
        return f"EMPTY[{self.pruned_by}]"


class SelectPlan(PlanNode):
    kind = "select"

    def __init__(
        self,
        child: PlanNode,
        meta_predicate=None,
        region_predicate=None,
        semijoin_attributes: tuple = (),
        semijoin_plan: PlanNode | None = None,
        semijoin_negated: bool = False,
    ) -> None:
        children = [child] + ([semijoin_plan] if semijoin_plan else [])
        super().__init__(*children)
        self.meta_predicate = meta_predicate
        self.region_predicate = region_predicate
        self.semijoin_attributes = semijoin_attributes
        self.semijoin_negated = semijoin_negated

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    @property
    def semijoin_plan(self) -> PlanNode | None:
        return self.children[1] if len(self.children) > 1 else None

    def label(self) -> str:
        parts = []
        if self.meta_predicate is not None:
            parts.append("meta")
        if self.region_predicate is not None:
            parts.append("region")
        if self.semijoin_plan is not None:
            parts.append("semijoin")
        return f"SELECT[{'+'.join(parts) or 'all'}]"


class ProjectPlan(PlanNode):
    kind = "project"

    def __init__(
        self,
        child: PlanNode,
        region_attributes: tuple | None,
        metadata_attributes: tuple | None,
        new_region_attributes: dict,
    ) -> None:
        super().__init__(child)
        self.region_attributes = region_attributes
        self.metadata_attributes = metadata_attributes
        self.new_region_attributes = new_region_attributes

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def label(self) -> str:
        kept = "*" if self.region_attributes is None else ",".join(self.region_attributes)
        return f"PROJECT[{kept}]"


class ExtendPlan(PlanNode):
    kind = "extend"

    def __init__(self, child: PlanNode, assignments: dict) -> None:
        super().__init__(child)
        self.assignments = assignments

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def label(self) -> str:
        return f"EXTEND[{','.join(self.assignments)}]"


class MergePlan(PlanNode):
    kind = "merge"

    def __init__(self, child: PlanNode, groupby: tuple) -> None:
        super().__init__(child)
        self.groupby = groupby

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def label(self) -> str:
        return f"MERGE[{','.join(self.groupby) or 'all'}]"


class GroupPlan(PlanNode):
    kind = "group"

    def __init__(
        self,
        child: PlanNode,
        meta_keys: tuple | None,
        meta_aggregates: dict,
        region_aggregates: dict,
    ) -> None:
        super().__init__(child)
        self.meta_keys = meta_keys
        self.meta_aggregates = meta_aggregates
        self.region_aggregates = region_aggregates

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def label(self) -> str:
        return f"GROUP[{','.join(self.meta_keys or ())}]"


class OrderPlan(PlanNode):
    kind = "order"

    def __init__(
        self,
        child: PlanNode,
        meta_keys: tuple,
        top: int | None,
        region_keys: tuple,
        region_top: int | None,
    ) -> None:
        super().__init__(child)
        self.meta_keys = meta_keys
        self.top = top
        self.region_keys = region_keys
        self.region_top = region_top

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def label(self) -> str:
        keys = ",".join(f"{a}:{d}" for a, d in self.meta_keys)
        top = f" top={self.top}" if self.top is not None else ""
        return f"ORDER[{keys}{top}]"


class UnionPlan(PlanNode):
    kind = "union"

    @property
    def left(self) -> PlanNode:
        return self.children[0]

    @property
    def right(self) -> PlanNode:
        return self.children[1]


class DifferencePlan(PlanNode):
    kind = "difference"

    def __init__(
        self, left: PlanNode, right: PlanNode, joinby: tuple, exact: bool
    ) -> None:
        super().__init__(left, right)
        self.joinby = joinby
        self.exact = exact

    @property
    def left(self) -> PlanNode:
        return self.children[0]

    @property
    def right(self) -> PlanNode:
        return self.children[1]

    def label(self) -> str:
        return f"DIFFERENCE[{'exact' if self.exact else 'overlap'}]"


class CoverPlan(PlanNode):
    kind = "cover"

    def __init__(
        self,
        child: PlanNode,
        variant: str,
        min_acc: AccumulationBound,
        max_acc: AccumulationBound,
        groupby: tuple,
    ) -> None:
        super().__init__(child)
        self.variant = variant
        self.min_acc = min_acc
        self.max_acc = max_acc
        self.groupby = groupby

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def label(self) -> str:
        return f"{self.variant}[{self.min_acc!r},{self.max_acc!r}]"


class MapPlan(PlanNode):
    kind = "map"

    def __init__(
        self,
        reference: PlanNode,
        experiment: PlanNode,
        aggregates: dict,
        joinby: tuple,
    ) -> None:
        super().__init__(reference, experiment)
        self.aggregates = aggregates
        self.joinby = joinby

    @property
    def reference(self) -> PlanNode:
        return self.children[0]

    @property
    def experiment(self) -> PlanNode:
        return self.children[1]

    def label(self) -> str:
        return f"MAP[{','.join(self.aggregates) or 'count'}]"


class JoinPlan(PlanNode):
    kind = "join"

    def __init__(
        self,
        anchor: PlanNode,
        experiment: PlanNode,
        condition: GenometricCondition,
        output: str,
        joinby: tuple,
    ) -> None:
        super().__init__(anchor, experiment)
        self.condition = condition
        self.output = output
        self.joinby = joinby

    @property
    def anchor(self) -> PlanNode:
        return self.children[0]

    @property
    def experiment(self) -> PlanNode:
        return self.children[1]

    def label(self) -> str:
        return f"JOIN[{self.condition.describe()};{self.output}]"


class CompiledProgram:
    """The compiler's output: named plan roots plus materialisation targets.

    Attributes
    ----------
    variables:
        ``{variable: PlanNode}`` for every assigned variable.
    outputs:
        ``{result_name: PlanNode}`` for the plans to execute --
        MATERIALIZE targets when present, otherwise all variables.
    sources:
        Names of the source datasets the program scans.
    analysis:
        The :class:`~repro.gmql.lang.semantics.Analysis` that vetted the
        program, when the compiler ran the analyzer (``None`` otherwise).
    """

    def __init__(self, variables: dict, outputs: dict, sources: tuple) -> None:
        self.variables = variables
        self.outputs = outputs
        self.sources = sources
        self.analysis = None

    def explain(self) -> str:
        """EXPLAIN text of every output plan."""
        parts = []
        for name, node in self.outputs.items():
            parts.append(f"-- {name} --")
            parts.append(node.explain())
        return "\n".join(parts)
