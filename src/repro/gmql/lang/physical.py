"""Physical plans: cost-annotated, backend-routed execution plans.

The logical plan (:mod:`repro.gmql.lang.plan`) says *what* to compute;
the physical plan says *how*: every node carries a cardinality estimate
(reusing the federation estimator of
:mod:`repro.federation.estimator`, so local and federated planning share
one cost model) and the kernel backend chosen to execute it.  Under the
``auto`` engine the choice is per node -- a query whose SELECT is tiny
but whose MAP is huge routes each operator to its best kernel; under a
named engine every node is pinned to that backend, preserving the old
one-backend-per-query behaviour.

After execution the interpreter writes actuals back into the nodes
(wall time, output region/sample counts, the backend that really ran),
which is what ``repro explain --analyze`` renders: the plan tree with
estimated vs actual rows and per-node time/backend.

When source datasets are available at planning time, two store-backed
refinements kick in.  The cost model consults the scans' zone maps:
binary region operators whose operands trace back to scans are costed
on the *live* partitions only (zone-disjoint partitions produce no
pairs), which can route a nominally huge but spatially disjoint MAP to
a cheaper kernel.  And every node gets a *fingerprint* -- a digest of
its operator kind, resolved parameters and its children's fingerprints,
anchored in the scans' content digests -- which keys the
:mod:`repro.store.cache` result cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.engine.auto import choose_backend
from repro.engine.dispatch import available_backends
from repro.gmql.lang.effects import node_effects
from repro.gmql.lang.plan import (
    CompiledProgram,
    EmptyPlan,
    JoinPlan,
    PlanNode,
    ScanPlan,
)
from repro.store.cache import plan_token


@dataclass
class PhysicalNode:
    """One plan node annotated with cost estimates and a backend choice."""

    logical: PlanNode
    children: list = field(default_factory=list)
    estimate: object | None = None          # federation Estimate
    input_regions: float = 0.0              # estimated regions entering
    backend: str = "naive"
    reason: str = ""
    #: Vectorised kernel the chosen backend is expected to dispatch to
    #: (``join.window``, ``map.pairs``...); ``None`` for operators whose
    #: backends have a single code path.
    kernel: str | None = None
    #: Content-based cache key (``None`` when sources are unavailable at
    #: planning time, which disables result caching for this node).
    fingerprint: str | None = None
    #: Derived effect record (:class:`repro.gmql.lang.effects.Effects`):
    #: chromosome locality, exactness class, cache/morsel safety, bounds.
    effects: object | None = None
    # -- actuals, filled in by the interpreter during execution --
    actual_seconds: float | None = None
    actual_regions: int | None = None
    actual_samples: int | None = None
    executed_backend: str | None = None
    cached: bool = False

    @property
    def kind(self) -> str:
        return self.logical.kind

    def label(self) -> str:
        return self.logical.label()

    # -- rendering --------------------------------------------------------------

    def _annotation(self, analyze: bool) -> str:
        est_regions = (
            int(self.estimate.regions) if self.estimate is not None else 0
        )
        parts = [f"backend={self.executed_backend or self.backend}"]
        if self.kernel is not None:
            parts.append(f"kernel={self.kernel}")
        if analyze and self.actual_regions is not None:
            parts.append(f"rows={est_regions}->{self.actual_regions}")
            parts.append(f"samples={self.actual_samples}")
            parts.append(f"time={(self.actual_seconds or 0.0) * 1000:.2f}ms")
            if self.cached:
                parts.append("cached")
        else:
            parts.append(f"est_rows={est_regions}")
            if self.estimate is not None:
                parts.append(f"est_samples={int(self.estimate.samples)}")
        if self.logical.inferred is not None:
            parts.append(f"schema={self.logical.inferred.region.render()}")
        if self.effects is not None:
            parts.append(f"effects=[{self.effects.render()}]")
        if isinstance(self.logical, EmptyPlan):
            parts.append(f"pruned_by={self.logical.pruned_by}")
        return " ".join(parts)

    def explain(
        self, indent: int = 0, seen: set | None = None, analyze: bool = False
    ) -> str:
        """Indented physical plan tree (shared sub-plans printed once)."""
        seen = seen if seen is not None else set()
        prefix = "  " * indent
        if id(self) in seen:
            return f"{prefix}{self.label()} (shared)"
        seen.add(id(self))
        lines = [f"{prefix}{self.label()}  [{self._annotation(analyze)}]"]
        for child in self.children:
            lines.append(child.explain(indent + 1, seen, analyze))
        return "\n".join(lines)

    def walk(self):
        """Depth-first post-order walk over distinct physical nodes."""
        seen: set = set()

        def visit(node: "PhysicalNode"):
            if id(node) in seen:
                return
            seen.add(id(node))
            for child in node.children:
                yield from visit(child)
            yield node

        yield from visit(self)


class PhysicalProgram:
    """A compiled program lowered to backend-routed physical plans."""

    def __init__(
        self, outputs: dict, engine: str, summaries: dict | None = None
    ) -> None:
        self.outputs = outputs
        self.engine = engine
        self.summaries = dict(summaries or {})

    def explain(self, analyze: bool = False) -> str:
        """EXPLAIN (or EXPLAIN ANALYZE) text of every output plan."""
        parts = []
        for name, node in self.outputs.items():
            parts.append(f"-- {name} [engine={self.engine}] --")
            parts.append(node.explain(analyze=analyze))
        return "\n".join(parts)

    def walk(self):
        """Every distinct physical node across all outputs, post-order."""
        seen: set = set()
        for root in self.outputs.values():
            for node in root.walk():
                if id(node) not in seen:
                    seen.add(id(node))
                    yield node

    def chosen_backends(self) -> dict:
        """``{kind: set of chosen backend names}`` -- routing overview."""
        out: dict = {}
        for node in self.walk():
            out.setdefault(node.kind, set()).add(node.backend)
        return out


def _scan_source(node: PhysicalNode, datasets: dict):
    """The source dataset a node's content is drawn from, if derivable.

    Follows chains of row-preserving-or-filtering unary operators down
    to a scan; anything else (joins, unions, semijoin selects) returns
    ``None``.  Used only for cost refinement, so the answer being an
    upper bound on the node's content is exactly what is needed.
    """
    current = node
    while True:
        if current.kind == "scan":
            return datasets.get(current.logical.dataset_name)
        if (
            current.kind in ("select", "project", "order")
            and len(current.children) == 1
        ):
            current = current.children[0]
            continue
        return None


def _zone_refinement(node: PlanNode, children: list, datasets: dict):
    """``(live_fraction, note)`` from the operand scans' zone maps.

    For MAP/DIFFERENCE the live partitions are the (chromosome, bin)
    pairs occupied on *both* sides -- overlapping regions always share
    an occupied bin.  For JOIN with a finite DLE bound the test is
    chromosome-level with distance-widened windows; unbounded and MD(k)
    conditions can pair regions at any distance, so only chromosome
    *presence* on the experiment side keeps an anchor partition live.
    Returns ``(None, "")`` when the sources cannot be resolved.
    """
    import numpy as np

    if len(children) != 2:
        return None, ""
    left = _scan_source(children[0], datasets)
    right = _scan_source(children[1], datasets)
    if left is None or right is None:
        return None, ""
    left_zone = left.store().zone_map()
    right_zone = right.store().zone_map()
    total = left_zone.partitions()
    if not total:
        return None, ""
    live = 0
    if isinstance(node, JoinPlan):
        distance = node.condition.max_distance()
        for chrom, entry in left_zone.entries.items():
            other = right_zone.entry(chrom)
            if other is None:
                continue
            if distance is None or other.window_overlaps(
                entry.min_start - distance - 1,
                entry.max_stop + distance + 1,
            ):
                live += entry.partitions
    else:
        for chrom, entry in left_zone.entries.items():
            other = right_zone.entry(chrom)
            if other is not None:
                live += int(
                    np.intersect1d(
                        entry.bins, other.bins, assume_unique=True
                    ).size
                )
    return live / total, f"zone maps: {live}/{total} partitions live"


def _kernel_hint(node: PlanNode, backend: str) -> str | None:
    """The vectorised kernel *backend* will dispatch *node* to, if known.

    Purely informational (rendered by ``repro explain``); the backends
    re-derive the dispatch themselves at execution time.
    """
    if backend not in ("columnar", "parallel"):
        return None
    suffix = "+shm" if backend == "parallel" else ""
    if isinstance(node, JoinPlan):
        nearest = node.condition.min_distance_k() is not None
        return ("join.nearest" if nearest else "join.window") + suffix
    if node.kind == "map":
        from repro.gmql.aggregates import Count

        aggregates = getattr(node, "aggregates", None) or {}
        only_counts = all(
            isinstance(aggregate, Count) and attribute is None
            for aggregate, attribute in aggregates.values()
        )
        return ("map.count" if only_counts else "map.pairs") + suffix
    if node.kind == "cover":
        return "cover.sweep" + suffix
    if node.kind == "difference":
        # Exact and joinby DIFFERENCE fall back to the naive kernel.
        if getattr(node, "exact", False) or getattr(node, "joinby", None):
            return None
        return "difference.sweep" + suffix
    return None


def plan_program(
    compiled: CompiledProgram,
    summaries: dict | None = None,
    engine: str = "auto",
    datasets: dict | None = None,
) -> PhysicalProgram:
    """Lower a (optimized) compiled program to a physical program.

    Parameters
    ----------
    summaries:
        ``{dataset_name: summary_dict}`` cardinalities for the scans; when
        omitted they are derived from *datasets* (in-memory sources).
    engine:
        ``auto`` routes each node independently via
        :func:`repro.engine.auto.choose_backend`; any other name pins
        every node to that backend.
    """
    # Imported lazily: repro.federation's package __init__ imports the
    # GMQL language package, which imports this module.
    from repro.federation.estimator import estimate_plan, summarize_datasets

    if summaries is None:
        summaries = summarize_datasets(datasets or {})
    available = available_backends()
    estimates: dict = {}
    memo: dict = {}

    def fingerprint_of(node: PlanNode, children: list) -> str | None:
        if isinstance(node, ScanPlan):
            source = (datasets or {}).get(node.dataset_name)
            if source is None:
                return None
            return f"scan:{source.store().digest()}"
        if isinstance(node, EmptyPlan):
            columns = ",".join(f"{d.name}:{d.type.name}" for d in node.schema)
            return f"empty:{columns}"
        prints = [child.fingerprint for child in children]
        if any(print_ is None for print_ in prints):
            return None
        h = hashlib.blake2b(digest_size=16)
        h.update(node.kind.encode())
        # result_name is a rename, not content; the interpreter
        # re-applies it after a cache hit.  Analyzer annotations
        # (inferred shape, emptiness proofs, effect records) are derived
        # facts, not content, and must not perturb cache keys.
        params = {
            key: value
            for key, value in vars(node).items()
            if key not in
            ("children", "result_name", "inferred", "prunable_empty",
             "effects")
        }
        h.update(plan_token(params).encode())
        for print_ in prints:
            h.update(print_.encode())
        return h.hexdigest()

    def build(node: PlanNode) -> PhysicalNode:
        if id(node) in memo:
            return memo[id(node)]
        children = [build(child) for child in node.children]
        estimate = estimate_plan(node, summaries, estimates)
        effects = node_effects(
            node, [child.effects for child in children], summaries
        )
        node.effects = effects
        if isinstance(node, ScanPlan):
            input_regions = estimate.regions
        else:
            input_regions = sum(
                child.estimate.regions for child in children
            )
        zone_note = ""
        zone_fraction = None
        if datasets and node.kind in ("map", "join", "difference"):
            zone_fraction, zone_note = _zone_refinement(
                node, children, datasets
            )
            if zone_fraction is not None and zone_fraction < 1.0:
                input_regions *= zone_fraction
        if zone_fraction is not None and zone_fraction < 1.0:
            # Zone maps prove partitions dead, so they refine the sound
            # bounds too: dead partitions contribute no output pairs.
            effects = replace(
                effects,
                bound_regions=(
                    None if effects.bound_regions is None
                    else int(effects.bound_regions * zone_fraction) + 1
                ),
                input_bound=(
                    None if effects.input_bound is None
                    else int(effects.input_bound * zone_fraction) + 1
                ),
            )
            node.effects = effects
        if isinstance(node, EmptyPlan):
            backend, reason = "empty", (
                f"statically pruned by {node.pruned_by}; nothing to execute"
            )
        elif engine == "auto":
            backend, reason = choose_backend(
                node.kind, input_regions, available, effects=effects
            )
        elif isinstance(node, ScanPlan):
            backend, reason = "source", "scans read datasets directly"
        else:
            backend, reason = engine, f"engine pinned to {engine!r}"
        if zone_note:
            reason = f"{reason} ({zone_note})"
        physical = PhysicalNode(
            logical=node,
            children=children,
            estimate=estimate,
            input_regions=input_regions,
            backend=backend,
            reason=reason,
            kernel=_kernel_hint(node, backend),
            fingerprint=fingerprint_of(node, children),
            effects=effects,
        )
        memo[id(node)] = physical
        return physical

    outputs = {name: build(node) for name, node in compiled.outputs.items()}
    return PhysicalProgram(outputs, engine, summaries)
