"""Logical optimizer: plan-to-plan rewrites.

Rules implemented (all semantics-preserving):

* **select fusion** -- ``SELECT(p2) SELECT(p1) X`` becomes a single SELECT
  with conjoined predicates, saving one full pass over samples and regions
  (programmatically generated queries routinely chain selections);
* **select pushdown through UNION** -- a SELECT above a UNION is applied
  to both operands, shrinking the data that UNION must remap through the
  merged schema (region predicates referring to attributes of only one
  operand cannot be pushed and stay put);
* **identity elimination** -- PROJECTs that keep everything and compute
  nothing, and SELECTs with no condition, are dropped;
* **empty-subtree pruning** -- nodes the semantic analyzer proved empty
  (``prunable_empty`` set by the compiler, e.g. an always-false metadata
  SELECT) collapse to an :class:`EmptyPlan` leaf carrying the inferred
  schema, annotated ``pruned_by=GQL1xx`` in physical plans.

The optimizer preserves plan sharing: a sub-plan used twice is rewritten
once, so the interpreter's memoisation still applies.  Rewrites are
copy-on-write: nodes whose children change are shallow-cloned, never
mutated, so the pre-optimization :class:`CompiledProgram` stays intact
(its EXPLAIN output is unchanged by optimization -- there is a
regression test for exactly that).
"""

from __future__ import annotations

import copy

from repro.gmql.lang.plan import (
    CompiledProgram,
    EmptyPlan,
    PlanNode,
    ProjectPlan,
    SelectPlan,
    UnionPlan,
)
from repro.gmql.predicates import MetaAnd, RegionAnd


def _conjoin(a, b, combiner):
    if a is None:
        return b
    if b is None:
        return a
    return combiner(a, b)


def _is_identity_select(node: SelectPlan) -> bool:
    return (
        node.meta_predicate is None
        and node.region_predicate is None
        and node.semijoin_plan is None
    )


def _is_identity_project(node: ProjectPlan) -> bool:
    return (
        node.region_attributes is None
        and node.metadata_attributes is None
        and not node.new_region_attributes
    )


def _pushable_through_union(node: SelectPlan, union: UnionPlan) -> bool:
    # Semijoins and metadata predicates are sample-level and always
    # pushable; region predicates are pushable only when they touch
    # fixed attributes (variable attributes may exist on one side only).
    if node.region_predicate is None:
        return True
    fixed = {"chrom", "chr", "left", "start", "right", "stop", "strand"}
    return node.region_predicate.attributes() <= fixed


class Optimizer:
    """Applies the rewrite rules bottom-up with sharing-preserving memo."""

    def __init__(self, use_counts: dict | None = None) -> None:
        self._memo: dict = {}
        self._use_counts = use_counts or {}
        self.rewrites: list = []

    def _shared(self, node: PlanNode) -> bool:
        """True when *node* feeds more than one consumer (do not absorb it)."""
        return self._use_counts.get(id(node), 0) > 1

    def _with_children(self, node: PlanNode, children: list) -> PlanNode:
        """Shallow-clone *node* with new children (copy-on-write).

        The clone inherits the original's use count so the sharing checks
        in :meth:`_apply_rules` keep seeing shared sub-plans as shared.
        """
        clone = copy.copy(node)
        clone.children = list(children)
        self._use_counts[id(clone)] = self._use_counts.get(id(node), 0)
        return clone

    def rewrite(self, node: PlanNode) -> PlanNode:
        if id(node) in self._memo:
            return self._memo[id(node)]
        children = [self.rewrite(child) for child in node.children]
        current = node
        if any(new is not old for new, old in zip(children, node.children)):
            current = self._with_children(node, children)
        result = self._apply_rules(current)
        self._memo[id(node)] = result
        return result

    def _apply_rules(self, node: PlanNode) -> PlanNode:
        if node.prunable_empty is not None and node.inferred is not None:
            schema = node.inferred.region.to_schema()
            if schema is not None:
                empty = EmptyPlan(schema, node.prunable_empty)
                empty.result_name = node.result_name
                empty.inferred = node.inferred
                self.rewrites.append(f"prune-empty[{node.prunable_empty}]")
                return empty
        if isinstance(node, SelectPlan):
            if _is_identity_select(node):
                self.rewrites.append("drop-identity-select")
                return node.child
            child = node.child
            if (
                isinstance(child, SelectPlan)
                and node.semijoin_plan is None
                and not self._shared(child)
            ):
                fused = SelectPlan(
                    child.child,
                    _conjoin(child.meta_predicate, node.meta_predicate, MetaAnd),
                    _conjoin(
                        child.region_predicate, node.region_predicate, RegionAnd
                    ),
                    child.semijoin_attributes,
                    child.semijoin_plan,
                    child.semijoin_negated,
                )
                fused.result_name = node.result_name
                self.rewrites.append("fuse-selects")
                return self._apply_rules(fused)
            if isinstance(child, UnionPlan) and _pushable_through_union(
                node, child
            ) and not self._shared(child):
                pushed = UnionPlan(
                    self._apply_rules(
                        SelectPlan(
                            child.left,
                            node.meta_predicate,
                            node.region_predicate,
                            node.semijoin_attributes,
                            node.semijoin_plan,
                            node.semijoin_negated,
                        )
                    ),
                    self._apply_rules(
                        SelectPlan(
                            child.right,
                            node.meta_predicate,
                            node.region_predicate,
                            node.semijoin_attributes,
                            node.semijoin_plan,
                            node.semijoin_negated,
                        )
                    ),
                )
                pushed.result_name = node.result_name
                self.rewrites.append("push-select-through-union")
                return pushed
        if isinstance(node, ProjectPlan) and _is_identity_project(node):
            self.rewrites.append("drop-identity-project")
            return node.child
        return node


def _use_counts(compiled: CompiledProgram) -> dict:
    """How many consumers each plan node has across the output DAGs."""
    counts: dict = {}
    seen: set = set()

    def visit(node: PlanNode) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in node.children:
            counts[id(child)] = counts.get(id(child), 0) + 1
            visit(child)

    for root in compiled.outputs.values():
        counts[id(root)] = counts.get(id(root), 0) + 1
        visit(root)
    return counts


def optimize(compiled: CompiledProgram) -> CompiledProgram:
    """Optimize every output plan of a compiled program (new program)."""
    optimizer = Optimizer(_use_counts(compiled))
    outputs = {
        name: optimizer.rewrite(node) for name, node in compiled.outputs.items()
    }
    variables = {
        name: optimizer.rewrite(node)
        for name, node in compiled.variables.items()
    }
    result = CompiledProgram(variables, outputs, compiled.sources)
    result.analysis = compiled.analysis
    result.rewrites = list(optimizer.rewrites)  # type: ignore[attr-defined]
    return result
