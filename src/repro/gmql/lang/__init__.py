"""The textual GMQL language: lexer, parser, compiler, optimizer,
physical planner and interpreter.

End-to-end entry point::

    from repro.gmql.lang import execute
    results = execute(program_text, {"ENCODE": encode_ds, ...})

The pipeline is parse -> compile (logical plan) -> optimize -> physical
plan (cost annotation + per-node backend choice) -> execute.  Use
:func:`explain_analyze` to run a program and get back the annotated
physical plan (estimated vs actual cardinalities, per-node backend and
wall time) next to the results.
"""

from repro.gmql.lang.ast_nodes import Program
from repro.gmql.lang.compiler import compile_program
from repro.gmql.lang.interpreter import Interpreter
from repro.gmql.lang.lexer import tokenize
from repro.gmql.lang.optimizer import optimize
from repro.gmql.lang.parser import parse
from repro.gmql.lang.physical import (
    PhysicalNode,
    PhysicalProgram,
    plan_program,
)
from repro.gmql.lang.plan import CompiledProgram, PlanNode
from repro.gmql.lang.semantics import Analysis, Diagnostic, analyze_program


def execute(
    program: str,
    datasets: dict,
    engine: str = "naive",
    optimized: bool = True,
    context=None,
) -> dict:
    """Parse, compile, (optionally) optimize and run a GMQL program.

    Parameters
    ----------
    program:
        GMQL text.
    datasets:
        Source datasets by name.
    engine:
        Backend name (``naive``, ``columnar``, ``parallel``, or ``auto``
        for per-operator routing).
    optimized:
        Apply the logical optimizer (disable for ablation runs).
    context:
        Optional :class:`~repro.engine.context.ExecutionContext`
        (tracing, metrics, deadline, worker configuration).

    Returns ``{output_name: Dataset}`` -- the MATERIALIZE targets, or all
    assigned variables when nothing is materialised.
    """
    from repro.engine.dispatch import get_backend

    # Analysis runs against the actual sources, so data-dependent rules
    # (unknown attributes, provably-empty selections) apply; an
    # error-severity finding raises before any operator executes.
    compiled = compile_program(program, datasets=datasets)
    if optimized:
        compiled = optimize(compiled)
    backend = get_backend(engine)
    try:
        return Interpreter(backend, datasets, context=context).run_program(
            compiled
        )
    finally:
        backend.close()


def explain(
    program: str, optimized: bool = True, datasets: dict | None = None
) -> str:
    """EXPLAIN text for a GMQL program (no execution)."""
    compiled = compile_program(program, datasets=datasets)
    if optimized:
        compiled = optimize(compiled)
    return compiled.explain()


def explain_analyze(
    program: str,
    datasets: dict,
    engine: str = "auto",
    optimized: bool = True,
    context=None,
) -> tuple:
    """Run a program and return ``(results, physical_program, context)``.

    The physical program's nodes carry estimated *and* actual
    cardinalities, the chosen/executed backend and per-node wall time;
    ``physical_program.explain(analyze=True)`` renders the annotated
    tree (this is what ``repro explain --analyze`` prints).  The context
    additionally holds the full span trace and the metrics registry.
    """
    from repro.engine.context import ExecutionContext
    from repro.engine.dispatch import get_backend

    compiled = compile_program(program, datasets=datasets)
    if optimized:
        compiled = optimize(compiled)
    backend = get_backend(engine)
    interpreter = Interpreter(
        backend, datasets, context=context or ExecutionContext()
    )
    physical = interpreter.plan(compiled)
    try:
        results = interpreter.run_physical(physical)
    finally:
        backend.close()
    return results, physical, interpreter.context


__all__ = [
    "Analysis",
    "CompiledProgram",
    "Diagnostic",
    "Interpreter",
    "PhysicalNode",
    "PhysicalProgram",
    "PlanNode",
    "Program",
    "analyze_program",
    "compile_program",
    "execute",
    "explain",
    "explain_analyze",
    "optimize",
    "parse",
    "plan_program",
    "tokenize",
]
