"""The textual GMQL language: lexer, parser, compiler, optimizer, interpreter.

End-to-end entry point::

    from repro.gmql.lang import execute
    results = execute(program_text, {"ENCODE": encode_ds, ...})
"""

from repro.gmql.lang.ast_nodes import Program
from repro.gmql.lang.compiler import compile_program
from repro.gmql.lang.interpreter import Interpreter
from repro.gmql.lang.lexer import tokenize
from repro.gmql.lang.optimizer import optimize
from repro.gmql.lang.parser import parse
from repro.gmql.lang.plan import CompiledProgram, PlanNode


def execute(
    program: str,
    datasets: dict,
    engine: str = "naive",
    optimized: bool = True,
) -> dict:
    """Parse, compile, (optionally) optimize and run a GMQL program.

    Parameters
    ----------
    program:
        GMQL text.
    datasets:
        Source datasets by name.
    engine:
        Backend name (``naive``, ``columnar``, ``parallel``).
    optimized:
        Apply the logical optimizer (disable for ablation runs).

    Returns ``{output_name: Dataset}`` -- the MATERIALIZE targets, or all
    assigned variables when nothing is materialised.
    """
    from repro.engine.dispatch import get_backend

    compiled = compile_program(program)
    if optimized:
        compiled = optimize(compiled)
    backend = get_backend(engine)
    return Interpreter(backend, datasets).run_program(compiled)


def explain(program: str, optimized: bool = True) -> str:
    """EXPLAIN text for a GMQL program (no execution)."""
    compiled = compile_program(program)
    if optimized:
        compiled = optimize(compiled)
    return compiled.explain()


__all__ = [
    "CompiledProgram",
    "Interpreter",
    "PlanNode",
    "Program",
    "compile_program",
    "execute",
    "explain",
    "optimize",
    "parse",
    "tokenize",
]
