"""Recursive-descent parser for the textual GMQL dialect.

Statement forms::

    VAR = SELECT(<bool>; region: <bool>; semijoin: a,b IN OTHER) DS;
    VAR = PROJECT(attr1, new AS right - left; metadata: cell) DS;
    VAR = EXTEND(n AS COUNT, m AS MAX(score)) DS;
    VAR = MERGE(groupby: cell) DS;
    VAR = GROUP(groupby: cell; metadata: n AS COUNT(rep); region: m AS COUNT) DS;
    VAR = ORDER(score DESC; top: 5; region: p_value ASC TOP 3) DS;
    VAR = UNION() A B;
    VAR = DIFFERENCE(joinby: cell; exact) A B;
    VAR = COVER(2, ANY; groupby: cell) DS;        # also FLAT/SUMMIT/HISTOGRAM
    VAR = MAP(peak_count AS COUNT; joinby: cell) REF EXP;
    VAR = JOIN(DLE(1000), MD(1), UP; output: LEFT; joinby: cell) A B;
    MATERIALIZE VAR;
    MATERIALIZE VAR INTO Name;

Keywords are case-insensitive; operands are variable or source-dataset
names.  Accumulation bounds accept ``N``, ``ANY``, ``ALL``, ``ALL + k``
and ``(ALL + k) / n``.

Token positions are threaded onto the AST as
:class:`~repro.gmql.lang.span.Span` records (excluded from node
equality), so the semantic analyzer can point diagnostics back into the
program text; syntax errors carry the same positions and render the same
caret frames.
"""

from __future__ import annotations

import dataclasses

from repro.errors import GmqlSyntaxError
from repro.gmql.lang import ast_nodes as ast
from repro.gmql.lang.lexer import tokenize
from repro.gmql.lang.tokens import EOF, IDENT, KEYWORD, NUMBER, STRING, Token

_COMPARISON_OPS = ("==", "!=", "<=", ">=", "<", ">")
_OPERATION_KEYWORDS = (
    "SELECT", "PROJECT", "EXTEND", "MERGE", "GROUP", "ORDER", "UNION",
    "DIFFERENCE", "COVER", "FLAT", "SUMMIT", "HISTOGRAM", "MAP", "JOIN",
)


class Parser:
    """One-pass recursive-descent parser over a token list."""

    def __init__(self, tokens: list) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._position + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind != EOF:
            self._position += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> GmqlSyntaxError:
        token = token or self._peek()
        return GmqlSyntaxError(
            f"{message}, found {token}",
            token.line,
            token.column,
            token.span().length,
        )

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise self._error(f"expected {word}")
        return self._advance()

    def _expect_name(self) -> str:
        """An operand/attribute name: IDENT, or a keyword used as a name."""
        return self._expect_name_token()[0]

    def _expect_name_token(self) -> tuple:
        """``(name, token)`` for a name, keeping the position."""
        token = self._peek()
        if token.kind in (IDENT, KEYWORD):
            self._advance()
            name = token.value if token.kind == IDENT else token.value.lower()
            return name, token
        raise self._error("expected a name")

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != IDENT:
            raise self._error("expected an identifier")
        self._advance()
        return token.value

    def _expect_int(self) -> int:
        negative = False
        if self._peek().is_symbol("-"):
            self._advance()
            negative = True
        token = self._peek()
        if token.kind != NUMBER:
            raise self._error("expected an integer")
        self._advance()
        try:
            value = int(token.value)
        except ValueError:
            raise self._error("expected an integer", token) from None
        return -value if negative else value

    # -- program --------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        statements = []
        while self._peek().kind != EOF:
            statements.append(self._statement())
        return ast.Program(tuple(statements))

    def _statement(self):
        token = self._peek()
        if token.is_keyword("MATERIALIZE"):
            self._advance()
            variable_token = self._peek()
            variable = self._expect_ident()
            target = None
            if self._peek().is_keyword("INTO"):
                self._advance()
                next_token = self._peek()
                if next_token.kind in (IDENT, STRING):
                    self._advance()
                    target = next_token.value
                else:
                    raise self._error("expected a name after INTO")
            self._expect_symbol(";")
            return ast.MaterializeStmt(
                variable, target, token.line, span=variable_token.span()
            )
        if token.kind != IDENT:
            raise self._error("expected a variable assignment or MATERIALIZE")
        variable = self._expect_ident()
        self._expect_symbol("=")
        operation = self._operation()
        self._expect_symbol(";")
        return ast.Assign(variable, operation, token.line, span=token.span())

    # -- operations -----------------------------------------------------------

    def _operation(self):
        token = self._peek()
        if token.kind != KEYWORD or token.value not in _OPERATION_KEYWORDS:
            raise self._error("expected a GMQL operation keyword")
        self._advance()
        handler = getattr(self, f"_op_{token.value.lower()}")
        operation = handler()
        return dataclasses.replace(operation, span=token.span())

    # Each operator parses '(' args ')' then its operand variable(s).

    def _op_select(self) -> ast.OpSelect:
        self._expect_symbol("(")
        meta = region = None
        semijoin = None
        if not self._peek().is_symbol(")"):
            while True:
                if self._peek().is_keyword("REGION"):
                    self._advance()
                    self._expect_symbol(":")
                    clause = self._bool_expr()
                    region = (
                        clause if region is None else ast.BoolAnd(region, clause)
                    )
                elif self._peek().is_keyword("SEMIJOIN"):
                    self._advance()
                    self._expect_symbol(":")
                    semijoin = self._semijoin_clause()
                else:
                    clause = self._bool_expr()
                    meta = clause if meta is None else ast.BoolAnd(meta, clause)
                if self._peek().is_symbol(";"):
                    self._advance()
                    continue
                break
        self._expect_symbol(")")
        operand = self._expect_ident()
        return ast.OpSelect(operand, meta, region, semijoin)

    def _semijoin_clause(self) -> ast.SemiJoinClause:
        first = self._peek()
        attributes = []
        spans = []
        name, token = self._expect_name_token()
        attributes.append(name)
        spans.append(token.span())
        while self._peek().is_symbol(","):
            self._advance()
            name, token = self._expect_name_token()
            attributes.append(name)
            spans.append(token.span())
        negated = False
        if self._peek().is_keyword("NOT"):
            self._advance()
            negated = True
        self._expect_keyword("IN")
        variable = self._expect_ident()
        return ast.SemiJoinClause(
            tuple(attributes),
            variable,
            negated,
            span=first.span(),
            attribute_spans=tuple(spans),
        )

    def _op_project(self) -> ast.OpProject:
        self._expect_symbol("(")
        region_attributes: list | None = None
        region_spans: list | None = None
        new_attributes: list = []
        new_spans: list = []
        metadata_attributes: tuple | None = None
        metadata_spans: tuple = ()
        keep_all = False
        if not self._peek().is_symbol(")"):
            while True:
                if self._peek().is_keyword("METADATA"):
                    self._advance()
                    self._expect_symbol(":")
                    names, spans = self._name_list_spanned()
                    metadata_attributes = tuple(names)
                    metadata_spans = tuple(spans)
                else:
                    # Item list: '*' (keep all), names to keep, or
                    # `name AS <expr>` new attributes, comma-separated.
                    while True:
                        if self._peek().is_symbol("*"):
                            self._advance()
                            keep_all = True
                        else:
                            name, token = self._expect_name_token()
                            if self._peek().is_keyword("AS"):
                                self._advance()
                                new_attributes.append((name, self._arith_expr()))
                                new_spans.append(token.span())
                            else:
                                if region_attributes is None:
                                    region_attributes = []
                                    region_spans = []
                                region_attributes.append(name)
                                region_spans.append(token.span())
                        if self._peek().is_symbol(","):
                            self._advance()
                            continue
                        break
                if self._peek().is_symbol(";"):
                    self._advance()
                    continue
                break
        self._expect_symbol(")")
        operand = self._expect_ident()
        if keep_all:
            region_attributes = None
            region_spans = None
        elif region_attributes is None and new_attributes:
            # Only new attributes were given: keep nothing of the original
            # variable schema (use '*' to keep it).
            region_attributes = []
            region_spans = []
        return ast.OpProject(
            operand,
            tuple(region_attributes) if region_attributes is not None else None,
            metadata_attributes,
            tuple(new_attributes),
            region_attribute_spans=(
                tuple(region_spans) if region_spans is not None else ()
            ),
            metadata_attribute_spans=metadata_spans,
            new_attribute_spans=tuple(new_spans),
        )

    def _aggregate_call(self) -> ast.AggregateCall:
        target, target_token = self._expect_name_token()
        self._expect_keyword("AS")
        function, function_token = self._expect_name_token()
        function = function.upper()
        attribute = None
        attribute_span = None
        if self._peek().is_symbol("("):
            self._advance()
            if not self._peek().is_symbol(")"):
                attribute, attribute_token = self._expect_name_token()
                attribute_span = attribute_token.span()
            self._expect_symbol(")")
        return ast.AggregateCall(
            target,
            function,
            attribute,
            span=target_token.span(),
            function_span=function_token.span(),
            attribute_span=attribute_span,
        )

    def _aggregate_list(self) -> list:
        calls = [self._aggregate_call()]
        while self._peek().is_symbol(","):
            self._advance()
            calls.append(self._aggregate_call())
        return calls

    def _op_extend(self) -> ast.OpExtend:
        self._expect_symbol("(")
        assignments = self._aggregate_list()
        self._expect_symbol(")")
        operand = self._expect_ident()
        return ast.OpExtend(operand, tuple(assignments))

    def _op_merge(self) -> ast.OpMerge:
        groupby: tuple = ()
        self._expect_symbol("(")
        if self._peek().is_keyword("GROUPBY"):
            self._advance()
            self._expect_symbol(":")
            groupby = tuple(self._name_list())
        self._expect_symbol(")")
        operand = self._expect_ident()
        return ast.OpMerge(operand, groupby)

    def _op_group(self) -> ast.OpGroup:
        self._expect_symbol("(")
        meta_keys: tuple | None = None
        meta_aggregates: tuple = ()
        region_aggregates: tuple = ()
        if not self._peek().is_symbol(")"):
            while True:
                if self._peek().is_keyword("GROUPBY"):
                    self._advance()
                    self._expect_symbol(":")
                    meta_keys = tuple(self._name_list())
                elif self._peek().is_keyword("METADATA"):
                    self._advance()
                    self._expect_symbol(":")
                    meta_aggregates = tuple(self._aggregate_list())
                elif self._peek().is_keyword("REGION"):
                    self._advance()
                    self._expect_symbol(":")
                    region_aggregates = tuple(self._aggregate_list())
                else:
                    raise self._error(
                        "expected groupby:, metadata: or region: in GROUP"
                    )
                if self._peek().is_symbol(";"):
                    self._advance()
                    continue
                break
        self._expect_symbol(")")
        operand = self._expect_ident()
        return ast.OpGroup(operand, meta_keys, meta_aggregates, region_aggregates)

    def _order_keys(self) -> tuple:
        """``(keys, spans)``: ``[(attribute, dir), ...]`` plus positions."""
        keys = []
        spans = []
        while True:
            attribute, token = self._expect_name_token()
            direction = "ASC"
            if self._peek().is_keyword("ASC") or self._peek().is_keyword("DESC"):
                direction = self._advance().value
            keys.append((attribute, direction))
            spans.append(token.span())
            if self._peek().is_symbol(","):
                self._advance()
                continue
            break
        return keys, spans

    def _op_order(self) -> ast.OpOrder:
        self._expect_symbol("(")
        meta_keys: tuple = ()
        top = None
        region_keys: tuple = ()
        region_spans: tuple = ()
        region_top = None
        if not self._peek().is_symbol(")"):
            while True:
                if self._peek().is_keyword("TOP"):
                    self._advance()
                    self._expect_symbol(":")
                    top = self._expect_int()
                elif self._peek().is_keyword("REGION"):
                    self._advance()
                    self._expect_symbol(":")
                    keys, spans = self._order_keys()
                    region_keys = tuple(keys)
                    region_spans = tuple(spans)
                    if self._peek().is_keyword("TOP"):
                        self._advance()
                        region_top = self._expect_int()
                else:
                    keys, __ = self._order_keys()
                    meta_keys = tuple(keys)
                if self._peek().is_symbol(";"):
                    self._advance()
                    continue
                break
        self._expect_symbol(")")
        operand = self._expect_ident()
        return ast.OpOrder(
            operand,
            meta_keys,
            top,
            region_keys,
            region_top,
            region_key_spans=region_spans,
        )

    def _op_union(self) -> ast.OpUnion:
        self._expect_symbol("(")
        self._expect_symbol(")")
        left = self._expect_ident()
        right = self._expect_ident()
        return ast.OpUnion(left, right)

    def _op_difference(self) -> ast.OpDifference:
        joinby: tuple = ()
        exact = False
        self._expect_symbol("(")
        if not self._peek().is_symbol(")"):
            while True:
                if self._peek().is_keyword("JOINBY"):
                    self._advance()
                    self._expect_symbol(":")
                    joinby = tuple(self._name_list())
                elif self._peek().is_keyword("EXACT"):
                    self._advance()
                    exact = True
                else:
                    raise self._error("expected joinby: or exact in DIFFERENCE")
                if self._peek().is_symbol(";"):
                    self._advance()
                    continue
                break
        self._expect_symbol(")")
        left = self._expect_ident()
        right = self._expect_ident()
        return ast.OpDifference(left, right, joinby, exact)

    def _bound(self) -> ast.BoundExpr:
        start = self._peek()
        bound = self._bound_value()
        return dataclasses.replace(bound, span=start.span())

    def _bound_value(self) -> ast.BoundExpr:
        token = self._peek()
        if token.is_keyword("ANY"):
            self._advance()
            return ast.BoundExpr("ANY")
        if token.is_symbol("("):
            self._advance()
            bound = self._all_bound()
            self._expect_symbol(")")
            if self._peek().is_symbol("/"):
                self._advance()
                divisor = self._expect_int()
                bound = ast.BoundExpr("ALL", offset=bound.offset, divisor=divisor)
            return bound
        if token.is_keyword("ALL"):
            return self._all_bound()
        return ast.BoundExpr("INT", self._expect_int())

    def _all_bound(self) -> ast.BoundExpr:
        self._expect_keyword("ALL")
        offset = 0
        if self._peek().is_symbol("+"):
            self._advance()
            offset = self._expect_int()
        elif self._peek().is_symbol("-"):
            self._advance()
            offset = -self._expect_int()
        divisor = 1
        if self._peek().is_symbol("/"):
            self._advance()
            divisor = self._expect_int()
        return ast.BoundExpr("ALL", offset=offset, divisor=divisor)

    def _cover_like(self, variant: str) -> ast.OpCover:
        self._expect_symbol("(")
        min_acc = self._bound()
        self._expect_symbol(",")
        max_acc = self._bound()
        groupby: tuple = ()
        if self._peek().is_symbol(";"):
            self._advance()
            self._expect_keyword("GROUPBY")
            self._expect_symbol(":")
            groupby = tuple(self._name_list())
        self._expect_symbol(")")
        operand = self._expect_ident()
        return ast.OpCover(operand, variant, min_acc, max_acc, groupby)

    def _op_cover(self) -> ast.OpCover:
        return self._cover_like("COVER")

    def _op_flat(self) -> ast.OpCover:
        return self._cover_like("FLAT")

    def _op_summit(self) -> ast.OpCover:
        return self._cover_like("SUMMIT")

    def _op_histogram(self) -> ast.OpCover:
        return self._cover_like("HISTOGRAM")

    def _op_map(self) -> ast.OpMap:
        self._expect_symbol("(")
        assignments: tuple = ()
        joinby: tuple = ()
        if not self._peek().is_symbol(")"):
            while True:
                if self._peek().is_keyword("JOINBY"):
                    self._advance()
                    self._expect_symbol(":")
                    joinby = tuple(self._name_list())
                else:
                    assignments = tuple(self._aggregate_list())
                if self._peek().is_symbol(";"):
                    self._advance()
                    continue
                break
        self._expect_symbol(")")
        reference = self._expect_ident()
        experiment = self._expect_ident()
        return ast.OpMap(reference, experiment, assignments, joinby)

    def _op_join(self) -> ast.OpJoin:
        self._expect_symbol("(")
        clauses: list = []
        output = "CAT"
        joinby: tuple = ()
        while True:
            token = self._peek()
            if token.is_keyword("OUTPUT"):
                self._advance()
                self._expect_symbol(":")
                option = self._peek()
                if option.kind not in (KEYWORD, IDENT):
                    raise self._error("expected an output option")
                self._advance()
                output = option.value.upper()
            elif token.is_keyword("JOINBY"):
                self._advance()
                self._expect_symbol(":")
                joinby = tuple(self._name_list())
            else:
                clauses.extend(self._genometric_clauses())
            if self._peek().is_symbol(";"):
                self._advance()
                continue
            break
        self._expect_symbol(")")
        anchor = self._expect_ident()
        experiment = self._expect_ident()
        return ast.OpJoin(anchor, experiment, tuple(clauses), output, joinby)

    def _genometric_clauses(self) -> list:
        clauses = []
        while True:
            token = self._peek()
            if token.is_keyword("UP"):
                self._advance()
                clauses.append(ast.GenometricClause("UP", span=token.span()))
            elif token.is_keyword("DOWN"):
                self._advance()
                clauses.append(ast.GenometricClause("DOWN", span=token.span()))
            elif token.is_keyword("DLE") or token.is_keyword("DGE") or token.is_keyword("MD"):
                kind = self._advance().value
                self._expect_symbol("(")
                argument = self._expect_int()
                close = self._expect_symbol(")")
                span = dataclasses.replace(
                    token.span(),
                    length=close.column + 1 - token.column
                    if close.line == token.line
                    else token.span().length,
                )
                clauses.append(ast.GenometricClause(kind, argument, span=span))
            else:
                raise self._error("expected a genometric clause (DLE/DGE/MD/UP/DOWN)")
            if self._peek().is_symbol(","):
                self._advance()
                continue
            break
        return clauses

    # -- shared sub-grammars ----------------------------------------------------

    def _name_list(self) -> list:
        return self._name_list_spanned()[0]

    def _name_list_spanned(self) -> tuple:
        names = []
        spans = []
        name, token = self._expect_name_token()
        names.append(name)
        spans.append(token.span())
        while self._peek().is_symbol(","):
            self._advance()
            name, token = self._expect_name_token()
            names.append(name)
            spans.append(token.span())
        return names, spans

    def _bool_expr(self):
        return self._bool_or()

    def _bool_or(self):
        left = self._bool_and()
        while self._peek().is_keyword("OR"):
            self._advance()
            left = ast.BoolOr(left, self._bool_and())
        return left

    def _bool_and(self):
        left = self._bool_not()
        while self._peek().is_keyword("AND"):
            self._advance()
            left = ast.BoolAnd(left, self._bool_not())
        return left

    def _bool_not(self):
        if self._peek().is_keyword("NOT"):
            self._advance()
            return ast.BoolNot(self._bool_not())
        return self._bool_primary()

    def _bool_primary(self):
        token = self._peek()
        if token.is_symbol("("):
            self._advance()
            inner = self._bool_or()
            self._expect_symbol(")")
            return inner
        attribute, attribute_token = self._expect_name_token()
        operator_token = self._peek()
        if operator_token.kind == "SYMBOL" and operator_token.value in _COMPARISON_OPS:
            self._advance()
            return ast.Comparison(
                attribute,
                operator_token.value,
                self._literal(),
                span=attribute_token.span(),
            )
        # Bare attribute: existence test.
        return ast.Comparison(
            attribute, "!=", None, span=attribute_token.span()
        )

    def _literal(self):
        token = self._peek()
        if token.kind == STRING:
            self._advance()
            return token.value
        if token.is_symbol("-"):
            self._advance()
            return -self._number_value()
        if token.kind == NUMBER:
            return self._number_value()
        if token.is_keyword("TRUE"):
            self._advance()
            return True
        if token.is_keyword("FALSE"):
            self._advance()
            return False
        if token.kind in (IDENT, KEYWORD):
            # Bare word literal, e.g. annType == promoter.
            self._advance()
            return token.value
        raise self._error("expected a literal")

    def _number_value(self):
        token = self._peek()
        if token.kind != NUMBER:
            raise self._error("expected a number")
        self._advance()
        text = token.value
        if any(marker in text for marker in ".eE"):
            return float(text)
        return int(text)

    # -- arithmetic (PROJECT new attributes) -------------------------------------

    def _arith_expr(self):
        left = self._arith_term()
        while self._peek().is_symbol("+") or self._peek().is_symbol("-"):
            operator = self._advance().value
            left = ast.BinOp(operator, left, self._arith_term())
        return left

    def _arith_term(self):
        left = self._arith_factor()
        while self._peek().is_symbol("*") or self._peek().is_symbol("/"):
            operator = self._advance().value
            left = ast.BinOp(operator, left, self._arith_factor())
        return left

    def _arith_factor(self):
        token = self._peek()
        if token.is_symbol("("):
            self._advance()
            inner = self._arith_expr()
            self._expect_symbol(")")
            return inner
        if token.is_symbol("-"):
            self._advance()
            return ast.BinOp("-", ast.Num(0), self._arith_factor())
        if token.kind == NUMBER:
            return ast.Num(self._number_value())
        if token.kind in (IDENT, KEYWORD):
            name, name_token = self._expect_name_token()
            return ast.Attr(name, span=name_token.span())
        raise self._error("expected an arithmetic expression")


def parse(text: str) -> ast.Program:
    """Parse GMQL text into a :class:`~repro.gmql.lang.ast_nodes.Program`.

    Syntax errors leave the parser with their caret frame attached, so
    the CLI and the ``repro check`` gate print positions identically for
    syntax and semantic findings.
    """
    try:
        return Parser(tokenize(text)).parse_program()
    except GmqlSyntaxError as exc:
        raise exc.attach_source(text)
