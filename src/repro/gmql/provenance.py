"""Sample-level provenance: why each result sample exists.

"Tracing provenance both of initial samples and of their processing through
operations is a unique aspect of our approach; knowing why resulting regions
were produced is quite relevant" (paper, section 2).

Every GMQL operator attaches one :class:`ProvenanceRecord` per output sample
to the result dataset; records reference the operand dataset names and
sample ids, so :func:`explain` can reconstruct the full derivation tree of
any sample across a chain of queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class ProvenanceRecord:
    """Derivation of one output sample.

    Attributes
    ----------
    operation:
        Operator name, e.g. ``"MAP"``.
    output_id:
        Sample id in the result dataset.
    inputs:
        Tuple of ``(dataset_name, sample_id)`` pairs this sample came from.
    parameters:
        Frozen human-readable parameter description of the operator call.
    """

    operation: str
    output_id: int
    inputs: tuple
    parameters: str = ""


def record(
    operation: str,
    output_id: int,
    inputs: Iterable[tuple],
    parameters: str = "",
) -> ProvenanceRecord:
    """Build a :class:`ProvenanceRecord` (normalising inputs to a tuple)."""
    return ProvenanceRecord(operation, output_id, tuple(inputs), parameters)


def lineage(dataset, sample_id: int, catalog: dict | None = None) -> list:
    """The derivation tree of one sample, as indented text lines.

    *catalog* maps dataset names to datasets so the walk can continue into
    operand datasets' own provenance; without it the walk stops at the
    first level.  Cycles are guarded by a visited set (they cannot arise
    from operator output, but catalogs are caller-supplied).
    """
    lines: list = []
    visited: set = set()

    def walk(ds, sid: int, depth: int) -> None:
        key = (ds.name, sid)
        if key in visited:
            lines.append("  " * depth + f"{ds.name}[{sid}] (already shown)")
            return
        visited.add(key)
        matching = [r for r in ds.provenance if r.output_id == sid]
        if not matching:
            lines.append("  " * depth + f"{ds.name}[{sid}] (source)")
            return
        for rec in matching:
            parameters = f" {rec.parameters}" if rec.parameters else ""
            lines.append(
                "  " * depth + f"{ds.name}[{sid}] <- {rec.operation}{parameters}"
            )
            for input_name, input_id in rec.inputs:
                parent = (catalog or {}).get(input_name)
                if parent is None:
                    lines.append("  " * (depth + 1) + f"{input_name}[{input_id}]")
                else:
                    walk(parent, input_id, depth + 1)

    walk(dataset, sample_id, 0)
    return lines


def explain(dataset, sample_id: int, catalog: dict | None = None) -> str:
    """Human-readable provenance report for one sample."""
    return "\n".join(lineage(dataset, sample_id, catalog))
