"""MAP: refer experiment signals to reference regions (the paper's flagship).

"MAP refers genomic signals of experiments to user selected reference
regions" (section 2).  For every pair of (reference sample, experiment
sample) -- all pairs by default, joinby-matched pairs otherwise -- MAP
produces one output sample containing *all* the reference sample's
regions, each extended with aggregates computed over the experiment
regions intersecting it.  The default aggregate is a count, exactly the
``RESULT = MAP(peak_count AS COUNT) PROMS PEAKS`` of the paper.

The output-sample arithmetic that the paper's numbers rely on:
``|output samples| = |reference samples| x |experiment samples|`` and each
output sample has ``|reference regions|`` regions, so the 2,423 ENCODE
samples mapped on one 131,780-promoter sample yield 2,423 output samples
of 131,780 regions each.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import EvaluationError
from repro.gdm import AttributeDef, Dataset
from repro.intervals import GenomeIndex
from repro.gmql.aggregates import Aggregate, Count
from repro.gmql.operators.base import build_result, merged_metadata, sample_pairs


def map_regions(
    reference: Dataset,
    experiment: Dataset,
    aggregates: Mapping[str, tuple] | None = None,
    joinby: Iterable[str] | None = None,
    name: str | None = None,
) -> Dataset:
    """GMQL MAP.

    Parameters
    ----------
    reference:
        Dataset providing the output regions (e.g. promoters).
    experiment:
        Dataset whose regions are aggregated onto the reference.
    aggregates:
        ``{output_attribute: (Aggregate, experiment_attribute_or_None)}``;
        defaults to ``{"count": (Count(), None)}``.
    joinby:
        Metadata attributes restricting which sample pairs are mapped.
    name:
        Result dataset name.
    """
    if not aggregates:
        aggregates = {"count": (Count(), None)}
    resolved = []
    new_defs = []
    for out_name, (aggregate, attribute) in aggregates.items():
        if not isinstance(aggregate, Aggregate):
            raise EvaluationError(f"MAP: {out_name!r} needs an Aggregate")
        if aggregate.requires_attribute:
            if attribute is None:
                raise EvaluationError(
                    f"MAP: aggregate {aggregate.name} needs an experiment attribute"
                )
            index = experiment.schema.index_of(attribute)
            input_type = experiment.schema[attribute].type
        else:
            index, input_type = None, None
        resolved.append((aggregate, index))
        from repro.gdm import INT

        new_defs.append(
            AttributeDef(
                out_name,
                aggregate.result_type(input_type) if input_type else INT,
            )
        )
    schema = reference.schema.extend(*new_defs)

    # Index each experiment sample once; reused across reference samples.
    experiment_indexes = {
        sample.id: GenomeIndex(sample.regions) for sample in experiment
    }
    # The interval tree yields hits in tree order; order-sensitive
    # aggregates (float SUM/AVG, STD) need the canonical
    # (left, right, sample position) hit order shared with the columnar
    # pair kernel so every engine reduces in the same sequence.
    experiment_positions = {
        sample.id: {id(region): i for i, region in enumerate(sample.regions)}
        for sample in experiment
    }

    def parts():
        for ref_sample, exp_sample in sample_pairs(reference, experiment, joinby):
            index = experiment_indexes[exp_sample.id]
            positions = experiment_positions[exp_sample.id]
            regions = []
            for region in ref_sample.regions:
                hits = sorted(
                    index.overlapping(region),
                    key=lambda hit: (hit.left, hit.right, positions[id(hit)]),
                )
                extra = []
                for aggregate, attr_index in resolved:
                    if attr_index is None:
                        extra.append(aggregate.compute(hits))
                    else:
                        extra.append(
                            aggregate.compute(
                                [hit.values[attr_index] for hit in hits]
                            )
                        )
                regions.append(region.with_values(region.values + tuple(extra)))
            yield (
                regions,
                merged_metadata(ref_sample, exp_sample),
                [
                    (reference.name, ref_sample.id),
                    (experiment.name, exp_sample.id),
                ],
            )

    return build_result(
        "MAP",
        name or f"MAP({reference.name},{experiment.name})",
        schema,
        parts(),
        parameters=",".join(aggregates),
    )
