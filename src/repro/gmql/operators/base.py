"""Shared machinery of the GMQL operators.

All operators are *closed over datasets*: they consume
:class:`~repro.gdm.dataset.Dataset` operands and produce a new dataset whose
samples get fresh consecutive ids and whose :attr:`provenance` records link
every output sample back to the operand samples it came from.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.gdm import Dataset, Metadata, RegionSchema, Sample
from repro.gmql.provenance import record

#: Metadata prefix applied to the left/anchor/reference operand in binary ops.
LEFT_PREFIX = "left."
#: Metadata prefix applied to the right/experiment operand in binary ops.
RIGHT_PREFIX = "right."


def build_result(
    operation: str,
    name: str,
    schema: RegionSchema,
    parts: Iterable[tuple],
    parameters: str = "",
) -> Dataset:
    """Assemble an operator result dataset.

    *parts* yields ``(regions, metadata, input_pairs)`` triples, one per
    output sample; ids are assigned consecutively from 1 and a provenance
    record is attached for each.
    """
    result = Dataset(name, schema)
    for output_id, (regions, meta, inputs) in enumerate(parts, start=1):
        result.add_sample(Sample(output_id, regions, meta), validate=False)
        result.provenance.append(record(operation, output_id, inputs, parameters))
    return result


def matches_joinby(left: Sample, right: Sample, joinby: Iterable[str]) -> bool:
    """GMQL joinby semantics: the samples share at least one value for
    *every* listed metadata attribute."""
    for attribute in joinby:
        left_values = set(map(str, left.meta.values(attribute)))
        right_values = set(map(str, right.meta.values(attribute)))
        if not left_values & right_values:
            return False
    return True


def sample_pairs(
    left: Dataset, right: Dataset, joinby: Iterable[str] | None
) -> Iterator[tuple]:
    """Iterate the operand sample pairs a binary operator processes.

    Without a joinby clause every left sample pairs with every right
    sample (the paper's MAP example: each PEAKS sample is mapped onto
    each PROMS sample).
    """
    joinby = tuple(joinby or ())
    for left_sample in left:
        for right_sample in right:
            if not joinby or matches_joinby(left_sample, right_sample, joinby):
                yield (left_sample, right_sample)


def merged_metadata(left_sample: Sample, right_sample: Sample) -> Metadata:
    """Binary-operator result metadata: both operands', prefix-disambiguated."""
    return left_sample.meta.prefixed(LEFT_PREFIX).union(
        right_sample.meta.prefixed(RIGHT_PREFIX)
    )


def group_samples(dataset: Dataset, groupby: Iterable[str] | None) -> list:
    """Partition a dataset's samples by metadata attribute values.

    Returns ``[(key, [samples...]), ...]`` in deterministic key order.
    With no *groupby* there is a single group keyed ``()`` holding every
    sample.  Group keys use the sorted tuple of values per attribute so
    multi-valued attributes group stably.
    """
    attributes = tuple(groupby or ())
    if not attributes:
        return [((), list(dataset))]
    groups: dict = {}
    for sample in dataset:
        key = tuple(
            tuple(sorted(map(str, sample.meta.values(attribute))))
            for attribute in attributes
        )
        groups.setdefault(key, []).append(sample)
    return sorted(groups.items())


def union_group_metadata(samples: Iterable[Sample]) -> Metadata:
    """Metadata union over a group of samples (COVER/MERGE result meta)."""
    merged = Metadata()
    for sample in samples:
        merged = merged.union(sample.meta)
    return merged
