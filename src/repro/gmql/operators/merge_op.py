"""MERGE: collapse samples into one (or one per metadata group).

MERGE is how replicate samples become a single track before COVER-style
analysis, and how a whole dataset becomes one bag of regions for
genome-wide statistics.
"""

from __future__ import annotations

from typing import Iterable

from repro.gdm import Dataset, GenomicRegion
from repro.gmql.operators.base import (
    build_result,
    group_samples,
    union_group_metadata,
)


def merge(
    dataset: Dataset,
    groupby: Iterable[str] | None = None,
    name: str | None = None,
) -> Dataset:
    """GMQL MERGE.

    Parameters
    ----------
    dataset:
        The operand.
    groupby:
        Metadata attributes partitioning the samples; one output sample
        per group.  ``None`` merges everything into a single sample.
    name:
        Result dataset name.

    The output sample's regions are the concatenation (in genome order)
    of the group's regions; its metadata is the union of the group's
    metadata.
    """

    def parts():
        for __, samples in group_samples(dataset, groupby):
            regions: list = []
            for sample in samples:
                regions.extend(sample.regions)
            regions.sort(key=GenomicRegion.sort_key)
            yield (
                regions,
                union_group_metadata(samples),
                [(dataset.name, sample.id) for sample in samples],
            )

    return build_result(
        "MERGE",
        name or f"MERGE({dataset.name})",
        dataset.schema,
        parts(),
        parameters=",".join(groupby or ()) or "all",
    )
