"""GROUP: group samples by metadata and/or deduplicate regions.

The metadata side partitions samples by attribute values, producing one
sample per group whose regions are the group's concatenation and whose
metadata carries the grouping key plus optional aggregates over member
samples' metadata.  The region side groups each sample's regions by
coordinates, collapsing duplicates and applying aggregates to the variable
attributes of each duplicate set.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import EvaluationError
from repro.gdm import (
    AttributeDef,
    Dataset,
    GenomicRegion,
    INT,
    Metadata,
    RegionSchema,
)
from repro.gmql.aggregates import Aggregate
from repro.gmql.operators.base import build_result, group_samples


def group(
    dataset: Dataset,
    meta_keys: Iterable[str] | None = None,
    meta_aggregates: Mapping[str, tuple] | None = None,
    region_aggregates: Mapping[str, tuple] | None = None,
    name: str | None = None,
) -> Dataset:
    """GMQL GROUP.

    Parameters
    ----------
    dataset:
        The operand.
    meta_keys:
        Metadata attributes to group samples by.  ``None`` keeps samples
        separate (region-only grouping).
    meta_aggregates:
        ``{new_meta_name: (Aggregate, meta_attribute)}`` computed over
        the group members' metadata values.
    region_aggregates:
        ``{new_region_attribute: (Aggregate, region_attribute_or_None)}``.
        When given, each output sample's regions are grouped by
        coordinates; duplicates collapse to one region carrying the
        aggregate values.  The result schema is the aggregates only (the
        original variable attributes are consumed by the aggregation).
    name:
        Result dataset name.
    """
    resolved_region = []
    for out_name, (aggregate, attribute) in (region_aggregates or {}).items():
        if not isinstance(aggregate, Aggregate):
            raise EvaluationError(f"GROUP: {out_name!r} needs an Aggregate")
        if aggregate.requires_attribute:
            if attribute is None:
                raise EvaluationError(
                    f"GROUP: aggregate {aggregate.name} needs a region attribute"
                )
            index = dataset.schema.index_of(attribute)
            input_type = dataset.schema[attribute].type
        else:
            index, input_type = None, None
        resolved_region.append((out_name, aggregate, index, input_type))

    if resolved_region:
        schema = RegionSchema(
            tuple(
                AttributeDef(
                    out_name,
                    aggregate.result_type(input_type) if input_type else INT,
                )
                for out_name, aggregate, __, input_type in resolved_region
            )
        )
    else:
        schema = dataset.schema

    def regroup_regions(regions: list) -> list:
        if not resolved_region:
            return sorted(regions, key=GenomicRegion.sort_key)
        buckets: dict = {}
        for region in regions:
            buckets.setdefault(region.coordinates(), []).append(region)
        out = []
        for coordinates in sorted(
            buckets, key=lambda c: GenomicRegion(*c).sort_key()
        ):
            bucket = buckets[coordinates]
            values = []
            for __, aggregate, index, __t in resolved_region:
                if index is None:
                    values.append(aggregate.compute(bucket))
                else:
                    values.append(
                        aggregate.compute([r.values[index] for r in bucket])
                    )
            out.append(GenomicRegion(*coordinates, tuple(values)))
        return out

    def parts():
        if meta_keys is None:
            for sample in dataset:
                yield (
                    regroup_regions(sample.regions),
                    sample.meta,
                    [(dataset.name, sample.id)],
                )
            return
        keys = tuple(meta_keys)
        for key, samples in group_samples(dataset, keys):
            regions: list = []
            for sample in samples:
                regions.extend(sample.regions)
            pairs = [
                (attribute, value)
                for attribute, group_values in zip(keys, key)
                for value in group_values
            ]
            for out_name, (aggregate, attribute) in (meta_aggregates or {}).items():
                member_values = [
                    value
                    for sample in samples
                    for value in sample.meta.values(attribute)
                ]
                pairs.append((out_name, aggregate.compute(member_values)))
            yield (
                regroup_regions(regions),
                Metadata.from_pairs(pairs),
                [(dataset.name, sample.id) for sample in samples],
            )

    return build_result(
        "GROUP",
        name or f"GROUP({dataset.name})",
        schema,
        parts(),
        parameters=",".join(meta_keys or ()) or "regions",
    )
