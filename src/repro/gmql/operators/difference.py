"""DIFFERENCE: subtract the regions of one dataset from another's samples.

For each sample of the left operand, DIFFERENCE removes the regions that
intersect at least one region anywhere in the right operand (or in its
joinby-matched samples).  Metadata and schema of the left operand are
preserved -- only regions disappear.
"""

from __future__ import annotations

from typing import Iterable

from repro.gdm import Dataset
from repro.intervals import GenomeIndex
from repro.gmql.operators.base import build_result, matches_joinby


def difference(
    left: Dataset,
    right: Dataset,
    joinby: Iterable[str] | None = None,
    exact: bool = False,
    name: str | None = None,
) -> Dataset:
    """GMQL DIFFERENCE.

    Parameters
    ----------
    left, right:
        Operands; the right operand's regions act as the mask.
    joinby:
        Metadata attributes; when given, each left sample is masked only
        by right samples sharing a value for all of them.
    exact:
        When true, remove only regions with *identical coordinates*
        instead of any intersection.
    name:
        Result dataset name.
    """
    joinby = tuple(joinby or ())

    # Pre-index the right operand: one shared index when there is no
    # joinby clause, otherwise one per right sample (combined per left
    # sample below).
    if not joinby:
        all_right_regions = [
            region for sample in right for region in sample.regions
        ]
        shared_index = GenomeIndex(all_right_regions)
        shared_coordinates = {r.coordinates() for r in all_right_regions}
    else:
        shared_index = None
        shared_coordinates = None

    def mask_for(left_sample):
        if not joinby:
            return shared_index, shared_coordinates
        regions = [
            region
            for right_sample in right
            if matches_joinby(left_sample, right_sample, joinby)
            for region in right_sample.regions
        ]
        return GenomeIndex(regions), {r.coordinates() for r in regions}

    def parts():
        for sample in left:
            index, coordinates = mask_for(sample)
            if exact:
                kept = [
                    region
                    for region in sample.regions
                    if region.coordinates() not in coordinates
                ]
            else:
                kept = [
                    region
                    for region in sample.regions
                    if next(iter(index.overlapping(region)), None) is None
                ]
            yield (kept, sample.meta, [(left.name, sample.id)])

    return build_result(
        "DIFFERENCE",
        name or f"DIFFERENCE({left.name},{right.name})",
        left.schema,
        parts(),
        parameters="exact" if exact else "overlap",
    )
