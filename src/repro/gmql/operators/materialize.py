"""MATERIALIZE: name and persist a query result.

In GMQL only materialised variables are computed and saved; here
MATERIALIZE renames the dataset and (optionally) writes it to a repository
directory via :mod:`repro.formats.meta`.
"""

from __future__ import annotations

from repro.gdm import Dataset


def materialize(
    dataset: Dataset, name: str, directory: str | None = None
) -> Dataset:
    """GMQL MATERIALIZE.

    Returns the dataset under its materialised *name*; when *directory*
    is given, also persists it in the GMQL repository layout.
    """
    result = dataset.with_name(name)
    if directory is not None:
        from repro.formats import write_dataset

        write_dataset(result, directory)
    return result
