"""COVER and its FLAT/SUMMIT/HISTOGRAM variants.

"COVER deals with replicas of a same experiment" (paper, section 2): it
computes the genomic intervals where at least ``min_acc`` and at most
``max_acc`` of the operand's regions accumulate.  Accumulation bounds may
be integers, ``ANY`` or ``ALL``-relative (see
:class:`repro.intervals.coverage.AccumulationBound`).

All variants produce one output sample per metadata group (default: one
for the whole dataset) with the variable schema ``(acc_index INT)``:

* ``COVER``     -- maximal in-range runs; ``acc_index`` = max depth in run;
* ``FLAT``      -- runs extended to the contributing regions' full extent;
* ``SUMMIT``    -- local depth maxima within runs; ``acc_index`` = depth;
* ``HISTOGRAM`` -- every constant-depth segment; ``acc_index`` = depth.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import EvaluationError
from repro.gdm import AttributeDef, Dataset, GenomicRegion, INT, RegionSchema
from repro.intervals import (
    AccumulationBound,
    cover_intervals,
    flat_intervals,
    histogram_intervals,
    summit_intervals,
)
from repro.gmql.operators.base import (
    build_result,
    group_samples,
    union_group_metadata,
)

#: Recognised COVER variants.
VARIANTS = ("COVER", "FLAT", "SUMMIT", "HISTOGRAM")


def _as_bound(value) -> AccumulationBound:
    if isinstance(value, AccumulationBound):
        return value
    if isinstance(value, int):
        return AccumulationBound.exact(value)
    raise EvaluationError(f"bad accumulation bound {value!r}")


def cover(
    dataset: Dataset,
    min_acc,
    max_acc,
    variant: str = "COVER",
    groupby: Iterable[str] | None = None,
    name: str | None = None,
) -> Dataset:
    """GMQL COVER.

    Parameters
    ----------
    dataset:
        The operand; *all* its samples' regions accumulate together
        (within each metadata group).
    min_acc, max_acc:
        Accumulation bounds: ints or :class:`AccumulationBound` (``ANY``,
        ``ALL``-relative forms).
    variant:
        One of ``COVER``, ``FLAT``, ``SUMMIT``, ``HISTOGRAM``.
    groupby:
        Metadata attributes; one output sample per group.
    name:
        Result dataset name.
    """
    variant = variant.upper()
    if variant not in VARIANTS:
        raise EvaluationError(
            f"unknown COVER variant {variant!r}; expected one of {VARIANTS}"
        )
    low = _as_bound(min_acc)
    high = _as_bound(max_acc)
    schema = RegionSchema((AttributeDef("acc_index", INT),))

    def compute(regions: list, n_samples: int) -> list:
        lo = low.resolve(n_samples, is_lower=True)
        hi = high.resolve(n_samples, is_lower=False)
        if variant == "COVER":
            rows = (
                (chrom, left, right, depth)
                for chrom, left, right, depth, __ in cover_intervals(
                    regions, lo, hi
                )
            )
        elif variant == "FLAT":
            rows = (
                (chrom, left, right, depth)
                for chrom, left, right, depth, __ in flat_intervals(
                    regions, lo, hi
                )
            )
        elif variant == "SUMMIT":
            rows = summit_intervals(regions, lo, hi)
        else:
            rows = histogram_intervals(regions, lo, hi)
        return [
            GenomicRegion(chrom, left, right, "*", (depth,))
            for chrom, left, right, depth in rows
        ]

    def parts():
        for __, samples in group_samples(dataset, groupby):
            regions = [region for sample in samples for region in sample.regions]
            yield (
                compute(regions, len(samples)),
                union_group_metadata(samples),
                [(dataset.name, sample.id) for sample in samples],
            )

    return build_result(
        variant,
        name or f"{variant}({dataset.name})",
        schema,
        parts(),
        parameters=f"minAcc={low!r},maxAcc={high!r}",
    )
