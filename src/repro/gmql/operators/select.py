"""SELECT: keep qualifying samples, optionally filtering their regions.

SELECT is the workhorse of the paper's example query::

    PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
    PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;

Three orthogonal conditions can be combined:

* a **metadata predicate** keeps/drops whole samples;
* a **region predicate** filters the regions of kept samples (samples
  left with zero regions are still kept -- emptiness is information);
* a **semijoin** keeps samples whose metadata matches some sample of
  another dataset on the given attributes (or none, when negated).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gdm import Dataset
from repro.gmql.operators.base import build_result, matches_joinby
from repro.gmql.predicates import MetaPredicate, RegionPredicate


@dataclass(frozen=True)
class SemiJoin:
    """SELECT semijoin clause: match *attributes* against *other*'s samples."""

    attributes: tuple
    other: Dataset
    negated: bool = False

    def admits(self, sample) -> bool:
        matched = any(
            matches_joinby(sample, other_sample, self.attributes)
            for other_sample in self.other
        )
        return not matched if self.negated else matched


def select(
    dataset: Dataset,
    meta_predicate: MetaPredicate | None = None,
    region_predicate: RegionPredicate | None = None,
    semijoin: SemiJoin | None = None,
    name: str | None = None,
) -> Dataset:
    """GMQL SELECT.

    Parameters
    ----------
    dataset:
        The operand.
    meta_predicate:
        Sample filter over metadata; ``None`` keeps all samples.
    region_predicate:
        Region filter, bound against the dataset schema; ``None`` keeps
        all regions.
    semijoin:
        Optional :class:`SemiJoin` clause.
    name:
        Result dataset name (defaults to ``SELECT(<operand>)``).
    """
    bound_region = (
        region_predicate.bind(dataset.schema) if region_predicate else None
    )

    def parts():
        for sample in dataset:
            if meta_predicate is not None and not meta_predicate(sample.meta):
                continue
            if semijoin is not None and not semijoin.admits(sample):
                continue
            regions = sample.regions
            if bound_region is not None:
                regions = [region for region in regions if bound_region(region)]
            yield (regions, sample.meta, [(dataset.name, sample.id)])

    described = []
    if meta_predicate is not None:
        described.append("meta")
    if region_predicate is not None:
        described.append("region")
    if semijoin is not None:
        described.append("semijoin")
    return build_result(
        "SELECT",
        name or f"SELECT({dataset.name})",
        dataset.schema,
        parts(),
        parameters="+".join(described) or "all",
    )
