"""Genometric JOIN: pair regions across datasets by distance properties.

For every (anchor sample, experiment sample) pair -- all pairs by default,
joinby-matched otherwise -- JOIN evaluates a
:class:`~repro.gmql.genometric.GenometricCondition` between each anchor
region and the experiment sample's regions, and emits one output region per
matching pair, with coordinates chosen by the *output* option:

* ``LEFT``   -- the anchor region's coordinates;
* ``RIGHT``  -- the experiment region's coordinates;
* ``INT``    -- their intersection (pairs that do not overlap are dropped);
* ``CAT``    -- the concatenation: leftmost left end to rightmost right end
  (GMQL also calls this CONTIG).

The output schema is the operands' merged schema plus a ``dist`` attribute
holding the genometric distance of the pair.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import EvaluationError
from repro.gdm import AttributeDef, Dataset, GenomicRegion, INT
from repro.intervals import NearestIndex
from repro.gmql.genometric import GenometricCondition
from repro.gmql.operators.base import build_result, merged_metadata, sample_pairs

#: Recognised output coordinate options (CONTIG is an alias of CAT).
OUTPUT_OPTIONS = ("LEFT", "RIGHT", "INT", "CAT", "CONTIG")


def _combine_strand(a: GenomicRegion, b: GenomicRegion) -> str:
    if a.strand == b.strand:
        return a.strand
    if a.strand == "*":
        return b.strand
    if b.strand == "*":
        return a.strand
    return "*"


def join(
    anchor: Dataset,
    experiment: Dataset,
    condition: GenometricCondition,
    output: str = "CAT",
    joinby: Iterable[str] | None = None,
    name: str | None = None,
) -> Dataset:
    """GMQL genometric JOIN.

    Parameters
    ----------
    anchor:
        Left operand; its regions anchor the distance evaluation
        (UP/DOWN are relative to the anchor's strand).
    experiment:
        Right operand, indexed for distance queries.
    condition:
        The genometric condition (DLE/DGE/MD/UP/DOWN conjunction).
    output:
        Output coordinate option, see module docstring.
    joinby:
        Metadata attributes restricting sample pairs.
    name:
        Result dataset name.
    """
    output = output.upper()
    if output not in OUTPUT_OPTIONS:
        raise EvaluationError(
            f"unknown JOIN output option {output!r}; expected {OUTPUT_OPTIONS}"
        )
    merged = anchor.schema.merge(experiment.schema)
    schema = merged.schema.extend(AttributeDef("dist", INT))

    indexes = {
        sample.id: NearestIndex(sample.regions) for sample in experiment
    }

    def emit(a: GenomicRegion, b: GenomicRegion, gap: int) -> GenomicRegion | None:
        values = merged.combine(a.values, b.values) + (gap,)
        if output == "LEFT":
            return GenomicRegion(a.chrom, a.left, a.right, a.strand, values)
        if output == "RIGHT":
            return GenomicRegion(b.chrom, b.left, b.right, b.strand, values)
        if output == "INT":
            left = max(a.left, b.left)
            right = min(a.right, b.right)
            if right <= left:
                return None
            return GenomicRegion(
                a.chrom, left, right, _combine_strand(a, b), values
            )
        # CAT / CONTIG
        return GenomicRegion(
            a.chrom,
            min(a.left, b.left),
            max(a.right, b.right),
            _combine_strand(a, b),
            values,
        )

    def parts():
        for anchor_sample, exp_sample in sample_pairs(anchor, experiment, joinby):
            index = indexes[exp_sample.id]
            regions = []
            for region in anchor_sample.regions:
                for hit, gap in condition.matches_for_anchor(region, index):
                    out_region = emit(region, hit, gap)
                    if out_region is not None:
                        regions.append(out_region)
            regions.sort(key=GenomicRegion.sort_key)
            yield (
                regions,
                merged_metadata(anchor_sample, exp_sample),
                [
                    (anchor.name, anchor_sample.id),
                    (experiment.name, exp_sample.id),
                ],
            )

    return build_result(
        "JOIN",
        name or f"JOIN({anchor.name},{experiment.name})",
        schema,
        parts(),
        parameters=f"{condition.describe()};output={output}",
    )
