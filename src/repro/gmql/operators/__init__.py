"""The GMQL operator algebra (closed over GDM datasets).

Classic relational operators -- SELECT, PROJECT, UNION, DIFFERENCE, SORT,
AGGREGATE (EXTEND/GROUP) -- plus the domain-specific COVER, MAP and
genometric JOIN, exactly the operator families the paper lists in
section 2.
"""

from repro.gmql.operators.base import (
    LEFT_PREFIX,
    RIGHT_PREFIX,
    matches_joinby,
    merged_metadata,
    sample_pairs,
)
from repro.gmql.operators.cover import VARIANTS as COVER_VARIANTS
from repro.gmql.operators.cover import cover
from repro.gmql.operators.difference import difference
from repro.gmql.operators.extend import extend
from repro.gmql.operators.group import group
from repro.gmql.operators.join import OUTPUT_OPTIONS, join
from repro.gmql.operators.map_op import map_regions
from repro.gmql.operators.materialize import materialize
from repro.gmql.operators.merge_op import merge
from repro.gmql.operators.order import order
from repro.gmql.operators.project import project, region_environment
from repro.gmql.operators.select import SemiJoin, select
from repro.gmql.operators.union import union

__all__ = [
    "COVER_VARIANTS",
    "LEFT_PREFIX",
    "OUTPUT_OPTIONS",
    "RIGHT_PREFIX",
    "SemiJoin",
    "cover",
    "difference",
    "extend",
    "group",
    "join",
    "map_regions",
    "matches_joinby",
    "materialize",
    "merge",
    "merged_metadata",
    "order",
    "project",
    "region_environment",
    "sample_pairs",
    "select",
    "union",
]
