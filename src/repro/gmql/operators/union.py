"""UNION: pool the samples of two datasets under a merged schema.

UNION is where GDM *schema merging* earns its keep: the operands may have
different variable schemas, and the result's schema keeps the fixed
attributes in common while concatenating the variable ones (paper,
section 2), remapping each operand's value tuples into the merged layout.
"""

from __future__ import annotations

from repro.gdm import Dataset
from repro.gmql.operators.base import build_result


def union(left: Dataset, right: Dataset, name: str | None = None) -> Dataset:
    """GMQL UNION.

    Every sample of both operands appears in the result (ids renumbered,
    left operand first); regions carry their values remapped into the
    merged schema with missing values where the operand lacked an
    attribute.
    """
    merged = left.schema.merge(right.schema)

    def parts():
        for sample in left:
            regions = [
                region.with_values(merged.remap_left(region.values))
                for region in sample.regions
            ]
            yield (regions, sample.meta, [(left.name, sample.id)])
        for sample in right:
            regions = [
                region.with_values(merged.remap_right(region.values))
                for region in sample.regions
            ]
            yield (regions, sample.meta, [(right.name, sample.id)])

    return build_result(
        "UNION",
        name or f"UNION({left.name},{right.name})",
        merged.schema,
        parts(),
        parameters=f"{left.name}+{right.name}",
    )
