"""EXTEND: compute sample metadata from region aggregates.

EXTEND bridges the two GDM entities: ``EXTEND(region_count AS COUNT) DS``
attaches to each sample a metadata attribute holding an aggregate of its
own regions.  This is how descriptive statistics become searchable
metadata (paper, section 4.5: features "computed then indexed").
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import EvaluationError
from repro.gdm import Dataset
from repro.gmql.aggregates import Aggregate
from repro.gmql.operators.base import build_result


def extend(
    dataset: Dataset,
    assignments: Mapping[str, tuple],
    name: str | None = None,
) -> Dataset:
    """GMQL EXTEND.

    Parameters
    ----------
    dataset:
        The operand.
    assignments:
        ``{metadata_name: (Aggregate, region_attribute_or_None)}``.
        COUNT-like aggregates take ``None`` as the attribute.
    name:
        Result dataset name.
    """
    resolved = []
    for meta_name, (aggregate, attribute) in assignments.items():
        if not isinstance(aggregate, Aggregate):
            raise EvaluationError(f"EXTEND: {meta_name!r} needs an Aggregate")
        if aggregate.requires_attribute:
            if attribute is None:
                raise EvaluationError(
                    f"EXTEND: aggregate {aggregate.name} needs a region attribute"
                )
            index = dataset.schema.index_of(attribute)
        else:
            index = None
        resolved.append((meta_name, aggregate, index))

    def parts():
        for sample in dataset:
            pairs = []
            for meta_name, aggregate, index in resolved:
                if index is None:
                    values = sample.regions
                else:
                    values = [region.values[index] for region in sample.regions]
                pairs.append((meta_name, aggregate.compute(values)))
            yield (
                sample.regions,
                sample.meta.with_pairs(pairs),
                [(dataset.name, sample.id)],
            )

    return build_result(
        "EXTEND",
        name or f"EXTEND({dataset.name})",
        dataset.schema,
        parts(),
        parameters=",".join(assignments),
    )
