"""PROJECT: restrict/derive region attributes and metadata.

PROJECT keeps a subset of the variable region attributes and of the
metadata attributes, and can compute *new* region attributes from
expressions over the existing ones (including the fixed coordinates),
e.g. ``length AS right - left``.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import EvaluationError
from repro.gdm import (
    AttributeDef,
    AttributeType,
    Dataset,
    GenomicRegion,
    RegionSchema,
)
from repro.gmql.operators.base import build_result


def region_environment(region: GenomicRegion, schema: RegionSchema) -> dict:
    """The evaluation environment for region expressions.

    Contains the fixed attributes (plus the derived ``length``) and every
    variable attribute by name.
    """
    env = {
        "chrom": region.chrom,
        "left": region.left,
        "right": region.right,
        "strand": region.strand,
        "length": region.length,
    }
    for index, definition in enumerate(schema):
        env[definition.name] = region.values[index]
    return env


def project(
    dataset: Dataset,
    region_attributes: list | None = None,
    metadata_attributes: list | None = None,
    new_region_attributes: Mapping[str, tuple] | None = None,
    new_metadata_attributes: Mapping[str, Callable] | None = None,
    name: str | None = None,
) -> Dataset:
    """GMQL PROJECT.

    Parameters
    ----------
    dataset:
        The operand.
    region_attributes:
        Variable region attributes to keep (``None`` keeps all; ``[]``
        drops all).
    metadata_attributes:
        Metadata attributes to keep (``None`` keeps all).
    new_region_attributes:
        ``{name: (AttributeType, fn)}`` where ``fn`` maps a region
        environment dict (see :func:`region_environment`) to the new
        value.  New attributes are appended after the kept ones.
    new_metadata_attributes:
        ``{name: fn}`` where ``fn`` maps a sample's
        :class:`~repro.gdm.metadata.Metadata` to the new value.
    name:
        Result dataset name.
    """
    kept = (
        list(dataset.schema.names)
        if region_attributes is None
        else list(region_attributes)
    )
    for attribute in kept:
        if attribute not in dataset.schema:
            raise EvaluationError(
                f"PROJECT: no region attribute {attribute!r} in {dataset.name!r}"
            )
    new_defs = []
    evaluators = []
    for new_name, (attr_type, fn) in (new_region_attributes or {}).items():
        if not isinstance(attr_type, AttributeType):
            raise EvaluationError(
                f"PROJECT: new attribute {new_name!r} needs an AttributeType"
            )
        new_defs.append(AttributeDef(new_name, attr_type))
        evaluators.append(fn)
    schema = dataset.schema.project(kept).extend(*new_defs)
    kept_indices = [dataset.schema.index_of(attribute) for attribute in kept]

    def transform(region: GenomicRegion) -> GenomicRegion:
        values = [region.values[i] for i in kept_indices]
        if evaluators:
            env = region_environment(region, dataset.schema)
            for definition, fn in zip(new_defs, evaluators):
                try:
                    values.append(definition.type.coerce(fn(env)))
                except Exception as exc:  # noqa: BLE001 - surfaced with context
                    raise EvaluationError(
                        f"PROJECT: evaluating {definition.name!r}: {exc}"
                    ) from exc
        return region.with_values(tuple(values))

    def parts():
        for sample in dataset:
            meta = sample.meta
            if metadata_attributes is not None:
                meta = meta.project(metadata_attributes)
            if new_metadata_attributes:
                meta = meta.with_pairs(
                    (new_name, fn(sample.meta))
                    for new_name, fn in new_metadata_attributes.items()
                )
            regions = [transform(region) for region in sample.regions]
            yield (regions, meta, [(dataset.name, sample.id)])

    return build_result(
        "PROJECT",
        name or f"PROJECT({dataset.name})",
        schema,
        parts(),
        parameters=",".join(kept + [d.name for d in new_defs]),
    )
