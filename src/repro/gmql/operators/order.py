"""ORDER/SORT: order samples by metadata and regions by attributes, with top-k.

ORDER supports the paper's "short and ranked" result philosophy (section
4.4): biologically inspired queries rank their outputs, and top-k keeps
transmitted results small.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import EvaluationError
from repro.gdm import Dataset
from repro.gmql.operators.base import build_result

#: Sort key placed after all comparable values so missing sorts last.
_MISSING = (1,)
_PRESENT = (0,)


def _meta_sort_value(sample, attribute: str):
    value = sample.meta.first(attribute)
    if value is None:
        return _MISSING + ((),)
    try:
        return _PRESENT + ((0, float(value)),)
    except (TypeError, ValueError):
        return _PRESENT + ((1, str(value)),)


def order(
    dataset: Dataset,
    meta_keys: Iterable[tuple] | None = None,
    top: int | None = None,
    region_keys: Iterable[tuple] | None = None,
    region_top: int | None = None,
    name: str | None = None,
) -> Dataset:
    """GMQL ORDER.

    Parameters
    ----------
    dataset:
        The operand.
    meta_keys:
        ``[(metadata_attribute, "ASC"|"DESC"), ...]`` ordering the samples.
    top:
        Keep only the first *top* samples after ordering.
    region_keys:
        ``[(region_attribute, "ASC"|"DESC"), ...]`` ordering each sample's
        regions (fixed attributes ``left``/``right`` are allowed).
    region_top:
        Keep only the first *region_top* regions per sample.
    name:
        Result dataset name.
    """
    for keys in (meta_keys, region_keys):
        for __, direction in keys or ():
            if direction not in ("ASC", "DESC"):
                raise EvaluationError(
                    f"ORDER: direction must be ASC or DESC, got {direction!r}"
                )

    samples = list(dataset)
    for attribute, direction in reversed(tuple(meta_keys or ())):
        samples.sort(
            key=lambda s: _meta_sort_value(s, attribute),
            reverse=(direction == "DESC"),
        )
    if top is not None:
        samples = samples[: max(0, top)]

    region_sorters = []
    for attribute, direction in region_keys or ():
        if attribute == "left":
            getter = lambda r: r.left  # noqa: E731
        elif attribute == "right":
            getter = lambda r: r.right  # noqa: E731
        else:
            index = dataset.schema.index_of(attribute)
            getter = lambda r, i=index: r.values[i]  # noqa: E731
        region_sorters.append((getter, direction == "DESC"))

    def order_regions(regions: list) -> list:
        ordered = list(regions)
        for getter, descending in reversed(region_sorters):
            # Missing values sort last regardless of direction, so
            # partition them out before sorting the comparable values.
            present = [r for r in ordered if getter(r) is not None]
            missing = [r for r in ordered if getter(r) is None]
            present.sort(key=getter, reverse=descending)
            ordered = present + missing
        if region_top is not None:
            ordered = ordered[: max(0, region_top)]
        return ordered

    def parts():
        for position, sample in enumerate(samples, start=1):
            meta = sample.meta.with_pairs([("order", position)])
            yield (
                order_regions(sample.regions),
                meta,
                [(dataset.name, sample.id)],
            )

    described = ",".join(f"{a}:{d}" for a, d in (meta_keys or ()))
    return build_result(
        "ORDER",
        name or f"ORDER({dataset.name})",
        dataset.schema,
        parts(),
        parameters=described or "regions",
    )
