"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base class at API boundaries.  Sub-hierarchies mirror the
package layout: data-model errors, format errors, query-language errors,
engine errors and distributed-system errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GdmError(ReproError):
    """Base class for Genomic Data Model violations."""


class SchemaError(GdmError):
    """A region schema is malformed, or a value does not fit its schema."""


class CoordinateError(GdmError):
    """A genomic coordinate is invalid (negative, inverted, bad strand...)."""


class DatasetError(GdmError):
    """A dataset-level invariant is violated (duplicate ids, schema drift)."""


class FormatError(ReproError):
    """A file could not be parsed or serialised in the requested format."""


class QueryError(ReproError):
    """Base class for GMQL language errors."""


class GmqlSyntaxError(QueryError):
    """The GMQL text could not be tokenised or parsed.

    Carries the 1-based position (and token length) of the offending
    input; :meth:`attach_source` appends the same caret frame the
    semantic analyzer's diagnostics use, so both error families render
    identically.
    """

    def __init__(
        self, message: str, line: int = 0, column: int = 0, length: int = 1
    ) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column
        self.length = length
        self.frame = ""

    def attach_source(self, source: str) -> "GmqlSyntaxError":
        """Append a caret frame pointing into *source* (idempotent)."""
        if self.frame or not self.line:
            return self
        # Imported here: repro.errors is a leaf module the language
        # package depends on, so the reverse import must stay lazy.
        from repro.gmql.lang.span import Span, caret_frame

        self.frame = caret_frame(
            source, Span(self.line, self.column, self.length)
        )
        if self.frame:
            self.args = (f"{self.args[0]}\n{self.frame}",)
        return self


class GmqlCompileError(QueryError):
    """The GMQL program parsed, but is semantically invalid.

    When raised by the semantic analyzer it carries the full
    :class:`~repro.gmql.lang.semantics.Diagnostic` list (errors *and*
    warnings), so callers like ``repro check`` can render every finding,
    not just the first.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class EvaluationError(QueryError):
    """A predicate or aggregate failed while being evaluated on data."""


class EngineError(ReproError):
    """An execution backend failed or was misconfigured."""


class ExecutionCancelled(EngineError):
    """Query execution was cancelled or exceeded its deadline."""


class OntologyError(ReproError):
    """An ontology term or relation is invalid."""


class RepositoryError(ReproError):
    """A catalog or staging operation failed."""


class FederationError(ReproError):
    """A federated protocol exchange failed."""


class TransientError(ReproError):
    """Marker base for failures that are expected to heal on retry."""


class TransientNetworkError(TransientError, FederationError):
    """A remote call failed for a momentary reason (drop, hiccup, blip)."""


class HostDownError(FederationError):
    """A remote host is not answering at all.

    Deliberately *not* a :class:`TransientError`: callers cannot tell a
    crash from a long outage, so retry policies list it explicitly and
    circuit breakers decide when to stop trying.
    """


class CorruptTransferError(TransientError, FederationError):
    """A transferred payload failed its checksum; re-fetching may fix it."""


class ResilienceError(ReproError):
    """Base class for retry/timeout/circuit-breaker failures."""


class CallTimeoutError(ResilienceError, TransientError):
    """A single remote call exceeded its per-call time budget."""


class RetryExhaustedError(ResilienceError):
    """All retry attempts failed; carries the last underlying error."""

    def __init__(self, message: str, attempts: int = 0,
                 last_error: Exception | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open: the host is being given time to heal."""

    def __init__(self, message: str, host: str = "") -> None:
        super().__init__(message)
        self.host = host


class SearchError(ReproError):
    """A search-service operation failed."""


class SimulationError(ReproError):
    """A synthetic-data generator was given invalid parameters."""
