"""Result staging and deferred retrieval (paper, section 4.3/4.4).

"Deferred result retrieval will be possible, through limited amount of
staging at the sites hosting the services" and the client should be "in
control of staging resources and of communication load".  A
:class:`StagingArea` holds materialised results up to a byte budget,
serves them in chunks, and evicts least-recently-used entries when a new
result would not fit.

With a persistent store root configured (see
:func:`repro.store.persist.store_root`), staged payloads **spill to
disk** instead of living in process memory: the serialised sections are
written once to ``<root>/staging/<content digest>.staged`` (atomic,
content-addressed, so re-staging the same result -- or another process
staging it -- reuses the file byte-for-byte) and every chunk is served
straight from a read-only memory map.  Such results charge ~0 bytes
against the staging budget, because the budget models *host memory*
("limited amount of staging at the sites") and mmap-served pages belong
to the OS page cache; :meth:`StagingArea.used_bytes` counts only
materialised bytes, :meth:`StagingArea.mapped_bytes` reports the
disk-served remainder, and :meth:`StagingArea.release` closes the map so
the accounting stays honest over the full ticket lifecycle.
"""

from __future__ import annotations

import itertools

from repro.errors import RepositoryError
from repro.formats.bed import CustomBedFormat
from repro.gdm import Dataset
from repro.store.persist import BLOB_HEADER, atomic_write_blob, map_blob


def _serialise_sections(dataset: Dataset) -> tuple:
    """The two staged sections ``(meta, regions)`` as bytes.

    Regions and metadata serialise *separately* so a client can
    "selectively retrieve regions or metadata" (paper, section 4.3) --
    e.g. fetch only the metadata to decide whether the big region
    payload is worth the transfer.
    """
    from repro.formats.bed import schema_to_header
    from repro.formats.meta import serialize_meta

    region_format = CustomBedFormat(dataset.schema)
    meta_parts = [f"#schema\t{schema_to_header(dataset.schema)}\n"]
    region_parts = []
    for sample in dataset:
        meta_parts.append(f"#sample\t{sample.id}\n")
        meta_parts.append(serialize_meta(sample.meta))
        region_parts.append(f"#sample\t{sample.id}\n")
        region_parts.append(region_format.serialize(sample.regions))
    return "".join(meta_parts).encode(), "".join(region_parts).encode()


class StagedResult:
    """One staged result: serialised sample sections plus bookkeeping.

    The payload lives either in memory (``materialised_bytes`` == size)
    or as a memory-mapped spill file under *spill_dir*
    (``mapped_bytes`` == size); chunk retrieval is uniform over both.
    """

    def __init__(
        self,
        ticket: str,
        dataset: Dataset,
        chunk_bytes: int,
        spill_dir=None,
    ) -> None:
        self.ticket = ticket
        self.name = dataset.name
        self.chunk_bytes = chunk_bytes
        self._map = None
        self._blob = b""
        meta_len = region_len = 0
        if spill_dir is not None:
            digest = dataset.store().digest()
            path = f"{spill_dir}/{digest}.staged"
            mapped = map_blob(path)
            if mapped is None:
                atomic_write_blob(path, _serialise_sections(dataset))
                mapped = map_blob(path)
            if mapped is not None:
                self._map, meta_len, region_len = mapped
                self.path = path
        if self._map is None:
            self.path = None
            meta, regions = _serialise_sections(dataset)
            self._blob = meta + regions
            meta_len, region_len = len(meta), len(regions)
        self.meta_len = meta_len
        self.region_len = region_len
        self.size_bytes = meta_len + region_len
        count = -(-self.size_bytes // chunk_bytes) if self.size_bytes else 1
        self.retrieved = [False] * count

    # -- accounting -----------------------------------------------------------

    @property
    def materialised_bytes(self) -> int:
        """Payload bytes held in process memory (0 when mmap-served)."""
        return 0 if self._map is not None else self.size_bytes

    @property
    def mapped_bytes(self) -> int:
        """Payload bytes served from the spill file's memory map."""
        return self.size_bytes if self._map is not None else 0

    # -- payload access -------------------------------------------------------

    def _payload(self, offset: int, length: int) -> bytes:
        if self._map is not None:
            base = BLOB_HEADER.size + offset
            return bytes(self._map[base: base + length])
        return self._blob[offset: offset + length]

    @property
    def meta_blob(self) -> bytes:
        return self._payload(0, self.meta_len)

    @property
    def region_blob(self) -> bytes:
        return self._payload(self.meta_len, self.region_len)

    @property
    def chunk_count(self) -> int:
        return len(self.retrieved)

    def chunk(self, index: int) -> bytes:
        return self._payload(index * self.chunk_bytes, self.chunk_bytes)

    @property
    def complete(self) -> bool:
        """True once every chunk has been retrieved at least once."""
        return all(self.retrieved)

    def close(self) -> None:
        """Release the spill-file map (idempotent; file stays on disk)."""
        if self._map is not None:
            self._map.close()
            self._map = None
            self.size_bytes = 0
            self.meta_len = 0
            self.region_len = 0


class StagingArea:
    """LRU-bounded staging of query results with chunked retrieval.

    *fire*, when given, is a chaos hook with the signature of
    :meth:`repro.federation.transfer.Network.fire`; staging operations
    then fire ``staging.stage:<owner>`` / ``staging.retrieve:<owner>``
    injection points so an armed fault injector can make a host's
    staging slow or flaky independently of its protocol handlers.

    *spill_dir* overrides where staged payloads spill; by default they
    spill to ``<store root>/staging`` when a persistent store root is
    configured and stay in memory otherwise.
    """

    def __init__(self, budget_bytes: int = 1_000_000,
                 chunk_bytes: int = 16_384, fire=None,
                 owner: str = "staging", spill_dir: str | None = None) -> None:
        if budget_bytes <= 0 or chunk_bytes <= 0:
            raise RepositoryError("staging budget and chunk size must be positive")
        self.budget_bytes = budget_bytes
        self.chunk_bytes = chunk_bytes
        self.owner = owner
        self._fire = fire
        if spill_dir is None:
            from repro.store.persist import store_root

            root = store_root()
            spill_dir = f"{root}/staging" if root is not None else None
        self.spill_dir = spill_dir
        self._staged: dict = {}  # ticket -> StagedResult (insertion = LRU order)
        self._tickets = itertools.count(1)
        self.evictions = 0

    def _chaos(self, operation: str) -> None:
        if self._fire is not None:
            self._fire(f"staging.{operation}:{self.owner}")

    def used_bytes(self) -> int:
        """Bytes of staged payload currently *materialised in memory*.

        Spilled results served through memory maps do not count: their
        pages live in the OS page cache, not the host's staging memory,
        which is what the budget models.
        """
        return sum(
            result.materialised_bytes for result in self._staged.values()
        )

    def mapped_bytes(self) -> int:
        """Bytes of staged payload served from spill-file memory maps."""
        return sum(result.mapped_bytes for result in self._staged.values())

    def stage(self, dataset: Dataset) -> str:
        """Stage a result; returns a retrieval ticket.

        Evicts least-recently-used results until the new one fits; a
        result larger than the whole budget is refused (the client must
        raise its budget or narrow the query -- exactly the control the
        paper wants the protocol to give).  Results that spill to disk
        charge no budget, so a small-memory host can stage
        repository-scale results as long as they are disk-backed.
        """
        self._chaos("stage")
        result = StagedResult(
            "probe", dataset, self.chunk_bytes, spill_dir=self.spill_dir
        )
        if result.materialised_bytes > self.budget_bytes:
            raise RepositoryError(
                f"result of {result.materialised_bytes} bytes exceeds the "
                f"staging budget of {self.budget_bytes}"
            )
        while (
            self.used_bytes() + result.materialised_bytes > self.budget_bytes
        ):
            oldest = next(iter(self._staged))
            self._staged.pop(oldest).close()
            self.evictions += 1
        ticket = f"T{next(self._tickets):06d}"
        result.ticket = ticket
        self._staged[ticket] = result
        return ticket

    def chunk_count(self, ticket: str) -> int:
        """Number of chunks of a staged result."""
        return self._result(ticket).chunk_count

    def retrieve_chunk(self, ticket: str, index: int) -> bytes:
        """Fetch one chunk (marks it retrieved; refreshes LRU position)."""
        self._chaos("retrieve")
        result = self._result(ticket)
        if not 0 <= index < result.chunk_count:
            raise RepositoryError(
                f"chunk {index} out of range for ticket {ticket!r}"
            )
        result.retrieved[index] = True
        # Refresh recency.
        del self._staged[ticket]
        self._staged[ticket] = result
        return result.chunk(index)

    def retrieve_all(self, ticket: str) -> bytes:
        """Fetch the whole result (all chunks, in order)."""
        result = self._result(ticket)
        return b"".join(
            self.retrieve_chunk(ticket, index)
            for index in range(result.chunk_count)
        )

    def retrieve_metadata(self, ticket: str) -> bytes:
        """Fetch only the metadata section of a staged result.

        The selective-retrieval path of section 4.3: metadata are tiny,
        so a client can inspect them before committing to the region
        payload.
        """
        return self._result(ticket).meta_blob

    def retrieve_regions(self, ticket: str) -> bytes:
        """Fetch only the region section of a staged result."""
        return self._result(ticket).region_blob

    def section_lengths(self, ticket: str) -> tuple:
        """``(meta_len, region_len)`` of a staged result's two sections."""
        result = self._result(ticket)
        return result.meta_len, result.region_len

    def blob_handle(self, ticket: str) -> tuple:
        """``(spill_path, meta_len, region_len)`` of a staged result.

        The handle-shipping path for co-resident peers: when the result
        spilled to the persistent store, its content-addressed file can
        be memory-mapped by anyone sharing the filesystem instead of
        streaming chunks.  ``(None, 0, 0)`` when the result is
        memory-staged.
        """
        result = self._result(ticket)
        if result.path is None:
            return None, 0, 0
        return result.path, result.meta_len, result.region_len

    def release(self, ticket: str) -> None:
        """Free a staged result, closing any spill-file map it held."""
        result = self._staged.pop(ticket, None)
        if result is not None:
            result.close()

    def _result(self, ticket: str) -> StagedResult:
        try:
            return self._staged[ticket]
        except KeyError:
            raise RepositoryError(
                f"unknown or evicted staging ticket {ticket!r}"
            ) from None
