"""Result staging and deferred retrieval (paper, section 4.3/4.4).

"Deferred result retrieval will be possible, through limited amount of
staging at the sites hosting the services" and the client should be "in
control of staging resources and of communication load".  A
:class:`StagingArea` holds materialised results up to a byte budget,
serves them in chunks, and evicts least-recently-used entries when a new
result would not fit.
"""

from __future__ import annotations

import itertools

from repro.errors import RepositoryError
from repro.formats.bed import CustomBedFormat
from repro.gdm import Dataset


class StagedResult:
    """One staged result: serialised sample chunks plus bookkeeping.

    Regions and metadata serialise into *separate* sections so a client
    can "selectively retrieve regions or metadata" (paper, section 4.3) --
    e.g. fetch only the metadata to decide whether the big region payload
    is worth the transfer.
    """

    def __init__(self, ticket: str, dataset: Dataset, chunk_bytes: int) -> None:
        self.ticket = ticket
        self.name = dataset.name
        region_format = CustomBedFormat(dataset.schema)
        from repro.formats.meta import serialize_meta
        from repro.formats.bed import schema_to_header

        meta_parts = [f"#schema\t{schema_to_header(dataset.schema)}\n"]
        region_parts = []
        for sample in dataset:
            meta_parts.append(f"#sample\t{sample.id}\n")
            meta_parts.append(serialize_meta(sample.meta))
            region_parts.append(f"#sample\t{sample.id}\n")
            region_parts.append(region_format.serialize(sample.regions))
        self.meta_blob = "".join(meta_parts).encode()
        self.region_blob = "".join(region_parts).encode()
        blob = self.meta_blob + self.region_blob
        self.chunks = [
            blob[offset: offset + chunk_bytes]
            for offset in range(0, len(blob), chunk_bytes)
        ] or [b""]
        self.size_bytes = len(blob)
        self.retrieved = [False] * len(self.chunks)

    @property
    def complete(self) -> bool:
        """True once every chunk has been retrieved at least once."""
        return all(self.retrieved)


class StagingArea:
    """LRU-bounded staging of query results with chunked retrieval.

    *fire*, when given, is a chaos hook with the signature of
    :meth:`repro.federation.transfer.Network.fire`; staging operations
    then fire ``staging.stage:<owner>`` / ``staging.retrieve:<owner>``
    injection points so an armed fault injector can make a host's
    staging slow or flaky independently of its protocol handlers.
    """

    def __init__(self, budget_bytes: int = 1_000_000,
                 chunk_bytes: int = 16_384, fire=None,
                 owner: str = "staging") -> None:
        if budget_bytes <= 0 or chunk_bytes <= 0:
            raise RepositoryError("staging budget and chunk size must be positive")
        self.budget_bytes = budget_bytes
        self.chunk_bytes = chunk_bytes
        self.owner = owner
        self._fire = fire
        self._staged: dict = {}  # ticket -> StagedResult (insertion = LRU order)
        self._tickets = itertools.count(1)
        self.evictions = 0

    def _chaos(self, operation: str) -> None:
        if self._fire is not None:
            self._fire(f"staging.{operation}:{self.owner}")

    def used_bytes(self) -> int:
        """Bytes currently staged."""
        return sum(result.size_bytes for result in self._staged.values())

    def stage(self, dataset: Dataset) -> str:
        """Stage a result; returns a retrieval ticket.

        Evicts least-recently-used results until the new one fits; a
        result larger than the whole budget is refused (the client must
        raise its budget or narrow the query -- exactly the control the
        paper wants the protocol to give).
        """
        self._chaos("stage")
        probe = StagedResult("probe", dataset, self.chunk_bytes)
        if probe.size_bytes > self.budget_bytes:
            raise RepositoryError(
                f"result of {probe.size_bytes} bytes exceeds the staging "
                f"budget of {self.budget_bytes}"
            )
        while self.used_bytes() + probe.size_bytes > self.budget_bytes:
            oldest = next(iter(self._staged))
            del self._staged[oldest]
            self.evictions += 1
        ticket = f"T{next(self._tickets):06d}"
        probe.ticket = ticket
        self._staged[ticket] = probe
        return ticket

    def chunk_count(self, ticket: str) -> int:
        """Number of chunks of a staged result."""
        return len(self._result(ticket).chunks)

    def retrieve_chunk(self, ticket: str, index: int) -> bytes:
        """Fetch one chunk (marks it retrieved; refreshes LRU position)."""
        self._chaos("retrieve")
        result = self._result(ticket)
        if not 0 <= index < len(result.chunks):
            raise RepositoryError(
                f"chunk {index} out of range for ticket {ticket!r}"
            )
        result.retrieved[index] = True
        # Refresh recency.
        del self._staged[ticket]
        self._staged[ticket] = result
        return result.chunks[index]

    def retrieve_all(self, ticket: str) -> bytes:
        """Fetch the whole result (all chunks, in order)."""
        result = self._result(ticket)
        return b"".join(
            self.retrieve_chunk(ticket, index)
            for index in range(len(result.chunks))
        )

    def retrieve_metadata(self, ticket: str) -> bytes:
        """Fetch only the metadata section of a staged result.

        The selective-retrieval path of section 4.3: metadata are tiny,
        so a client can inspect them before committing to the region
        payload.
        """
        return self._result(ticket).meta_blob

    def retrieve_regions(self, ticket: str) -> bytes:
        """Fetch only the region section of a staged result."""
        return self._result(ticket).region_blob

    def release(self, ticket: str) -> None:
        """Free a staged result."""
        self._staged.pop(ticket, None)

    def _result(self, ticket: str) -> StagedResult:
        try:
            return self._staged[ticket]
        except KeyError:
            raise RepositoryError(
                f"unknown or evicted staging ticket {ticket!r}"
            ) from None
