"""The integrated-access service of section 4.3.

One front door over a catalog, providing the four improvements the paper
lists for next-generation repository services:

* compatible metadata across datasets (via the shared
  :class:`~repro.repository.index.MetadataIndex` and ontology
  annotations);
* a set of **custom queries** "representing the typical/most needed
  requests", registered as parameterised GMQL templates;
* **user input samples** whose privacy is protected -- uploaded datasets
  live in a per-session namespace, are never listed publicly, and are
  deleted when the session closes (likewise user-written personalised
  queries are not logged);
* **deferred result retrieval** through the bounded
  :class:`~repro.repository.staging.StagingArea`.
"""

from __future__ import annotations

import itertools

from repro.errors import RepositoryError
from repro.gdm import Dataset
from repro.gmql.lang import execute
from repro.ontology import Ontology, annotate_dataset, builtin_ontology
from repro.repository.catalog import Catalog
from repro.repository.index import MetadataIndex
from repro.repository.staging import StagingArea


class CustomQuery:
    """A registered GMQL template with ``{placeholder}`` parameters."""

    def __init__(self, name: str, template: str, description: str = "",
                 parameters: tuple = ()) -> None:
        self.name = name
        self.template = template
        self.description = description
        self.parameters = tuple(parameters)

    def render(self, arguments: dict) -> str:
        """Fill the template; missing/unknown arguments are errors."""
        missing = set(self.parameters) - set(arguments)
        if missing:
            raise RepositoryError(
                f"custom query {self.name!r} missing parameters {sorted(missing)}"
            )
        unknown = set(arguments) - set(self.parameters)
        if unknown:
            raise RepositoryError(
                f"custom query {self.name!r} got unknown parameters "
                f"{sorted(unknown)}"
            )
        return self.template.format(**arguments)


class RepositoryService:
    """Catalog + index + ontology + custom queries + staging, in one place."""

    def __init__(
        self,
        catalog: Catalog,
        ontology: Ontology | None = None,
        staging_budget_bytes: int = 1_000_000,
    ) -> None:
        self.catalog = catalog
        self.ontology = ontology or builtin_ontology()
        self.index = MetadataIndex()
        self.annotations: dict = {}
        for dataset in catalog:
            self.index.add_dataset(dataset)
            self.annotations[dataset.name] = annotate_dataset(
                dataset, self.ontology
            )
        self.staging = StagingArea(budget_bytes=staging_budget_bytes)
        self._custom: dict = {}
        self._sessions: dict = {}
        self._session_ids = itertools.count(1)

    # -- catalog browsing ----------------------------------------------------------

    def list_datasets(self) -> list:
        """Public dataset summaries (user uploads are never listed)."""
        return self.catalog.summaries()

    def find_samples(self, query: str) -> list:
        """Ontology-aware sample lookup across the whole catalog.

        Expands the query through the ontology and matches it against the
        semantic-closure annotations of every sample, returning
        ``(dataset_name, sample_id)`` pairs best-first -- the "keyword-
        based or free text queries" UI of section 4.3.
        """
        from repro.ontology import ontology_match

        results = []
        for dataset_name, annotations in self.annotations.items():
            for sample_id in ontology_match(query, annotations, self.ontology):
                results.append((dataset_name, sample_id))
        # Fall back to literal token lookup for values outside the ontology.
        for token in query.split():
            for key in sorted(self.index.lookup_token(token)):
                if key not in results:
                    results.append(key)
        return results

    # -- custom queries ---------------------------------------------------------------

    def register_custom_query(self, query: CustomQuery) -> None:
        """Publish a custom query."""
        if query.name in self._custom:
            raise RepositoryError(f"custom query {query.name!r} already exists")
        self._custom[query.name] = query

    def custom_queries(self) -> list:
        """Available custom queries, ``(name, description, parameters)``."""
        return [
            (q.name, q.description, q.parameters)
            for __, q in sorted(self._custom.items())
        ]

    def run_custom_query(
        self, name: str, arguments: dict, session: str | None = None,
        engine: str = "naive",
    ) -> dict:
        """Execute a custom query; returns staging tickets per output.

        Results are staged rather than returned inline -- the deferred
        retrieval of section 4.3.
        """
        try:
            query = self._custom[name]
        except KeyError:
            raise RepositoryError(f"no custom query {name!r}") from None
        return self._run(query.render(arguments), session, engine)

    def run_personal_query(
        self, program: str, session: str | None = None, engine: str = "naive"
    ) -> dict:
        """Execute a user-written query (not logged, not registered)."""
        return self._run(program, session, engine)

    def _run(self, program: str, session: str | None, engine: str) -> dict:
        sources = self.catalog.as_sources()
        if session is not None:
            sources.update(self._session_datasets(session))
        results = execute(program, sources, engine=engine)
        return {
            name: {
                "ticket": self.staging.stage(dataset),
                "summary": dataset.summary(),
            }
            for name, dataset in results.items()
        }

    # -- user sessions and private uploads -----------------------------------------------

    def open_session(self) -> str:
        """Open a private session for uploads and personalised queries."""
        session = f"S{next(self._session_ids):04d}"
        self._sessions[session] = {}
        return session

    def upload_sample_data(self, session: str, dataset: Dataset) -> None:
        """Attach a private dataset to a session (never indexed/listed)."""
        datasets = self._session_datasets(session)
        datasets[dataset.name] = dataset

    def close_session(self, session: str) -> None:
        """Close a session; private data is discarded immediately."""
        self._sessions.pop(session, None)

    def _session_datasets(self, session: str) -> dict:
        try:
            return self._sessions[session]
        except KeyError:
            raise RepositoryError(f"unknown session {session!r}") from None

    # -- retrieval -------------------------------------------------------------------------

    def retrieve(self, ticket: str) -> bytes:
        """Fetch a whole staged result."""
        return self.staging.retrieve_all(ticket)

    def retrieve_chunk(self, ticket: str, index: int) -> bytes:
        """Fetch one chunk of a staged result (client-paced transfer)."""
        return self.staging.retrieve_chunk(ticket, index)

    def retrieve_metadata(self, ticket: str) -> bytes:
        """Selectively fetch only the metadata of a staged result."""
        return self.staging.retrieve_metadata(ticket)

    def retrieve_regions(self, ticket: str) -> bytes:
        """Selectively fetch only the regions of a staged result."""
        return self.staging.retrieve_regions(ticket)
