"""Metadata indexing: fast lookup from attribute/value to samples.

The inverted index behind both the repository service's "locating data of
interest" (section 4.4) and the keyword search of section 4.5: every
metadata pair of every sample of every dataset is indexed as
``attribute -> value -> [(dataset, sample_id)]``, plus a token index over
values for free-text lookup.
"""

from __future__ import annotations

import re

from repro.gdm import Dataset

_TOKEN = re.compile(r"[A-Za-z0-9]+")


def tokenize_value(value) -> list:
    """Lowercased alphanumeric tokens of a metadata value."""
    return [t.lower() for t in _TOKEN.findall(str(value))]


class MetadataIndex:
    """Inverted index over the metadata of one or more datasets."""

    def __init__(self) -> None:
        self._by_pair: dict = {}    # (attribute, value_str) -> set of keys
        self._by_token: dict = {}   # token -> set of keys
        self._meta: dict = {}       # key -> Metadata
        self._indexed_pairs = 0

    def add_dataset(self, dataset: Dataset) -> None:
        """Index every sample of a dataset."""
        for sample in dataset:
            key = (dataset.name, sample.id)
            self._meta[key] = sample.meta
            for attribute, value in sample.meta:
                self._by_pair.setdefault(
                    (attribute, str(value).lower()), set()
                ).add(key)
                self._indexed_pairs += 1
                for token in tokenize_value(value) + tokenize_value(attribute):
                    self._by_token.setdefault(token, set()).add(key)

    # -- lookup ------------------------------------------------------------------

    def lookup(self, attribute: str, value) -> set:
        """Samples carrying the exact (attribute, value) pair."""
        return set(self._by_pair.get((attribute, str(value).lower()), ()))

    def lookup_token(self, token: str) -> set:
        """Samples whose metadata mentions *token* anywhere."""
        return set(self._by_token.get(token.lower(), ()))

    def keys(self) -> set:
        """All indexed (dataset, sample_id) keys."""
        return set(self._meta)

    def metadata_of(self, key: tuple):
        """The metadata of one indexed sample."""
        return self._meta[key]

    def attribute_values(self, attribute: str) -> set:
        """Distinct values observed for an attribute (for UIs/protocols)."""
        return {
            value
            for (attr, value), __ in self._by_pair.items()
            if attr == attribute
        }

    def __len__(self) -> int:
        """Number of indexed samples."""
        return len(self._meta)

    def stats(self) -> dict:
        """Index size statistics."""
        return {
            "samples": len(self._meta),
            "pairs": self._indexed_pairs,
            "tokens": len(self._by_token),
        }
