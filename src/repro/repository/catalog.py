"""Dataset catalogs: named GDM datasets, in memory and on disk.

A :class:`Catalog` is the unit the vision systems share: repository
services, federation nodes and Internet-of-Genomes hosts all expose one.
:class:`DatasetStore` persists a catalog as a directory of GMQL-layout
dataset directories (see :mod:`repro.formats.meta`).
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.errors import RepositoryError
from repro.formats import read_dataset, write_dataset
from repro.gdm import Dataset


class Catalog:
    """Named datasets plus their summaries."""

    def __init__(self, name: str = "catalog") -> None:
        self.name = name
        self._datasets: dict = {}

    def register(self, dataset: Dataset, replace: bool = False) -> None:
        """Add a dataset under its own name."""
        if dataset.name in self._datasets and not replace:
            raise RepositoryError(
                f"dataset {dataset.name!r} already registered in {self.name!r}"
            )
        self._datasets[dataset.name] = dataset

    def get(self, name: str) -> Dataset:
        """Look a dataset up by name."""
        try:
            return self._datasets[name]
        except KeyError:
            raise RepositoryError(
                f"no dataset {name!r} in catalog {self.name!r}; "
                f"available: {sorted(self._datasets)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    def __len__(self) -> int:
        return len(self._datasets)

    def __iter__(self) -> Iterator[Dataset]:
        for name in sorted(self._datasets):
            yield self._datasets[name]

    def names(self) -> tuple:
        """Sorted dataset names."""
        return tuple(sorted(self._datasets))

    def summaries(self) -> list:
        """Summary dictionaries of all datasets (the "information about
        remote datasets" of the federation protocol)."""
        return [self._datasets[name].summary() for name in sorted(self._datasets)]

    def as_sources(self) -> dict:
        """``{name: Dataset}`` view usable by :func:`repro.gmql.run`."""
        return dict(self._datasets)

    def total_size_bytes(self) -> int:
        """Estimated serialised size of the whole catalog."""
        return sum(ds.estimated_size_bytes() for ds in self._datasets.values())


class DatasetStore:
    """Directory-backed persistence for a catalog."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def save(self, dataset: Dataset) -> str:
        """Persist one dataset; returns its directory."""
        directory = os.path.join(self.root, dataset.name)
        write_dataset(dataset, directory)
        return directory

    def load(self, name: str) -> Dataset:
        """Load one dataset by name."""
        directory = os.path.join(self.root, name)
        if not os.path.isdir(directory):
            raise RepositoryError(f"no stored dataset {name!r} in {self.root!r}")
        return read_dataset(directory, name)

    def names(self) -> tuple:
        """Sorted names of the stored datasets."""
        return tuple(
            sorted(
                entry
                for entry in os.listdir(self.root)
                if os.path.isdir(os.path.join(self.root, entry))
            )
        )

    def load_catalog(self, name: str = "store") -> Catalog:
        """Load every stored dataset into a fresh catalog."""
        catalog = Catalog(name)
        for dataset_name in self.names():
            catalog.register(self.load(dataset_name))
        return catalog

    def save_catalog(self, catalog: Catalog) -> None:
        """Persist every dataset of a catalog."""
        for dataset in catalog:
            self.save(dataset)
