"""Repository layer: catalogs, metadata indexing, staging, access services.

Implements the integrated-access vision of the paper's section 4.3 over
local catalogs; the federation (section 4.4) and search (section 4.5)
packages build on these pieces.
"""

from repro.repository.catalog import Catalog, DatasetStore
from repro.repository.index import MetadataIndex, tokenize_value
from repro.repository.service import CustomQuery, RepositoryService
from repro.repository.staging import StagedResult, StagingArea

__all__ = [
    "Catalog",
    "CustomQuery",
    "DatasetStore",
    "MetadataIndex",
    "RepositoryService",
    "StagedResult",
    "StagingArea",
    "tokenize_value",
]
