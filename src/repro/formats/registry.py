"""Format registry: route documents to parsers by name or file extension.

This is the mediation point of the paper's interoperability claim -- new
formats plug in with :func:`register`, and everything downstream only ever
sees GDM datasets.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.errors import FormatError
from repro.formats.base import RegionFormat
from repro.formats.bed import BedFormat
from repro.formats.bedgraph import BedGraphFormat
from repro.formats.gtf import GtfFormat
from repro.formats.narrowpeak import BroadPeakFormat, NarrowPeakFormat
from repro.formats.sam import SamFormat
from repro.formats.vcf import VcfFormat
from repro.gdm import Dataset, Metadata, Sample

_FORMATS: dict = {}
_EXTENSIONS: dict = {}


def register(format_instance: RegionFormat) -> None:
    """Register a format under its name and extensions.

    Re-registering a name replaces the previous entry, which lets
    applications override a built-in dialect.
    """
    _FORMATS[format_instance.name] = format_instance
    for extension in format_instance.extensions:
        _EXTENSIONS[extension.lower()] = format_instance


def format_named(name: str) -> RegionFormat:
    """Look up a registered format by name."""
    try:
        return _FORMATS[name.lower()]
    except KeyError:
        raise FormatError(
            f"unknown format {name!r}; registered: {sorted(_FORMATS)}"
        ) from None


def format_for_path(path: str) -> RegionFormat:
    """Choose a format from a file path's extension."""
    __, extension = os.path.splitext(path)
    try:
        return _EXTENSIONS[extension.lower()]
    except KeyError:
        raise FormatError(
            f"no format registered for extension {extension!r}"
        ) from None


def available_formats() -> tuple:
    """Sorted names of all registered formats."""
    return tuple(sorted(_FORMATS))


def dataset_from_documents(
    name: str,
    documents: Iterable[tuple],
    format_name: str,
) -> Dataset:
    """Build a dataset from ``(document_text, metadata_dict)`` pairs.

    Each document becomes one sample (ids assigned consecutively from 1);
    all documents must be in the named format, whose schema becomes the
    dataset schema.  This is the one-call path from "a pile of BED files
    plus their metadata" to a queryable GDM dataset.
    """
    region_format = format_named(format_name)
    dataset = Dataset(name, region_format.schema())
    for index, (text, meta) in enumerate(documents, start=1):
        regions = region_format.parse(text)
        dataset.add_sample(
            Sample(index, regions, Metadata(meta or {})), validate=False
        )
    return dataset


# Built-in formats.
register(BedFormat())
register(BedGraphFormat())
register(NarrowPeakFormat())
register(BroadPeakFormat())
register(GtfFormat())
register(VcfFormat())
register(SamFormat())
