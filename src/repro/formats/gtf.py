"""GTF/GFF2: gene annotation format (the UCSC/RefSeq side of the paper).

GTF is 1-based closed-interval; GDM is 0-based half-open, so parsing
subtracts one from the start and writing adds it back.  The free-form
``attribute`` column (``key "value"; ...``) is flattened into the variable
attributes we care about (``gene_id``, ``transcript_id``) plus ``source``,
``feature``, ``score`` and ``frame``.
"""

from __future__ import annotations

import re

from repro.errors import FormatError
from repro.formats.base import RegionFormat
from repro.gdm import FLOAT, GenomicRegion, RegionSchema, STR

_ATTRIBUTE = re.compile(r'(\w+)\s+"([^"]*)"')


class GtfFormat(RegionFormat):
    """GTF (gene transfer format), GFF2 attribute syntax."""

    name = "gtf"
    extensions = (".gtf", ".gff")

    def schema(self) -> RegionSchema:
        return RegionSchema.of(
            ("source", STR),
            ("feature", STR),
            ("score", FLOAT),
            ("frame", STR),
            ("gene_id", STR),
            ("transcript_id", STR),
        )

    def parse_line(self, fields: list) -> GenomicRegion:
        self.require(fields, 9)
        chrom = fields[0]
        source = None if fields[1] == "." else fields[1]
        feature = None if fields[2] == "." else fields[2]
        left = int(fields[3]) - 1  # GTF is 1-based closed
        right = int(fields[4])
        if left < 0:
            raise FormatError(f"GTF start must be >= 1, got {fields[3]}")
        score = None if fields[5] == "." else float(fields[5])
        strand = self.parse_strand(fields[6])
        frame = None if fields[7] == "." else fields[7]
        attributes = dict(_ATTRIBUTE.findall(fields[8]))
        return GenomicRegion(
            chrom,
            left,
            right,
            strand,
            (
                source,
                feature,
                score,
                frame,
                attributes.get("gene_id"),
                attributes.get("transcript_id"),
            ),
        )

    def format_region(self, region: GenomicRegion) -> str:
        source, feature, score, frame, gene_id, transcript_id = (
            tuple(region.values) + (None,) * 6
        )[:6]
        attribute_parts = []
        if gene_id is not None:
            attribute_parts.append(f'gene_id "{gene_id}";')
        if transcript_id is not None:
            attribute_parts.append(f'transcript_id "{transcript_id}";')
        return "\t".join(
            [
                region.chrom,
                "." if source is None else str(source),
                "." if feature is None else str(feature),
                str(region.left + 1),
                str(region.right),
                "." if score is None else f"{float(score):g}",
                self.format_strand(region.strand),
                "." if frame is None else str(frame),
                " ".join(attribute_parts) if attribute_parts else ".",
            ]
        )
