"""BED: the lingua franca of processed genomic regions.

Implements BED3 through BED6 plus the generic "BED with custom schema" that
GMQL repositories use: the first three (optionally six) columns are the
fixed coordinates, the remaining columns are variable attributes declared by
a :class:`~repro.gdm.schema.RegionSchema`.
"""

from __future__ import annotations

from repro.errors import FormatError
from repro.formats.base import RegionFormat
from repro.gdm import FLOAT, GenomicRegion, RegionSchema, STR


class BedFormat(RegionFormat):
    """Standard BED6: chrom, start, end, name, score, strand.

    Shorter lines degrade gracefully (BED3/BED4/BED5); missing fields
    become missing values.  The variable schema is
    ``(name STR, score FLOAT)``.
    """

    name = "bed"
    extensions = (".bed",)

    def schema(self) -> RegionSchema:
        return RegionSchema.of(("name", STR), ("score", FLOAT))

    def parse_line(self, fields: list) -> GenomicRegion:
        self.require(fields, 3)
        chrom = fields[0]
        left, right = int(fields[1]), int(fields[2])
        name = fields[3] if len(fields) > 3 and fields[3] != "." else None
        score = None
        if len(fields) > 4 and fields[4] not in (".", ""):
            score = float(fields[4])
        strand = self.parse_strand(fields[5]) if len(fields) > 5 else "*"
        return GenomicRegion(chrom, left, right, strand, (name, score))

    def format_region(self, region: GenomicRegion) -> str:
        name = region.values[0] if len(region.values) > 0 else None
        score = region.values[1] if len(region.values) > 1 else None
        return "\t".join(
            [
                region.chrom,
                str(region.left),
                str(region.right),
                "." if name is None else str(name),
                "." if score is None else f"{float(score):g}",
                self.format_strand(region.strand),
            ]
        )


class CustomBedFormat(RegionFormat):
    """BED-like file with a caller-declared variable schema.

    Layout: ``chrom  left  right  strand  v1  v2 ...`` where the ``v``
    columns follow *schema*.  This is the on-disk sample layout of the
    GMQL repository and of :class:`repro.repository.catalog.DatasetStore`.
    """

    name = "gdm"
    extensions = (".gdm",)

    def __init__(self, schema: RegionSchema) -> None:
        self._schema = schema

    def schema(self) -> RegionSchema:
        return self._schema

    def parse_line(self, fields: list) -> GenomicRegion:
        self.require(fields, 4)
        chrom = fields[0]
        left, right = int(fields[1]), int(fields[2])
        strand = self.parse_strand(fields[3])
        raw_values = fields[4:]
        if len(raw_values) > len(self._schema):
            raise FormatError(
                f"{len(raw_values)} variable fields for "
                f"{len(self._schema)}-attribute schema"
            )
        values = tuple(
            definition.type.parse(text)
            for definition, text in zip(self._schema, raw_values)
        )
        return GenomicRegion(chrom, left, right, strand, values)

    def format_region(self, region: GenomicRegion) -> str:
        fields = [
            region.chrom,
            str(region.left),
            str(region.right),
            self.format_strand(region.strand),
        ]
        for definition, value in zip(self._schema, region.values):
            fields.append(definition.type.format(value))
        return "\t".join(fields)


def schema_to_header(schema: RegionSchema) -> str:
    """Serialise a schema to the one-line header used by ``.schema`` files."""
    return "\t".join(f"{d.name}:{d.type.name}" for d in schema)


def schema_from_header(header: str) -> RegionSchema:
    """Parse a schema header line produced by :func:`schema_to_header`."""
    header = header.strip()
    if not header:
        return RegionSchema.empty()
    pairs = []
    for token in header.split("\t"):
        if ":" not in token:
            raise FormatError(f"bad schema token {token!r}")
        name, type_name = token.rsplit(":", 1)
        pairs.append((name, type_name))
    return RegionSchema.of(*pairs)
