"""SAM-lite: aligned reads, the interface between secondary and tertiary
analysis.

The NGS pipeline substrate (:mod:`repro.ngs`) aligns simulated reads and
emits them in this simplified SAM dialect: the eleven mandatory columns,
with CIGAR restricted to a single ``<n>M`` match operation (our simulated
aligner is ungapped).  Unmapped reads (flag 0x4) have no coordinates and
are skipped on parse.
"""

from __future__ import annotations

from repro.errors import FormatError
from repro.formats.base import RegionFormat
from repro.gdm import GenomicRegion, INT, RegionSchema, STR

#: SAM flag bits used by the simulator.
FLAG_UNMAPPED = 0x4
FLAG_REVERSE = 0x10


class SamFormat(RegionFormat):
    """Simplified SAM: mandatory columns, ungapped alignments only."""

    name = "sam"
    extensions = (".sam",)
    comment_prefixes = ("@",)

    def schema(self) -> RegionSchema:
        return RegionSchema.of(
            ("read_name", STR),
            ("flag", INT),
            ("mapq", INT),
            ("cigar", STR),
            ("sequence", STR),
        )

    def parse_line(self, fields: list) -> GenomicRegion:
        self.require(fields, 11)
        read_name = fields[0]
        flag = int(fields[1])
        chrom = fields[2]
        position = int(fields[3]) - 1  # SAM POS is 1-based
        mapq = int(fields[4])
        cigar = fields[5]
        sequence = fields[9]
        if flag & FLAG_UNMAPPED or chrom == "*":
            raise FormatError(f"read {read_name!r} is unmapped")
        if position < 0:
            raise FormatError(f"SAM POS must be >= 1, got {fields[3]}")
        length = _cigar_reference_span(cigar, len(sequence))
        strand = "-" if flag & FLAG_REVERSE else "+"
        return GenomicRegion(
            chrom,
            position,
            position + length,
            strand,
            (read_name, flag, mapq, cigar, sequence),
        )

    def iter_parse(self, source):
        """Like the base parser, but silently drops unmapped records."""
        import io

        stream = io.StringIO(source) if isinstance(source, str) else source
        for line_number, raw in enumerate(stream, start=1):
            line = raw.rstrip("\n").rstrip("\r")
            if not line.strip() or line.startswith("@"):
                continue
            fields = line.split("\t")
            self.require(fields, 11)
            if int(fields[1]) & FLAG_UNMAPPED or fields[2] == "*":
                continue
            try:
                yield self.parse_line(fields)
            except (ValueError, IndexError) as exc:
                raise FormatError(f"sam: line {line_number}: {exc}") from exc

    def format_region(self, region: GenomicRegion) -> str:
        read_name, flag, mapq, cigar, sequence = (
            tuple(region.values) + (None,) * 5
        )[:5]
        if flag is None:
            flag = FLAG_REVERSE if region.strand == "-" else 0
        return "\t".join(
            [
                "*" if read_name is None else str(read_name),
                str(int(flag)),
                region.chrom,
                str(region.left + 1),
                "0" if mapq is None else str(int(mapq)),
                f"{region.length}M" if cigar is None else str(cigar),
                "*",  # RNEXT
                "0",  # PNEXT
                "0",  # TLEN
                "*" if sequence is None else str(sequence),
                "*",  # QUAL
            ]
        )


def _cigar_reference_span(cigar: str, sequence_length: int) -> int:
    """Reference span of an ungapped CIGAR (``<n>M`` or ``*``)."""
    if cigar in ("*", ""):
        return sequence_length
    if not cigar.endswith("M"):
        raise FormatError(f"unsupported CIGAR {cigar!r} (ungapped dialect)")
    try:
        return int(cigar[:-1])
    except ValueError:
        raise FormatError(f"bad CIGAR {cigar!r}") from None
