"""GDM metadata files and whole-dataset directory serialisation.

Metadata files follow the GMQL repository convention: one
``<attribute>\\t<value>`` pair per line, one ``.meta`` file per sample
file.  :func:`write_dataset` / :func:`read_dataset` persist a full dataset
as a directory::

    DATASET_DIR/
      schema.txt          # one line, see bed.schema_to_header
      S_00001.gdm         # region rows of sample 1
      S_00001.gdm.meta    # metadata pairs of sample 1
      ...
"""

from __future__ import annotations

import os
import re
from typing import IO

from repro.errors import FormatError
from repro.formats.bed import CustomBedFormat, schema_from_header, schema_to_header
from repro.gdm import Dataset, Metadata, Sample

_SAMPLE_FILE = re.compile(r"^S_(\d+)\.gdm$")


def parse_meta(source: str | IO[str]) -> Metadata:
    """Parse a ``.meta`` document into a :class:`Metadata` instance."""
    text = source if isinstance(source, str) else source.read()
    pairs = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        if "\t" not in line:
            raise FormatError(f"meta: line {line_number}: expected TAB separator")
        attribute, value = line.split("\t", 1)
        if not attribute:
            raise FormatError(f"meta: line {line_number}: empty attribute")
        pairs.append((attribute, _parse_value(value)))
    return Metadata.from_pairs(pairs)


def serialize_meta(meta: Metadata) -> str:
    """Serialise metadata to the ``.meta`` pair-per-line layout."""
    return "".join(f"{attribute}\t{value}\n" for attribute, value in meta)


def _parse_value(text: str):
    """Best-effort typing of metadata values: int, then float, else str."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def write_dataset(dataset: Dataset, directory: str) -> None:
    """Persist *dataset* as a GMQL-style repository directory."""
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "schema.txt"), "w") as handle:
        handle.write(schema_to_header(dataset.schema) + "\n")
    region_format = CustomBedFormat(dataset.schema)
    for sample in dataset:
        base = os.path.join(directory, f"S_{sample.id:05d}.gdm")
        with open(base, "w") as handle:
            handle.write(region_format.serialize(sample.regions))
        with open(base + ".meta", "w") as handle:
            handle.write(serialize_meta(sample.meta))


def read_dataset(directory: str, name: str | None = None) -> Dataset:
    """Load a dataset previously written by :func:`write_dataset`."""
    schema_path = os.path.join(directory, "schema.txt")
    if not os.path.exists(schema_path):
        raise FormatError(f"no schema.txt in {directory!r}")
    with open(schema_path) as handle:
        schema = schema_from_header(handle.readline())
    region_format = CustomBedFormat(schema)
    dataset = Dataset(name or os.path.basename(directory.rstrip("/")), schema)
    for entry in sorted(os.listdir(directory)):
        match = _SAMPLE_FILE.match(entry)
        if not match:
            continue
        sample_id = int(match.group(1))
        with open(os.path.join(directory, entry)) as handle:
            regions = region_format.parse(handle)
        meta_path = os.path.join(directory, entry + ".meta")
        meta = Metadata()
        if os.path.exists(meta_path):
            with open(meta_path) as handle:
                meta = parse_meta(handle)
        dataset.add_sample(Sample(sample_id, regions, meta), validate=False)
    return dataset
