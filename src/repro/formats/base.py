"""Format mediation core: how external file formats map onto GDM.

The paper's claim is that GDM "mediates all existing data formats": any
technology-driven format (BED, narrowPeak, GTF, VCF, ...) is read into
regions with a declared :class:`~repro.gdm.schema.RegionSchema` and written
back out losslessly.  Each concrete format implements :class:`RegionFormat`;
:mod:`repro.formats.registry` routes by name or file extension.
"""

from __future__ import annotations

import io
from typing import IO, Iterable, Iterator

from repro.errors import FormatError
from repro.gdm import GenomicRegion, RegionSchema


class RegionFormat:
    """Base class for region file formats.

    Subclasses define a :attr:`name`, the file :attr:`extensions` they
    claim, a :meth:`schema` describing the variable attributes they carry,
    and line-level parse/serialise hooks.  The base class provides the
    stream plumbing, comment/track-line handling and error reporting with
    line numbers.
    """

    #: Format name used by the registry (override).
    name = "abstract"
    #: File extensions (lowercase, with dot) routed to this format.
    extensions: tuple = ()
    #: Line prefixes to skip silently while parsing.
    comment_prefixes: tuple = ("#", "track ", "browser ")

    def schema(self) -> RegionSchema:
        """The region schema this format produces.  Override."""
        raise NotImplementedError

    def parse_line(self, fields: list) -> GenomicRegion:
        """Build a region from the tab-separated fields of one line.  Override."""
        raise NotImplementedError

    def format_region(self, region: GenomicRegion) -> str:
        """Serialise one region to a line (without newline).  Override."""
        raise NotImplementedError

    # -- plumbing -------------------------------------------------------------

    def parse(self, source: str | IO[str]) -> list:
        """Parse a whole document (text or open file) into a region list."""
        return list(self.iter_parse(source))

    def iter_parse(self, source: str | IO[str]) -> Iterator[GenomicRegion]:
        """Stream regions out of a document, skipping comments and blanks."""
        stream = io.StringIO(source) if isinstance(source, str) else source
        for line_number, raw in enumerate(stream, start=1):
            line = raw.rstrip("\n").rstrip("\r")
            if not line.strip():
                continue
            if any(line.startswith(prefix) for prefix in self.comment_prefixes):
                continue
            fields = line.split("\t")
            try:
                yield self.parse_line(fields)
            except (FormatError, ValueError, IndexError) as exc:
                raise FormatError(
                    f"{self.name}: line {line_number}: {exc}"
                ) from exc

    def serialize(self, regions: Iterable[GenomicRegion]) -> str:
        """Serialise regions to a document string."""
        return "".join(self.format_region(region) + "\n" for region in regions)

    # -- shared field helpers -------------------------------------------------

    @staticmethod
    def require(fields: list, minimum: int) -> None:
        """Raise when a line has fewer than *minimum* fields."""
        if len(fields) < minimum:
            raise FormatError(
                f"expected at least {minimum} fields, got {len(fields)}"
            )

    @staticmethod
    def parse_strand(text: str) -> str:
        """Map the format's strand field to a GDM strand symbol."""
        if text in ("+", "-"):
            return text
        if text in (".", "*", ""):
            return "*"
        raise FormatError(f"bad strand field {text!r}")

    @staticmethod
    def format_strand(strand: str) -> str:
        """Map a GDM strand symbol back to the common file convention."""
        return "." if strand == "*" else strand
