"""Format mediation: every external format parses into GDM and back.

"We propose an essential data model ... that guarantee[s] interoperability
between existing data formats" (paper, abstract).  Supported formats: BED,
GDM custom-schema BED, ENCODE narrowPeak/broadPeak, GTF, VCF and a
simplified SAM; plus the ``.meta`` metadata files and whole-dataset
directory layout of GMQL repositories.
"""

from repro.formats.base import RegionFormat
from repro.formats.bed import (
    BedFormat,
    CustomBedFormat,
    schema_from_header,
    schema_to_header,
)
from repro.formats.bedgraph import (
    BedGraphFormat,
    coverage_to_bedgraph,
    dataset_to_bedgraph,
)
from repro.formats.gtf import GtfFormat
from repro.formats.meta import (
    parse_meta,
    read_dataset,
    serialize_meta,
    write_dataset,
)
from repro.formats.narrowpeak import BroadPeakFormat, NarrowPeakFormat
from repro.formats.registry import (
    available_formats,
    dataset_from_documents,
    format_for_path,
    format_named,
    register,
)
from repro.formats.sam import FLAG_REVERSE, FLAG_UNMAPPED, SamFormat
from repro.formats.vcf import VcfFormat

__all__ = [
    "BedFormat",
    "BedGraphFormat",
    "BroadPeakFormat",
    "CustomBedFormat",
    "FLAG_REVERSE",
    "FLAG_UNMAPPED",
    "GtfFormat",
    "NarrowPeakFormat",
    "RegionFormat",
    "SamFormat",
    "VcfFormat",
    "available_formats",
    "coverage_to_bedgraph",
    "dataset_from_documents",
    "dataset_to_bedgraph",
    "format_for_path",
    "format_named",
    "parse_meta",
    "read_dataset",
    "register",
    "schema_from_header",
    "schema_to_header",
    "serialize_meta",
    "write_dataset",
]
