"""bedGraph: the genome-browser track format for quantitative signals.

"It will also be possible to visualize results on genome browsers"
(paper, section 4.3).  bedGraph is how quantitative tracks (coverage
depths, COVER accumulation indexes, MAP counts) reach UCSC-style
browsers: four columns, ``chrom start end value``.
"""

from __future__ import annotations

from typing import Iterable

from repro.formats.base import RegionFormat
from repro.gdm import Dataset, FLOAT, GenomicRegion, RegionSchema


class BedGraphFormat(RegionFormat):
    """bedGraph (UCSC): chrom, start, end, dataValue."""

    name = "bedgraph"
    extensions = (".bedgraph", ".bdg")

    def schema(self) -> RegionSchema:
        return RegionSchema.of(("value", FLOAT))

    def parse_line(self, fields: list) -> GenomicRegion:
        self.require(fields, 4)
        return GenomicRegion(
            fields[0],
            int(fields[1]),
            int(fields[2]),
            "*",
            (float(fields[3]),),
        )

    def format_region(self, region: GenomicRegion) -> str:
        value = region.values[0] if region.values else None
        return "\t".join(
            [
                region.chrom,
                str(region.left),
                str(region.right),
                "0" if value is None else f"{float(value):g}",
            ]
        )


def coverage_to_bedgraph(
    regions: Iterable[GenomicRegion], track_name: str = "coverage"
) -> str:
    """Render the depth profile of a region bag as a bedGraph document.

    Ready to load in a genome browser: a ``track`` line followed by one
    row per constant-depth segment.
    """
    from repro.intervals import coverage_profile

    fmt = BedGraphFormat()
    lines = [
        f'track type=bedGraph name="{track_name}" visibility=full'
    ]
    for segment in coverage_profile(list(regions)):
        lines.append(
            fmt.format_region(
                GenomicRegion(
                    segment.chrom, segment.left, segment.right, "*",
                    (float(segment.depth),),
                )
            )
        )
    return "\n".join(lines) + "\n"


def dataset_to_bedgraph(
    dataset: Dataset, value_attribute: str, track_name: str | None = None
) -> str:
    """Render one dataset attribute as a browser track.

    Typical use: a COVER result's ``acc_index`` or a MAP result's count.
    All samples are merged into one track (browsers show one line per
    track; per-sample tracks are a loop over samples at the call site).
    """
    fmt = BedGraphFormat()
    index = dataset.schema.index_of(value_attribute)
    lines = [
        f'track type=bedGraph name="{track_name or dataset.name}" '
        f"visibility=full"
    ]
    for sample in dataset:
        for region in sample.sorted_regions():
            value = region.values[index]
            lines.append(
                fmt.format_region(
                    region.with_values(
                        (float(value) if value is not None else None,)
                    )
                )
            )
    return "\n".join(lines) + "\n"
