"""ENCODE narrowPeak / broadPeak: ChIP-seq peak call formats.

narrowPeak is BED6+4 (signalValue, pValue, qValue, peak offset); broadPeak
is BED6+3 (no summit offset).  These are the formats of the paper's ENCODE
examples -- the PEAKS dataset of Figure 2 carries the narrowPeak
``p_value`` attribute.
"""

from __future__ import annotations

from repro.formats.base import RegionFormat
from repro.gdm import FLOAT, GenomicRegion, INT, RegionSchema, STR


class NarrowPeakFormat(RegionFormat):
    """ENCODE narrowPeak (BED6+4)."""

    name = "narrowpeak"
    extensions = (".narrowpeak", ".npk")

    def schema(self) -> RegionSchema:
        return RegionSchema.of(
            ("name", STR),
            ("score", INT),
            ("signal_value", FLOAT),
            ("p_value", FLOAT),
            ("q_value", FLOAT),
            ("peak", INT),
        )

    def parse_line(self, fields: list) -> GenomicRegion:
        self.require(fields, 10)
        chrom = fields[0]
        left, right = int(fields[1]), int(fields[2])
        strand = self.parse_strand(fields[5])
        name = None if fields[3] == "." else fields[3]
        score = None if fields[4] == "." else int(fields[4])
        signal = None if fields[6] == "." else float(fields[6])
        # ENCODE stores -log10 p/q; -1 means "not available".
        p_value = None if fields[7] in (".", "-1") else float(fields[7])
        q_value = None if fields[8] in (".", "-1") else float(fields[8])
        peak = None if fields[9] in (".", "-1") else int(fields[9])
        return GenomicRegion(
            chrom, left, right, strand,
            (name, score, signal, p_value, q_value, peak),
        )

    def format_region(self, region: GenomicRegion) -> str:
        name, score, signal, p_value, q_value, peak = (
            tuple(region.values) + (None,) * 6
        )[:6]
        return "\t".join(
            [
                region.chrom,
                str(region.left),
                str(region.right),
                "." if name is None else str(name),
                "0" if score is None else str(int(score)),
                self.format_strand(region.strand),
                "0" if signal is None else f"{float(signal):g}",
                "-1" if p_value is None else f"{float(p_value):g}",
                "-1" if q_value is None else f"{float(q_value):g}",
                "-1" if peak is None else str(int(peak)),
            ]
        )


class BroadPeakFormat(RegionFormat):
    """ENCODE broadPeak (BED6+3): narrowPeak without the summit column."""

    name = "broadpeak"
    extensions = (".broadpeak", ".bpk")

    def schema(self) -> RegionSchema:
        return RegionSchema.of(
            ("name", STR),
            ("score", INT),
            ("signal_value", FLOAT),
            ("p_value", FLOAT),
            ("q_value", FLOAT),
        )

    def parse_line(self, fields: list) -> GenomicRegion:
        self.require(fields, 9)
        chrom = fields[0]
        left, right = int(fields[1]), int(fields[2])
        strand = self.parse_strand(fields[5])
        name = None if fields[3] == "." else fields[3]
        score = None if fields[4] == "." else int(fields[4])
        signal = None if fields[6] == "." else float(fields[6])
        p_value = None if fields[7] in (".", "-1") else float(fields[7])
        q_value = None if fields[8] in (".", "-1") else float(fields[8])
        return GenomicRegion(
            chrom, left, right, strand, (name, score, signal, p_value, q_value)
        )

    def format_region(self, region: GenomicRegion) -> str:
        name, score, signal, p_value, q_value = (
            tuple(region.values) + (None,) * 5
        )[:5]
        return "\t".join(
            [
                region.chrom,
                str(region.left),
                str(region.right),
                "." if name is None else str(name),
                "0" if score is None else str(int(score)),
                self.format_strand(region.strand),
                "0" if signal is None else f"{float(signal):g}",
                "-1" if p_value is None else f"{float(p_value):g}",
                "-1" if q_value is None else f"{float(q_value):g}",
            ]
        )
