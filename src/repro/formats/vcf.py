"""VCF (variant call format), the mutation side of tertiary analysis.

We implement the 8 fixed columns of VCF 4.x.  A variant becomes a region
covering its reference allele span (1-based POS converted to 0-based
half-open); SNVs are width-1 regions, deletions wider, and the variable
attributes record id, ref, alt, qual and filter.  INFO is carried as an
opaque semicolon string so round-trips are lossless.
"""

from __future__ import annotations

from repro.errors import FormatError
from repro.formats.base import RegionFormat
from repro.gdm import FLOAT, GenomicRegion, RegionSchema, STR


class VcfFormat(RegionFormat):
    """VCF 4.x, fixed columns only (CHROM..INFO)."""

    name = "vcf"
    extensions = (".vcf",)
    comment_prefixes = ("#",)

    def schema(self) -> RegionSchema:
        return RegionSchema.of(
            ("variant_id", STR),
            ("ref", STR),
            ("alt", STR),
            ("qual", FLOAT),
            ("filter", STR),
            ("info", STR),
        )

    def parse_line(self, fields: list) -> GenomicRegion:
        self.require(fields, 8)
        chrom = fields[0]
        position = int(fields[1]) - 1  # VCF POS is 1-based
        if position < 0:
            raise FormatError(f"VCF POS must be >= 1, got {fields[1]}")
        variant_id = None if fields[2] == "." else fields[2]
        ref = fields[3]
        alt = fields[4]
        qual = None if fields[5] == "." else float(fields[5])
        filter_field = None if fields[6] == "." else fields[6]
        info = None if fields[7] == "." else fields[7]
        right = position + max(1, len(ref))
        return GenomicRegion(
            chrom,
            position,
            right,
            "*",
            (variant_id, ref, alt, qual, filter_field, info),
        )

    def format_region(self, region: GenomicRegion) -> str:
        variant_id, ref, alt, qual, filter_field, info = (
            tuple(region.values) + (None,) * 6
        )[:6]
        return "\t".join(
            [
                region.chrom,
                str(region.left + 1),
                "." if variant_id is None else str(variant_id),
                "N" if ref is None else str(ref),
                "." if alt is None else str(alt),
                "." if qual is None else f"{float(qual):g}",
                "." if filter_field is None else str(filter_field),
                "." if info is None else str(info),
            ]
        )
